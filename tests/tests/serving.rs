//! The serving engine end-to-end: continuous batching on the windowed
//! offload runtime must serve a trained checkpoint with token streams that
//! are (a) bit-identical to the fully-resident static-batching reference,
//! (b) invariant to every scheduling knob — window size, slot count,
//! compute workers, arrival interleaving — and (c) still correct when the
//! model's parameter bytes exceed the device arena.

use stronghold_baselines::{StaticBatchConfig, StaticBatchGenerator};
use stronghold_core::adam::AdamParams;
use stronghold_core::host::{HostOffloadConfig, HostOffloadTrainer, TrainingState};
use stronghold_core::serve::{GenRequest, GenResult, ServeConfig, ServeEngine};
use stronghold_core::telemetry::Telemetry;
use stronghold_integration_tests::batch_for;
use stronghold_model::block::BlockDecodeScratch;
use stronghold_model::config::tiny;
use stronghold_model::transformer::{HeadDecodeScratch, Transformer};
use stronghold_tensor::attention::KvCache;
use stronghold_tensor::{Precision, Tensor};

/// A trained SHTS blob: the serving entry point every engine under test
/// shares, so stream differences can only come from the engine itself.
fn trained_blob() -> (bytes::Bytes, stronghold_model::config::ModelConfig) {
    let cfg = tiny(3);
    let batch = batch_for(&cfg, 77);
    let mut t = HostOffloadTrainer::new(
        cfg,
        11,
        HostOffloadConfig {
            window: 2,
            optimizer_workers: 2,
            adam: AdamParams {
                lr: 1e-3,
                ..AdamParams::default()
            },
            ..HostOffloadConfig::default()
        },
    );
    for _ in 0..3 {
        t.train_step(&batch);
    }
    (t.save_training_state(), cfg)
}

fn workload() -> Vec<GenRequest> {
    let lens = [(2usize, 6usize), (5, 3), (3, 5), (4, 4), (2, 4)];
    lens.iter()
        .enumerate()
        .map(|(i, &(p, n))| GenRequest {
            id: i as u64,
            prompt: (0..p as u32)
                .map(|t| (t * 11 + 3 * i as u32) % 64)
                .collect(),
            max_new_tokens: n,
            seed: 500 + i as u64,
        })
        .collect()
}

fn by_id(mut rs: Vec<GenResult>) -> Vec<GenResult> {
    rs.sort_by_key(|r| r.id);
    rs
}

/// Prefill and token-at-a-time decode must be *bit-identical* through the
/// whole model stack (embedding → blocks → final LN → tied head): the
/// batch-stable GEMM entries make every product's bits independent of how
/// many rows ride in the run.
#[test]
fn prefill_and_decode_logits_are_bit_identical() {
    let cfg = tiny(3);
    let model = Transformer::new(cfg, 21);
    let prompt: Vec<u32> = (0..7u32).map(|t| (t * 13 + 5) % 64).collect();
    let dh = cfg.hidden / cfg.heads;

    let run = |chunks: &[&[u32]]| -> Vec<f32> {
        let mut kv: Vec<KvCache> = (0..cfg.layers)
            .map(|_| KvCache::new(cfg.heads, dh, cfg.seq))
            .collect();
        let mut ws = BlockDecodeScratch::new();
        let mut head_ws = HeadDecodeScratch::new();
        let mut x = Tensor::zeros([1]);
        let mut y = Tensor::zeros([1]);
        let mut logits = Tensor::zeros([1]);
        let mut pos = 0;
        for chunk in chunks {
            model.embed_at_into(chunk, pos, &mut x);
            for (i, cache) in kv.iter_mut().enumerate() {
                model.block_forward_decode(i, &x, cache, &mut ws, &mut y);
                std::mem::swap(&mut x, &mut y);
            }
            pos += chunk.len();
        }
        model.lm_logits_last_into(&x, &mut head_ws, &mut logits);
        logits.data().to_vec()
    };

    let full = run(&[&prompt]);
    let singles: Vec<&[u32]> = prompt.chunks(1).collect();
    let token_at_a_time = run(&singles);
    let split = run(&[&prompt[..3], &prompt[3..]]);
    assert_eq!(
        full, token_at_a_time,
        "prefill vs decode logits must match bitwise"
    );
    assert_eq!(full, split, "mid-sequence prefill must not change the bits");
}

/// The determinism matrix: one trained blob, one workload, every
/// scheduling shape — window sizes, slot counts, worker counts, staggered
/// arrivals — must emit byte-identical per-request token streams within a
/// precision. (Bf16 streams differ from F32 streams — the device grid is
/// coarser — but are equally schedule-invariant.)
#[test]
fn token_streams_are_invariant_to_scheduling_shape() {
    let (blob, _cfg) = trained_blob();
    for precision in [Precision::F32, Precision::Bf16] {
        let mk = |serve: ServeConfig| {
            ServeEngine::from_state_blob(blob.clone(), serve, Telemetry::disabled()).unwrap()
        };
        let base_cfg = ServeConfig {
            precision,
            ..ServeConfig::default()
        };
        let baseline = by_id(mk(base_cfg.clone()).generate(workload()));
        assert_eq!(baseline.len(), 5);

        let shapes = [
            ServeConfig {
                window: 1,
                ..base_cfg.clone()
            },
            ServeConfig {
                window: 3,
                slots: 1,
                ..base_cfg.clone()
            },
            ServeConfig {
                slots: 3,
                compute_workers: 2,
                ..base_cfg.clone()
            },
        ];
        for (si, cfg) in shapes.into_iter().enumerate() {
            let got = by_id(mk(cfg).generate(workload()));
            for (a, b) in baseline.iter().zip(got.iter()) {
                assert_eq!(
                    a.tokens, b.tokens,
                    "{precision:?} shape {si}: req {} stream changed with the schedule",
                    a.id
                );
            }
        }

        // Staggered arrivals: half the workload lands mid-flight.
        let mut eng = mk(base_cfg);
        let reqs = workload();
        let (first, rest) = reqs.split_at(2);
        for r in first {
            eng.submit(r.clone());
        }
        let mut got = Vec::new();
        got.extend(eng.step());
        for r in rest {
            eng.submit(r.clone());
        }
        while eng.active_slots() > 0 || eng.queue_depth() > 0 {
            got.extend(eng.step());
        }
        let got = by_id(got);
        for (a, b) in baseline.iter().zip(got.iter()) {
            assert_eq!(
                a.tokens, b.tokens,
                "{precision:?}: req {} stream changed with arrival timing",
                a.id
            );
        }
    }
}

/// The headline claim: a model whose FP32 parameter bytes exceed the
/// device arena serves end-to-end via layer streaming, never exceeding the
/// budget — and emits the same streams as an unconstrained engine.
#[test]
fn serves_a_model_larger_than_the_device_arena() {
    let (blob, _cfg) = trained_blob();
    let tel = Telemetry::enabled();
    let mut roomy =
        ServeEngine::from_state_blob(blob.clone(), ServeConfig::default(), Telemetry::disabled())
            .unwrap();
    let want = by_id(roomy.generate(workload()));

    // Budget for the KV arena plus two parameter slots: window clamps to 1
    // and only a third of the model is ever device-resident.
    let kv = roomy.kv_arena_bytes();
    let bb = roomy.block_bytes();
    let cap = kv + 2 * bb + bb / 2;
    let mut tight = ServeEngine::from_state_blob(
        blob,
        ServeConfig {
            window: 3,
            device_capacity: Some(cap),
            ..ServeConfig::default()
        },
        tel.clone(),
    )
    .unwrap();
    assert!(
        tight.param_bytes() > cap,
        "the model must not fit the arena: {} <= {}",
        tight.param_bytes(),
        cap
    );
    assert_eq!(tight.window(), 1, "budget admits exactly m = 1");
    let got = by_id(tight.generate(workload()));
    assert!(
        tight.device().peak() <= cap,
        "serving blew the device budget"
    );
    for (a, b) in want.iter().zip(got.iter()) {
        assert_eq!(
            a.tokens, b.tokens,
            "req {}: streaming changed the stream",
            a.id
        );
    }

    // The engine's telemetry tells the same story.
    let tokens: u64 = want.iter().map(|r| r.tokens.len() as u64).sum();
    assert_eq!(tel.counter("serve.tokens").get(), tokens);
    assert_eq!(tel.counter("serve.completed").get(), want.len() as u64);
    assert!(tel.counter("serve.prefill_tokens").get() > 0);
    assert!(tel.counter("serve.decode_tokens").get() > 0);
}

/// Continuous batching vs the fully-resident static reference on a
/// *trained* model: the schedules differ wildly, the bits must not.
#[test]
fn continuous_and_static_agree_on_a_trained_model() {
    let (blob, _cfg) = trained_blob();
    let st = TrainingState::decode(blob.clone()).unwrap();
    let mut stat = StaticBatchGenerator::from_model(st.model, StaticBatchConfig::default());
    let mut cont =
        ServeEngine::from_state_blob(blob, ServeConfig::default(), Telemetry::disabled()).unwrap();
    let a = by_id(stat.generate(workload()));
    let b = by_id(cont.generate(workload()));
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(
            x.tokens, y.tokens,
            "req {}: static and continuous disagree",
            x.id
        );
    }
}
