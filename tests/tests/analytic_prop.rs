//! Property tests of the analytical window model (§III-D) over randomized
//! layer profiles.

use proptest::prelude::*;
use stronghold_core::analytic::solve_window;
use stronghold_core::profile::LayerProfile;
use stronghold_sim::SimTime;

/// Builds a profile with `n` offloadable layers plus pinned ends; per-layer
/// times drawn from the given millisecond ranges.
fn synth_profile(n: usize, fp_ms: &[u64], c2g_ms: &[u64], g2c_ms: &[u64]) -> LayerProfile {
    let total = n + 2;
    let ms = SimTime::from_millis;
    let cyc = |v: &[u64], i: usize| ms(v[i % v.len()].max(1));
    LayerProfile {
        t_fp: (0..total).map(|i| cyc(fp_ms, i)).collect(),
        t_bp: (0..total).map(|i| cyc(fp_ms, i) * 3).collect(),
        t_c2g: (0..total).map(|i| cyc(c2g_ms, i)).collect(),
        t_g2c: (0..total).map(|i| cyc(g2c_ms, i)).collect(),
        s_fp: vec![64; total],
        s_bp: vec![128; total],
        t_opt_gpu: vec![ms(1); total],
        t_opt_cpu: vec![ms(8); total],
        t_async: SimTime::from_micros(100),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chosen window is always within the memory-admitted range, and
    /// when the solver reports hard feasibility the P1 fetch constraint
    /// really holds for homogeneous windows.
    #[test]
    fn solver_invariants(
        n in 3usize..40,
        fp in proptest::collection::vec(1u64..200, 1..4),
        c2g in proptest::collection::vec(1u64..200, 1..4),
        g2c in proptest::collection::vec(1u64..200, 1..4),
        slot_cost in 1u64..50,
        cap in 50u64..2000,
    ) {
        let p = synth_profile(n, &fp, &c2g, &g2c);
        let usage = |m: usize| m as u64 * slot_cost;
        match solve_window(&p, usage, cap) {
            None => {
                // Only possible when not even one slot fits.
                prop_assert!(slot_cost > cap);
            }
            Some(plan) => {
                prop_assert!(plan.m >= 1);
                prop_assert!(plan.m <= plan.m_mem_max);
                prop_assert!(usage(plan.m) <= cap, "window must fit memory");
                if plan.hard_feasible {
                    // Spot-check (1b) on the first window position.
                    let window_fp: u64 = (1..=plan.m.min(n))
                        .map(|i| p.t_fp[i].as_nanos())
                        .sum();
                    if plan.m < n {
                        prop_assert!(
                            window_fp >= p.t_c2g[plan.m + 1].as_nanos(),
                            "P1 (1b) violated at the head position"
                        );
                    }
                }
            }
        }
    }

    /// Minimality: for homogeneous profiles, no smaller window satisfies
    /// the hard constraints when the solver says `m` is hard-feasible and
    /// the soft constraint already held at m (so no soft widening happened).
    #[test]
    fn solver_is_minimal_for_homogeneous(
        n in 4usize..30,
        fp_ms in 5u64..100,
        c2g_ms in 5u64..400,
    ) {
        // g2c tiny so the soft constraint never forces widening.
        let p = synth_profile(n, &[fp_ms], &[c2g_ms], &[1]);
        let plan = solve_window(&p, |_| 0, u64::MAX).unwrap();
        if plan.hard_feasible && plan.soft_satisfied && plan.m > 1 {
            // m-1 must violate (1b): (m-1)·fp < c2g for the head window.
            let smaller_fp = (plan.m as u64 - 1) * fp_ms;
            prop_assert!(
                smaller_fp < c2g_ms || plan.m == 1,
                "solver chose {} but {} would satisfy (1b): {}ms fp vs {}ms c2g",
                plan.m, plan.m - 1, smaller_fp, c2g_ms
            );
        }
    }

    /// More capacity never shrinks the admissible range.
    #[test]
    fn memory_monotonicity(
        n in 3usize..20,
        slot_cost in 1u64..20,
        cap_lo in 20u64..200,
        extra in 0u64..500,
    ) {
        let p = synth_profile(n, &[10], &[30], &[10]);
        let usage = |m: usize| m as u64 * slot_cost;
        let lo = solve_window(&p, usage, cap_lo);
        let hi = solve_window(&p, usage, cap_lo + extra);
        if let (Some(a), Some(b)) = (&lo, &hi) {
            prop_assert!(b.m_mem_max >= a.m_mem_max);
        }
        if lo.is_some() {
            prop_assert!(hi.is_some(), "adding memory cannot break feasibility");
        }
    }
}
