//! The shared training engine, exercised end-to-end on every backend:
//! LR schedules, global-norm clipping, hooks, and the universal
//! checkpoint/resume format must behave identically whether parameters are
//! resident, windowed through the device, or shared across streams.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stronghold_core::adam::AdamParams;
use stronghold_core::error::RuntimeError;
use stronghold_core::hooks::HookPoint;
use stronghold_core::host::{
    EngineOptions, HostOffloadConfig, HostOffloadTrainer, HostResidentTrainer, MultiStreamTrainer,
};
use stronghold_core::schedule::LrSchedule;
use stronghold_core::telemetry::Telemetry;
use stronghold_integration_tests::batch_for;
use stronghold_model::config::tiny;

/// A schedule with warm-up so the step counter visibly matters: resuming at
/// the wrong step would pick the wrong LR and break bit-exactness.
fn schedule() -> LrSchedule {
    LrSchedule::CosineWithWarmup {
        peak: 3e-3,
        floor: 3e-4,
        warmup: 3,
        total: 12,
    }
}

fn opts() -> EngineOptions {
    EngineOptions {
        adam: AdamParams::default(),
        schedule: Some(schedule()),
        clip_norm: Some(0.75),
        ..EngineOptions::default()
    }
}

fn hocfg() -> HostOffloadConfig {
    HostOffloadConfig {
        window: 2,
        optimizer_workers: 3,
        adam: AdamParams::default(),
        schedule: Some(schedule()),
        clip_norm: Some(0.75),
        ..HostOffloadConfig::default()
    }
}

#[test]
fn policy_is_identical_across_backends() {
    // With a schedule *and* clipping active, all three backends must still
    // produce bit-identical parameters — the policy lives in one place.
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 200);

    let mut resident = HostResidentTrainer::with_options(cfg, 8, opts());
    let mut offloaded = HostOffloadTrainer::new(cfg, 8, hocfg());
    let mut multistream =
        MultiStreamTrainer::with_options(cfg, 8, 1, 2, opts(), Telemetry::disabled());

    for step in 0..6 {
        let lr = resident.train_step(&batch);
        let lo = offloaded.train_step(&batch);
        let lm = multistream.train_step(&batch);
        assert_eq!(lr, lo, "resident vs offloaded loss at step {step}");
        assert_eq!(lo, lm, "offloaded vs multistream loss at step {step}");
    }
    offloaded.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            resident.block_params(i),
            offloaded.block_params(i),
            "resident vs offloaded block {i}"
        );
        assert_eq!(
            offloaded.block_params(i),
            multistream.block_params(i),
            "offloaded vs multistream block {i}"
        );
    }
}

#[test]
fn checkpoint_roundtrip_resident() {
    // Save at step 3, restore, train 3 more == uninterrupted 6 steps.
    let cfg = tiny(3);
    let batch = batch_for(&cfg, 201);

    let mut straight = HostResidentTrainer::with_options(cfg, 4, opts());
    for _ in 0..6 {
        straight.train_step(&batch);
    }

    let mut first = HostResidentTrainer::with_options(cfg, 4, opts());
    for _ in 0..3 {
        first.train_step(&batch);
    }
    let blob = first.save_training_state();
    let mut resumed = HostResidentTrainer::load_training_state(blob, cfg, opts()).unwrap();
    assert_eq!(resumed.steps(), 3, "step counter travels with the blob");
    for _ in 0..3 {
        resumed.train_step(&batch);
    }
    for i in 0..cfg.layers {
        assert_eq!(
            straight.block_params(i),
            resumed.block_params(i),
            "block {i}"
        );
    }
}

#[test]
fn checkpoint_roundtrip_offloaded() {
    let cfg = tiny(3);
    let batch = batch_for(&cfg, 202);

    let mut straight = HostOffloadTrainer::new(cfg, 5, hocfg());
    for _ in 0..6 {
        straight.train_step(&batch);
    }
    straight.flush();

    let mut first = HostOffloadTrainer::new(cfg, 5, hocfg());
    for _ in 0..3 {
        first.train_step(&batch);
    }
    let blob = first.save_training_state();
    let mut resumed = HostOffloadTrainer::load_training_state(blob, cfg, hocfg()).unwrap();
    assert_eq!(resumed.steps(), 3);
    for _ in 0..3 {
        resumed.train_step(&batch);
    }
    resumed.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            straight.block_params(i),
            resumed.block_params(i),
            "block {i}"
        );
    }
}

#[test]
fn checkpoint_roundtrip_multistream() {
    let cfg = tiny(3);
    let batch = batch_for(&cfg, 203);
    let build = || MultiStreamTrainer::with_options(cfg, 6, 2, 2, opts(), Telemetry::disabled());

    let mut straight = build();
    for _ in 0..6 {
        straight.train_step(&batch);
    }

    let mut first = build();
    for _ in 0..3 {
        first.train_step(&batch);
    }
    let blob = first.save_training_state();
    let mut resumed = MultiStreamTrainer::load_training_state(blob, cfg, 2, 2, opts()).unwrap();
    assert_eq!(resumed.steps(), 3);
    for _ in 0..3 {
        resumed.train_step(&batch);
    }
    for i in 0..cfg.layers {
        assert_eq!(
            straight.block_params(i),
            resumed.block_params(i),
            "block {i}"
        );
    }
}

#[test]
fn checkpoint_is_universal_across_backends() {
    // A blob saved by the offloaded trainer resumes bit-exactly on the
    // resident *and* multistream trainers: one format, three backends.
    let cfg = tiny(3);
    let batch = batch_for(&cfg, 204);

    let mut reference = HostResidentTrainer::with_options(cfg, 7, opts());
    for _ in 0..6 {
        reference.train_step(&batch);
    }

    let mut saver = HostOffloadTrainer::new(cfg, 7, hocfg());
    for _ in 0..3 {
        saver.train_step(&batch);
    }
    let blob = saver.save_training_state();

    let mut as_resident =
        HostResidentTrainer::load_training_state(blob.clone(), cfg, opts()).unwrap();
    let mut as_multistream =
        MultiStreamTrainer::load_training_state(blob, cfg, 1, 2, opts()).unwrap();
    for _ in 0..3 {
        as_resident.train_step(&batch);
        as_multistream.train_step(&batch);
    }
    for i in 0..cfg.layers {
        assert_eq!(
            reference.block_params(i),
            as_resident.block_params(i),
            "offloaded blob -> resident, block {i}"
        );
        assert_eq!(
            reference.block_params(i),
            as_multistream.block_params(i),
            "offloaded blob -> multistream, block {i}"
        );
    }
}

#[test]
fn version_byte_flip_is_rejected() {
    // Offset 4 is the format-version byte (after the 4-byte magic).
    let cfg = tiny(1);
    let t = HostResidentTrainer::with_options(cfg, 1, opts());
    let mut raw = t.save_training_state().to_vec();
    raw[4] ^= 0x7F;
    let err = HostResidentTrainer::load_training_state(bytes::Bytes::from(raw), cfg, opts())
        .err()
        .expect("must fail");
    assert!(
        matches!(err, RuntimeError::Checkpoint(ref m) if m.contains("version")),
        "{err}"
    );
}

#[test]
fn truncated_blob_is_rejected() {
    let cfg = tiny(1);
    let t = HostOffloadTrainer::new(cfg, 2, hocfg());
    let raw = t.save_training_state().to_vec();
    let cut = raw.len() - 9;
    let err = HostOffloadTrainer::load_training_state(
        bytes::Bytes::from(raw[..cut].to_vec()),
        cfg,
        hocfg(),
    )
    .err()
    .expect("must fail");
    assert!(matches!(err, RuntimeError::Checkpoint(_)), "{err}");
}

#[test]
fn config_mismatch_is_rejected() {
    let cfg = tiny(2);
    let other = tiny(3);
    let t = HostResidentTrainer::with_options(cfg, 3, opts());
    let blob = t.save_training_state();
    let err = HostResidentTrainer::load_training_state(blob, other, opts())
        .err()
        .expect("must fail");
    assert!(
        matches!(err, RuntimeError::Checkpoint(ref m) if m.contains("config mismatch")),
        "{err}"
    );
}

/// Hook-firing contract on one trainer: per step, each of the four per-layer
/// points fires once per layer, and `PostStep` fires exactly once.
fn assert_hook_counts(counts: &[Arc<AtomicU64>; 5], layers: u64, steps: u64) {
    let [pre_f, post_f, pre_b, post_b, post_step] = counts;
    assert_eq!(pre_f.load(Ordering::SeqCst), layers * steps, "PreForward");
    assert_eq!(post_f.load(Ordering::SeqCst), layers * steps, "PostForward");
    assert_eq!(pre_b.load(Ordering::SeqCst), layers * steps, "PreBackward");
    assert_eq!(
        post_b.load(Ordering::SeqCst),
        layers * steps,
        "PostBackward"
    );
    assert_eq!(post_step.load(Ordering::SeqCst), steps, "PostStep");
}

fn counters() -> [Arc<AtomicU64>; 5] {
    std::array::from_fn(|_| Arc::new(AtomicU64::new(0)))
}

fn register_all(
    hooks: &mut stronghold_core::hooks::HookRegistry,
    layers: usize,
    counts: &[Arc<AtomicU64>; 5],
) {
    let points = [
        HookPoint::PreForward,
        HookPoint::PostForward,
        HookPoint::PreBackward,
        HookPoint::PostBackward,
    ];
    for (point, count) in points.into_iter().zip(counts.iter()) {
        for l in 0..layers {
            let c = Arc::clone(count);
            hooks.register(l, point, move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
    }
    let c = Arc::clone(&counts[4]);
    hooks.register_post_step(move |_| {
        c.fetch_add(1, Ordering::SeqCst);
    });
}

#[test]
fn hooks_fire_on_resident_backend() {
    let cfg = tiny(3);
    let batch = batch_for(&cfg, 205);
    let mut t = HostResidentTrainer::with_options(cfg, 9, opts());
    let counts = counters();
    register_all(t.hooks_mut(), cfg.layers, &counts);
    for _ in 0..4 {
        t.train_step(&batch);
    }
    assert_hook_counts(&counts, cfg.layers as u64, 4);
    assert_eq!(t.hook_invocations(), (4 * cfg.layers as u64 + 1) * 4);
}

#[test]
fn hooks_fire_on_offloaded_backend() {
    let cfg = tiny(3);
    let batch = batch_for(&cfg, 206);
    let mut t = HostOffloadTrainer::new(cfg, 10, hocfg());
    let counts = counters();
    register_all(t.hooks_mut(), cfg.layers, &counts);
    for _ in 0..4 {
        t.train_step(&batch);
    }
    assert_hook_counts(&counts, cfg.layers as u64, 4);
}

#[test]
fn hooks_fire_on_multistream_backend() {
    let cfg = tiny(3);
    let batch = batch_for(&cfg, 207);
    let mut t = MultiStreamTrainer::with_options(cfg, 11, 2, 2, opts(), Telemetry::disabled());
    let counts = counters();
    register_all(t.hooks_mut(), cfg.layers, &counts);
    for _ in 0..4 {
        t.train_step(&batch);
    }
    assert_hook_counts(&counts, cfg.layers as u64, 4);
}

#[test]
fn lr_gauge_follows_schedule() {
    // The engine publishes the scheduled LR (fixed-point ×1e6) and a
    // positive gradient norm each step.
    let cfg = tiny(2);
    let batch = batch_for(&cfg, 208);
    let tel = Telemetry::enabled();
    let mut t = HostOffloadTrainer::with_telemetry(cfg, 12, hocfg(), tel.clone());
    let s = schedule();
    for step in 0..5u64 {
        t.train_step(&batch);
        let want = (s.at(step) as f64 * 1e6).round() as i64;
        assert_eq!(tel.gauge("step.lr").get(), want, "lr gauge at step {step}");
        assert!(
            tel.gauge("step.grad_norm").get() > 0,
            "grad norm gauge at step {step}"
        );
    }
}

#[test]
fn clipping_changes_training_and_unclipped_is_untouched() {
    // Sanity that the clip path is actually live: aggressive clipping must
    // alter the trajectory, and clip_norm: None must match the historical
    // (pre-engine) unclipped behaviour bit-for-bit across backends.
    let cfg = tiny(2);
    let batch = batch_for(&cfg, 209);
    let run = |clip: Option<f32>| {
        let mut t = HostResidentTrainer::with_options(
            cfg,
            13,
            EngineOptions {
                adam: AdamParams::default(),
                schedule: None,
                clip_norm: clip,
                ..EngineOptions::default()
            },
        );
        for _ in 0..3 {
            t.train_step(&batch);
        }
        t.block_params(0)
    };
    let unclipped = run(None);
    let clipped = run(Some(1e-3));
    assert_ne!(unclipped, clipped, "aggressive clipping must bite");
    assert_eq!(run(None), unclipped, "unclipped path is deterministic");
}
