//! Allocation-regression guard for the zero-allocation step loop.
//!
//! A counting global allocator measures how many heap allocations one
//! `train_step` performs. The first steps are allowed to allocate freely
//! (scratch pools, staging buffers and per-layer gradient accumulators
//! grow to their steady-state sizes), but after warm-up the per-step
//! allocation count must stop growing: a later window of steps may not
//! allocate more than an earlier one, and the absolute per-step count
//! must stay far below one-allocation-per-tensor territory.
//!
//! The counter tallies every thread, so the offloaded trainer's
//! prefetcher and optimizer-pool threads are included.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stronghold_core::adam::AdamParams;
use stronghold_core::host::{HostOffloadConfig, HostOffloadTrainer, HostResidentTrainer};
use stronghold_integration_tests::batch_for;
use stronghold_model::config::tiny;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates allocation to `System` unchanged; the counter is a
// side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, n) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn adam() -> AdamParams {
    AdamParams {
        lr: 1e-3,
        ..AdamParams::default()
    }
}

/// Per-step allocation ceiling after warm-up. A trainer that allocated
/// one buffer per tensor per step would be far above this for the tiny
/// config (dozens of tensors × batch × layers); the reused-workspace
/// loop needs only incidental allocations (thread spawns, queue nodes).
const STEADY_STATE_CAP: u64 = 600;

#[test]
fn resident_step_allocations_stop_growing() {
    let cfg = tiny(3);
    let batch = batch_for(&cfg, 41);
    let mut t = HostResidentTrainer::new(cfg, 7, adam());
    for _ in 0..3 {
        t.train_step(&batch);
    }
    let early = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
    });
    let late = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
    });
    assert!(
        late <= early,
        "per-step allocations grew after warm-up: early window {early}, late window {late}"
    );
    assert!(
        late / 3 <= STEADY_STATE_CAP,
        "resident steady-state step allocates too much: {} allocs/step",
        late / 3
    );
}

#[test]
fn offloaded_step_allocations_stop_growing() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 42);
    let mut t = HostOffloadTrainer::new(
        cfg,
        7,
        HostOffloadConfig {
            window: 2,
            optimizer_workers: 2,
            adam: adam(),
        },
    );
    for _ in 0..3 {
        t.train_step(&batch);
    }
    let early = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
    });
    let late = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
    });
    assert!(
        late <= early,
        "per-step allocations grew after warm-up: early window {early}, late window {late}"
    );
    assert!(
        late / 3 <= STEADY_STATE_CAP,
        "offloaded steady-state step allocates too much: {} allocs/step",
        late / 3
    );
}
