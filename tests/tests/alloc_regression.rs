//! Allocation-regression guard for the zero-allocation step loop.
//!
//! A counting global allocator measures how many heap allocations one
//! `train_step` performs. The first steps are allowed to allocate freely
//! (scratch pools, staging buffers and per-layer gradient accumulators
//! grow to their steady-state sizes), but after warm-up the per-step
//! allocation count must stop growing: a later window of steps may not
//! allocate more than an earlier one, and the absolute per-step count
//! must stay far below one-allocation-per-tensor territory.
//!
//! The counter tallies every thread, so the offloaded trainer's
//! prefetcher and optimizer-pool threads are included.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stronghold_core::adam::AdamParams;
use stronghold_core::host::{
    DataParallelConfig, DataParallelTrainer, HostOffloadConfig, HostOffloadTrainer,
    HostResidentTrainer,
};
use stronghold_core::schedule::LrSchedule;
use stronghold_integration_tests::batch_for;
use stronghold_model::config::tiny;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates allocation to `System` unchanged; the counter is a
// side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, n) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn adam() -> AdamParams {
    AdamParams {
        lr: 1e-3,
        ..AdamParams::default()
    }
}

/// Per-step allocation ceiling after warm-up. A trainer that allocated
/// one buffer per tensor per step would be far above this for the tiny
/// config (dozens of tensors × batch × layers); the reused-workspace
/// loop needs only incidental allocations (thread spawns, queue nodes).
const STEADY_STATE_CAP: u64 = 600;

#[test]
fn resident_step_allocations_stop_growing() {
    let cfg = tiny(3);
    let batch = batch_for(&cfg, 41);
    let mut t = HostResidentTrainer::new(cfg, 7, adam());
    for _ in 0..3 {
        t.train_step(&batch);
    }
    let early = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
    });
    let late = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
    });
    assert!(
        late <= early,
        "per-step allocations grew after warm-up: early window {early}, late window {late}"
    );
    assert!(
        late / 3 <= STEADY_STATE_CAP,
        "resident steady-state step allocates too much: {} allocs/step",
        late / 3
    );
}

#[test]
fn offloaded_step_allocations_stop_growing() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 42);
    let mut t = HostOffloadTrainer::new(
        cfg,
        7,
        HostOffloadConfig {
            window: 2,
            optimizer_workers: 2,
            adam: adam(),
            ..HostOffloadConfig::default()
        },
    );
    for _ in 0..3 {
        t.train_step(&batch);
    }
    // Flush at every window boundary so no in-flight optimizer-pool work
    // straddles a measurement window; the worker threads allocate queue
    // nodes whose timing is otherwise nondeterministic (±a few allocs).
    t.flush();
    let early = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
        t.flush();
    });
    let late = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
        t.flush();
    });
    assert!(
        late <= early + 4,
        "per-step allocations grew after warm-up: early window {early}, late window {late}"
    );
    assert!(
        late / 3 <= STEADY_STATE_CAP,
        "offloaded steady-state step allocates too much: {} allocs/step",
        late / 3
    );
}

/// With the file spill tier active (PR 9), the steady-state step must stay
/// allocation-bounded too: fill buffers and byte scratch recycle through
/// the `TierStore` free lists, slot installs are `mem::replace` swaps, and
/// the swap-file I/O reuses one scratch per worker — so after warm-up a
/// spilled step allocates no more than the window before it.
#[test]
fn spilled_step_allocations_stop_growing() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 46);
    let mut t = HostOffloadTrainer::new(
        cfg,
        7,
        HostOffloadConfig {
            window: 2,
            optimizer_workers: 2,
            adam: adam(),
            // Room for one resident layer: 3 of 4 layers live on the file.
            host_capacity: Some(12 * cfg.block_params()),
            spill_workers: 2,
            ..HostOffloadConfig::default()
        },
    );
    assert_eq!(t.spilled_layers(), 3, "the spill tier must be active");
    for _ in 0..3 {
        t.train_step(&batch);
    }
    t.flush();
    let early = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
        t.flush();
    });
    let late = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
        t.flush();
    });
    assert!(
        late <= early + 8,
        "per-step allocations grew with the spill tier active: early window {early}, \
         late window {late}"
    );
    assert!(
        late / 3 <= STEADY_STATE_CAP,
        "spilled steady-state step allocates too much: {} allocs/step",
        late / 3
    );
}

/// The data-parallel step must reach the same steady state: replica
/// engines, fold slots, bucket buffers (recycled through the optimizer
/// pool's free list) and the communicator's rendezvous slots all grow once
/// during warm-up, after which a step allocates only incidentals (the two
/// scoped replica threads, queue nodes). The counter tallies every thread,
/// so both replicas' offload/optimizer workers and the collective are
/// included.
#[test]
fn data_parallel_step_allocations_stop_growing() {
    let cfg = tiny(4).with_batch(8);
    let batch = batch_for(&cfg, 44);
    let mut t = DataParallelTrainer::new(
        cfg,
        7,
        DataParallelConfig {
            replicas: 2,
            window: 2,
            optimizer_workers: 2,
            adam: adam(),
            ..DataParallelConfig::default()
        },
    );
    for _ in 0..3 {
        t.train_step(&batch);
    }
    t.flush();
    let early = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
        t.flush();
    });
    let late = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
        t.flush();
    });
    assert!(
        late <= early + 8,
        "per-step allocations grew after warm-up: early window {early}, late window {late}"
    );
    assert!(
        late / 3 <= 2 * STEADY_STATE_CAP,
        "data-parallel steady-state step allocates too much: {} allocs/step",
        late / 3
    );
}

/// A live autotune controller at a fixed point must not break the
/// zero-allocation contract: evaluation is `Copy`-only arithmetic against
/// pre-registered gauges, so a step that proposes no resize allocates
/// exactly what an untuned step does. The config pins every knob (window
/// at its ceiling, one worker per pool, an infinite grow threshold) so no
/// resize can fire — resizes themselves are exempt from the contract.
#[test]
fn autotuner_at_fixed_point_allocations_stop_growing() {
    use stronghold_core::host::AutotuneConfig;
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 45);
    let mut t = HostOffloadTrainer::new(
        cfg,
        7,
        HostOffloadConfig {
            window: 2,
            optimizer_workers: 1,
            offload_workers: 1,
            compute_workers: 1,
            adam: adam(),
            autotune: Some(AutotuneConfig {
                m_max: 2,
                max_offload_workers: 1,
                max_compute_workers: 1,
                max_optimizer_workers: 1,
                grow_ratio: f64::INFINITY,
                shrink_ratio: 0.0,
                ..AutotuneConfig::default()
            }),
            ..HostOffloadConfig::default()
        },
    );
    for _ in 0..3 {
        t.train_step(&batch);
    }
    t.flush();
    let early = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
        t.flush();
    });
    let late = allocs_during(|| {
        for _ in 0..3 {
            t.train_step(&batch);
        }
        t.flush();
    });
    let ctrl = t.autotune().expect("controller must be live");
    assert_eq!(ctrl.evaluations(), 9, "controller must run every step");
    assert_eq!(ctrl.resizes(), 0, "pinned config must never resize");
    assert!(
        late <= early + 4,
        "per-step allocations grew with the autotuner live: early window {early}, \
         late window {late}"
    );
    assert!(
        late / 3 <= STEADY_STATE_CAP,
        "autotuned steady-state step allocates too much: {} allocs/step",
        late / 3
    );
}

/// The serving engine's steady-state decode round must be allocation-
/// bounded too: KV appends write into storage preallocated at engine
/// construction, slot workspaces and the staging buffer are reused, and
/// the `m+1` parameter shells circulate without reallocation. Per-round
/// incidentals (the prefetcher thread spawn, channel nodes, span labels)
/// are constant, so a later window of decode rounds may not allocate more
/// than an earlier one.
#[test]
fn serving_decode_round_allocations_stop_growing() {
    use stronghold_core::serve::{GenRequest, ServeConfig, ServeEngine};
    let mut eng = ServeEngine::new(
        tiny(4),
        7,
        ServeConfig {
            window: 2,
            slots: 2,
            compute_workers: 1,
            ..ServeConfig::default()
        },
    );
    // Two long decodes keep both slots active through every measured
    // round: 1 prefill round + 12 decode rounds per request.
    for i in 0..2u64 {
        eng.submit(GenRequest {
            id: i,
            prompt: vec![3 + i as u32, 5],
            max_new_tokens: 13,
            seed: 99 + i,
        });
    }
    for _ in 0..4 {
        assert!(eng.step().is_empty(), "nothing may finish during warm-up");
    }
    let early = allocs_during(|| {
        for _ in 0..3 {
            assert!(eng.step().is_empty());
        }
    });
    let late = allocs_during(|| {
        for _ in 0..3 {
            assert!(eng.step().is_empty());
        }
    });
    assert!(
        late <= early + 8,
        "per-round allocations grew in steady-state decode: early window {early}, \
         late window {late}"
    );
    assert!(
        late / 3 <= STEADY_STATE_CAP,
        "serving steady-state decode round allocates too much: {} allocs/round",
        late / 3
    );
}

/// The engine's policy path (global-norm clip + LR schedule + hook
/// dispatch) must not break the zero-allocation contract: the norm
/// accumulator is stack-only, clip scaling is in place, the schedule is
/// arithmetic, and hook dispatch is a map lookup.
#[test]
fn engine_policy_path_allocations_stop_growing() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 43);
    let build = || {
        HostOffloadTrainer::new(
            cfg,
            7,
            HostOffloadConfig {
                window: 2,
                optimizer_workers: 2,
                adam: adam(),
                schedule: Some(LrSchedule::CosineWithWarmup {
                    peak: 1e-3,
                    floor: 1e-4,
                    warmup: 2,
                    total: 32,
                }),
                clip_norm: Some(0.5),
                ..HostOffloadConfig::default()
            },
        )
    };

    // Hooks disabled entirely (empty registry).
    let mut bare = build();
    // Hooks enabled but empty-bodied: firing must be allocation-free too.
    let mut hooked = build();
    for l in 0..cfg.layers {
        use stronghold_core::hooks::HookPoint;
        for point in [
            HookPoint::PreForward,
            HookPoint::PostForward,
            HookPoint::PreBackward,
            HookPoint::PostBackward,
        ] {
            hooked.hooks_mut().register(l, point, |_| {});
        }
    }
    hooked.hooks_mut().register_post_step(|_| {});

    for t in [&mut bare, &mut hooked] {
        for _ in 0..3 {
            t.train_step(&batch);
        }
    }
    for (name, t) in [("no-hooks", &mut bare), ("empty-hooks", &mut hooked)] {
        // Flush so no in-flight optimizer-pool work straddles a window
        // boundary; the pool's worker threads allocate queue nodes whose
        // timing is otherwise nondeterministic (±a few allocs per window).
        t.flush();
        let early = allocs_during(|| {
            for _ in 0..3 {
                t.train_step(&batch);
            }
            t.flush();
        });
        let late = allocs_during(|| {
            for _ in 0..3 {
                t.train_step(&batch);
            }
            t.flush();
        });
        assert!(
            late <= early + 4,
            "{name}: clip/schedule/hook path allocations grew after warm-up: \
             early window {early}, late window {late}"
        );
        assert!(
            late / 3 <= STEADY_STATE_CAP,
            "{name}: clip/schedule/hook steady-state step allocates too much: {} allocs/step",
            late / 3
        );
    }
}
