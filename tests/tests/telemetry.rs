//! End-to-end telemetry checks on the real host offloading pipeline: the
//! instrumentation must count exactly what the runtime does, measure real
//! copy/compute concurrency, and — above all — never perturb training.

use proptest::prelude::*;
use stronghold_core::adam::AdamParams;
use stronghold_core::host::{HostOffloadConfig, HostOffloadTrainer};
use stronghold_core::Telemetry;
use stronghold_integration_tests::batch_for;
use stronghold_model::config::tiny;

/// One FP-order prefetch per layer per step, regardless of window size, and
/// BP re-fetches exactly the layers that slid out of the window. The copy
/// spans recorded by the prefetcher must genuinely overlap compute spans —
/// the pipelining the paper's §III-A is about.
#[test]
fn host_trainer_prefetch_counts_and_overlap() {
    let cfg = tiny(6);
    let window = 2;
    let steps = 4;
    let batch = batch_for(&cfg, 300);

    let tel = Telemetry::enabled();
    let mut t = HostOffloadTrainer::with_telemetry(
        cfg,
        11,
        HostOffloadConfig {
            window,
            optimizer_workers: 3,
            adam: AdamParams::default(),
            ..HostOffloadConfig::default()
        },
        tel.clone(),
    );
    for _ in 0..steps {
        t.train_step(&batch);
    }
    t.flush();

    let completed = tel.counter("prefetch.completed").get();
    let refetched = tel.counter("prefetch.refetched").get();
    let issued = tel.counter("prefetch.issued").get();
    assert_eq!(
        completed,
        (cfg.layers * steps) as u64,
        "every layer enters the window once per step"
    );
    assert_eq!(
        refetched,
        ((cfg.layers - window) * steps) as u64,
        "BP re-fetches the layers that slid out"
    );
    assert_eq!(issued, completed + refetched, "no lost or spurious fetches");
    assert_eq!(
        tel.counter("offload.grads").get(),
        (cfg.layers * steps) as u64,
        "one gradient offload per layer per step"
    );

    let (copy_ns, compute_ns, overlap_ns) = tel.copy_compute_overlap();
    assert!(copy_ns > 0, "h2d/d2h spans recorded");
    assert!(compute_ns > 0, "fp/bp spans recorded");
    // Genuine copy/compute overlap needs a second hardware thread: with one
    // CPU the prefetch worker only runs while the trainer is blocked on it,
    // so the spans are disjoint by construction and the assertion would be
    // scheduler noise rather than a pipelining check.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > 1 {
        assert!(
            overlap_ns > 0,
            "copies must hide under compute: copy={copy_ns}ns compute={compute_ns}ns"
        );
    }
}

/// With the window spanning the whole model nothing slides out, so the BP
/// re-fetch counter must stay at zero while the FP counter is unchanged.
#[test]
fn fully_resident_window_never_refetches() {
    let cfg = tiny(3);
    let steps = 2;
    let batch = batch_for(&cfg, 301);
    let tel = Telemetry::enabled();
    let mut t = HostOffloadTrainer::with_telemetry(
        cfg,
        7,
        HostOffloadConfig {
            window: cfg.layers,
            optimizer_workers: 2,
            adam: AdamParams::default(),
            ..HostOffloadConfig::default()
        },
        tel.clone(),
    );
    for _ in 0..steps {
        t.train_step(&batch);
    }
    t.flush();
    assert_eq!(
        tel.counter("prefetch.completed").get(),
        (cfg.layers * steps) as u64
    );
    assert_eq!(tel.counter("prefetch.refetched").get(), 0);
}

/// Runs `steps` training steps and returns every observable numeric output,
/// bit-exact (`f32::to_bits`).
fn run_bits(
    layers: usize,
    window: usize,
    workers: usize,
    seed: u64,
    steps: usize,
    tel: Telemetry,
) -> (Vec<u32>, Vec<Vec<u32>>) {
    let cfg = tiny(layers);
    let batch = batch_for(&cfg, seed.wrapping_mul(31).wrapping_add(5));
    let mut t = HostOffloadTrainer::with_telemetry(
        cfg,
        seed,
        HostOffloadConfig {
            window,
            optimizer_workers: workers,
            adam: AdamParams::default(),
            ..HostOffloadConfig::default()
        },
        tel,
    );
    let mut losses = Vec::new();
    for _ in 0..steps {
        losses.push(t.train_step(&batch).to_bits());
    }
    t.flush();
    let params = (0..cfg.layers)
        .map(|i| t.block_params(i).iter().map(|f| f.to_bits()).collect())
        .collect();
    (losses, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Telemetry is observation only: enabling it must leave every loss and
    /// every parameter bit-identical across random tiny configurations,
    /// window sizes, and optimizer worker counts.
    #[test]
    fn telemetry_never_perturbs_training(
        layers in 2usize..=4,
        window in 1usize..=5,
        workers in 1usize..=3,
        seed in 0u64..1000,
        steps in 1usize..=3,
    ) {
        let with_tel = run_bits(layers, window, workers, seed, steps, Telemetry::enabled());
        let without = run_bits(layers, window, workers, seed, steps, Telemetry::disabled());
        prop_assert_eq!(with_tel, without);
    }
}
