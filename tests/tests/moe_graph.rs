//! Cross-crate integration of the dynamic-execution-path machinery
//! (§III-B): a *real* mixture-of-experts block drives the preprocessor's
//! branch-aware prefetch plan.

use stronghold_core::graph::{PrefetchPolicy, TensorGraph};
use stronghold_model::moe::MoeBlock;
use stronghold_tensor::init::{normal, seeded_rng};

/// Builds the tensor graph of a real MoE block (router gate over expert
/// shards with their true state sizes).
fn graph_of(moe: &MoeBlock) -> TensorGraph {
    let mut g = TensorGraph::new();
    let router = g.add_node("router", (moe.router.param_count() * 4) as u64);
    let merge = g.add_node("merge", 0);
    for (i, ex) in moe.experts.iter().enumerate() {
        let n = g.add_node(format!("expert{i}"), (ex.param_count() * 4) as u64);
        g.add_edge(router, n);
        g.add_edge(n, merge);
    }
    g.mark_gated(router);
    g
}

#[test]
fn real_moe_state_sizes_drive_the_policy() {
    let mut rng = seeded_rng(70);
    let moe = MoeBlock::new(16, 4, &mut rng);
    let g = graph_of(&moe);
    assert!(!g.is_sequential());

    let expert_bytes = (moe.experts[0].param_count() * 4) as u64;
    // Window with room for every expert: speculative fetch-all.
    let roomy = g.offload_sequence(4 * expert_bytes);
    // Window with room for half the experts: delay until the gate resolves.
    let tight = g.offload_sequence(2 * expert_bytes);
    let policy_of = |steps: &[stronghold_core::graph::OffloadStep], label: &str| {
        steps
            .iter()
            .find(|s| g.node(s.node).label == label)
            .map(|s| s.policy)
            .expect("expert step present")
    };
    assert_eq!(
        policy_of(&roomy, "expert0"),
        PrefetchPolicy::FetchAllCandidates
    );
    assert_eq!(
        policy_of(&tight, "expert0"),
        PrefetchPolicy::DelayUntilKnown
    );
}

#[test]
fn routing_statistics_bound_the_speculative_fetch() {
    // After a warm-up batch, the planner could prefetch only the experts
    // the data actually touches: verify the utilization signal is coherent
    // with the forward routing.
    let mut rng = seeded_rng(71);
    let moe = MoeBlock::new(16, 4, &mut rng);
    let x = normal([64, 16], 1.0, &mut rng);
    let (_, cache) = moe.forward(&x);
    let util = moe.utilization(&cache);
    assert_eq!(util.iter().sum::<usize>(), 64);
    for (e, count) in util.iter().enumerate() {
        let routed = cache.routes.iter().filter(|r| **r == e).count();
        assert_eq!(routed, *count, "expert {e}");
    }
}

#[test]
fn moe_training_signal_flows() {
    // A few gradient steps on the routed experts reduce a simple matching
    // loss — the dynamic path is trainable end to end.
    let mut rng = seeded_rng(72);
    let mut moe = MoeBlock::new(8, 3, &mut rng);
    let x = normal([12, 8], 0.5, &mut rng);
    let target = normal([12, 8], 0.5, &mut rng);
    let loss_of = |m: &MoeBlock| -> f32 {
        let (y, _) = m.forward(&x);
        y.data()
            .iter()
            .zip(target.data())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / y.numel() as f32
    };
    let initial = loss_of(&moe);
    for _ in 0..60 {
        let (y, cache) = moe.forward(&x);
        let n = y.numel() as f32;
        let dy = stronghold_tensor::Tensor::from_vec(
            *y.shape(),
            y.data()
                .iter()
                .zip(target.data())
                .map(|(a, b)| 2.0 * (a - b) / n)
                .collect(),
        );
        let mut grads = moe.zero_grads();
        moe.backward(&dy, &x, &cache, &mut grads);
        let lr = 0.5;
        // Plain SGD over every parameter group.
        let sgd = |p: &mut stronghold_tensor::Tensor, g: &stronghold_tensor::Tensor| {
            stronghold_tensor::ops::axpy(p, -lr, g);
        };
        sgd(&mut moe.ln_g, &grads.ln_g);
        sgd(&mut moe.ln_b, &grads.ln_b);
        sgd(&mut moe.router.weight, &grads.router.weight);
        sgd(&mut moe.router.bias, &grads.router.bias);
        for (ex, g) in moe.experts.iter_mut().zip(&grads.experts) {
            sgd(&mut ex.fc1.weight, &g.fc1.weight);
            sgd(&mut ex.fc1.bias, &g.fc1.bias);
            sgd(&mut ex.fc2.weight, &g.fc2.weight);
            sgd(&mut ex.fc2.bias, &g.fc2.bias);
        }
    }
    let fin = loss_of(&moe);
    assert!(
        fin < initial * 0.8,
        "MoE failed to learn: {initial} -> {fin}"
    );
}
