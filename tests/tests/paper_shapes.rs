//! Paper-shape assertions: every figure's qualitative result — who wins, by
//! roughly what factor, where the crossovers fall — must hold in the
//! reproduction. These are the contract EXPERIMENTS.md reports against.

use stronghold_baselines::{MegatronLM, PlainInference, ZeroInfinity, ZeroOffload, L2L};
use stronghold_core::method::{max_trainable_layers, TrainingMethod};
use stronghold_core::{Stronghold, StrongholdOptions};
use stronghold_model::config::{common_1_7b, ModelConfig};
use stronghold_sim::Platform;

fn v100() -> Platform {
    Platform::v100_server()
}

fn ceiling(m: &dyn TrainingMethod, max_layers: usize) -> f64 {
    max_trainable_layers(m, &ModelConfig::new(1, 2560, 16), &v100(), max_layers)
        .map(|c| c.billions())
        .unwrap_or(0.0)
}

#[test]
fn fig6a_size_ordering_and_ratios() {
    let mega = ceiling(&MegatronLM, 100);
    let l2l = ceiling(&L2L, 500);
    let zo = ceiling(&ZeroOffload, 500);
    let zi = ceiling(&ZeroInfinity::cpu_only(), 1000);
    let sh = ceiling(&Stronghold::new(), 4000);

    // Ordering from Fig. 6a.
    assert!(
        mega < l2l && l2l < zi && zo < zi && zi < sh,
        "{mega} {l2l} {zo} {zi} {sh}"
    );
    // Paper's headline ratios: 6.5x over L2L/ZO, 1.9x over ZeRO-Infinity.
    assert!((4.0..9.0).contains(&(sh / zo)), "SH/ZO = {}", sh / zo);
    assert!((1.5..2.5).contains(&(sh / zi)), "SH/ZI = {}", sh / zi);
    // Absolute anchors.
    assert!((1.4..2.2).contains(&mega), "Megatron {mega}B (paper 1.7)");
    assert!((36.0..43.0).contains(&sh), "STRONGHOLD {sh}B (paper 39.5)");
}

#[test]
fn fig8a_throughput_ordering() {
    let cfg = common_1_7b();
    let p = v100();
    let mega = MegatronLM.iteration(&cfg, &p).unwrap().throughput;
    let l2l = L2L.iteration(&cfg, &p).unwrap().throughput;
    let zo = ZeroOffload.iteration(&cfg, &p).unwrap().throughput;
    let zi = ZeroInfinity::cpu_only()
        .iteration(&cfg, &p)
        .unwrap()
        .throughput;
    let sh = Stronghold::new().iteration(&cfg, &p).unwrap().throughput;

    // L2L is by far the slowest; ZeRO variants sit below Megatron;
    // STRONGHOLD is the only offloader above Megatron.
    assert!(l2l < 0.45 * mega, "L2L/Megatron = {}", l2l / mega);
    assert!(zo < mega && zi < mega, "ZeRO must trail Megatron");
    assert!(
        zo > 0.3 * mega && zi > 0.3 * mega,
        "ZeRO not catastrophically slow"
    );
    assert!(sh > mega, "STRONGHOLD {sh} must beat Megatron {mega}");
}

#[test]
fn fig10_nvme_gain_at_least_8x() {
    let p = v100();
    let cfg = ModelConfig::new(500, 2560, 16); // 39.4B, beyond ZI's RAM ceiling
    let sh = Stronghold::with_options(StrongholdOptions {
        nvme_cache_layers: Some(64),
        ..StrongholdOptions::default()
    });
    let a = sh.iteration(&cfg, &p).unwrap().throughput;
    let b = ZeroInfinity::with_nvme()
        .iteration(&cfg, &p)
        .unwrap()
        .throughput;
    assert!(a / b >= 8.0, "NVMe gain {}", a / b);
}

#[test]
fn fig13_inference_crossover() {
    let p = v100();
    // Small model: both serve, comparable speed.
    let small = common_1_7b();
    let plain = PlainInference::inference(&small, &p).unwrap().throughput;
    let sh = stronghold_core::inference::simulate_inference(&small, &p, 8)
        .unwrap()
        .throughput;
    assert!(
        (sh / plain) > 0.9,
        "small-model inference parity: {}",
        sh / plain
    );
    // Large model: plain OOMs, STRONGHOLD serves.
    let big = ModelConfig::new(300, 2560, 16);
    assert!(PlainInference::inference(&big, &p).is_err());
    assert!(stronghold_core::inference::simulate_inference(&big, &p, 8).is_ok());
}

#[test]
fn fig11_multistream_band() {
    // Speedup over Megatron within (roughly) the paper's 1.7-2.1 band for
    // mid batch sizes.
    let p = v100();
    for bs in [4usize, 8] {
        let cfg = common_1_7b().with_batch(bs);
        let mega = MegatronLM.iteration(&cfg, &p).unwrap().throughput;
        let sh = Stronghold::new().iteration(&cfg, &p).unwrap().throughput;
        let sp = sh / mega;
        assert!((1.2..2.6).contains(&sp), "bs {bs}: speedup {sp}");
    }
}

#[test]
fn intro_claim_trainable_size_1_9x_to_6_5x() {
    // Abstract: "improves the trainable model size by 1.9x~6.5x ... with
    // 1.2x~3.7x improvement on the training throughput" over offloading
    // baselines.
    let p = v100();
    let cfg = common_1_7b();
    let sh_tp = Stronghold::new().iteration(&cfg, &p).unwrap().throughput;
    for baseline in [
        Box::new(L2L) as Box<dyn TrainingMethod>,
        Box::new(ZeroOffload),
        Box::new(ZeroInfinity::cpu_only()),
    ] {
        let tp = baseline.iteration(&cfg, &p).unwrap().throughput;
        let gain = sh_tp / tp;
        assert!(gain > 1.2, "{}: throughput gain {gain}", baseline.name());
    }
}
