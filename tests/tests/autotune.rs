//! Closed-loop autotuner acceptance: mid-run window/worker resizes are
//! bit-invisible (forced schedules and the live controller both match
//! resident training exactly, checkpoints byte-equal), the `autotune.*`
//! gauges mirror the knobs in force, and the host-measured calibration
//! predicts a *fresh* run's step time within a stated error bound.

use stronghold_core::adam::AdamParams;
use stronghold_core::host::autotune::calibrate_host;
use stronghold_core::host::{
    AutotuneConfig, DataParallelConfig, DataParallelTrainer, EngineOptions, HostOffloadConfig,
    HostOffloadTrainer, HostResidentTrainer, MultiStreamTrainer, Tuning,
};
use stronghold_core::telemetry::Telemetry;
use stronghold_integration_tests::batch_for;
use stronghold_model::config::tiny;

fn adam() -> AdamParams {
    AdamParams {
        lr: 2e-3,
        ..AdamParams::default()
    }
}

/// An aggressive controller config for tests: immediate commits (patience
/// 1), a single settling step per window probe, and a zero grow threshold
/// so any measured stall moves a knob. Real runs use the calmer defaults.
fn eager() -> AutotuneConfig {
    AutotuneConfig {
        grow_ratio: 0.0,
        shrink_ratio: 0.0,
        patience: 1,
        settle_evals: 1,
        ..AutotuneConfig::default()
    }
}

/// ISSUE acceptance: a hostile schedule of mid-run resizes — every knob
/// moves, window shrinks to 1 and grows to fully resident — must leave the
/// trained parameters bit-identical to resident training and the saved
/// training state byte-equal.
#[test]
fn forced_resize_schedule_stays_bit_identical_to_resident() {
    let cfg = tiny(6);
    let batch = batch_for(&cfg, 107);
    let mut resident = HostResidentTrainer::new(cfg, 23, adam());
    let mut t = HostOffloadTrainer::new(
        cfg,
        23,
        HostOffloadConfig {
            window: 2,
            optimizer_workers: 2,
            adam: adam(),
            ..HostOffloadConfig::default()
        },
    );
    // (window, offload, compute, optimizer) applied after each step.
    let schedule: &[(usize, usize, usize, usize)] = &[
        (4, 2, 2, 3),
        (1, 0, 1, 1),
        (6, 1, 2, 4),
        (3, 2, 1, 2),
        (2, 1, 1, 1),
    ];
    for (step, &(w, ow, cw, opt)) in schedule.iter().enumerate() {
        let lr = resident.train_step(&batch);
        let lo = t.train_step(&batch);
        assert_eq!(lr, lo, "loss diverged at step {step}");
        t.force_tuning(Tuning {
            window: w,
            offload_workers: ow,
            compute_workers: cw,
            optimizer_workers: opt,
            spill_workers: 0,
        });
        assert_eq!(t.window(), w, "window not applied after step {step}");
    }
    // One more step at the final shape.
    assert_eq!(
        resident.train_step(&batch),
        t.train_step(&batch),
        "loss diverged after the last resize"
    );
    t.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            t.block_params(i),
            resident.block_params(i),
            "block {i} parameters diverged"
        );
    }
    assert_eq!(
        t.save_training_state().as_ref(),
        resident.save_training_state().as_ref(),
        "checkpoints must be byte-equal"
    );
}

/// The live controller — evaluating every step, resizing whenever it likes
/// — must also be bit-invisible, and its gauges must mirror the knobs in
/// force on the backend.
#[test]
fn live_autotuner_is_bit_invisible_and_mirrors_gauges() {
    let cfg = tiny(5);
    let batch = batch_for(&cfg, 108);
    let steps = 10;
    let mut resident = HostResidentTrainer::new(cfg, 31, adam());
    let tel = Telemetry::enabled();
    let mut t = HostOffloadTrainer::with_telemetry(
        cfg,
        31,
        HostOffloadConfig {
            window: 2,
            optimizer_workers: 2,
            adam: adam(),
            autotune: Some(eager()),
            ..HostOffloadConfig::default()
        },
        tel.clone(),
    );
    for step in 0..steps {
        let lr = resident.train_step(&batch);
        let lo = t.train_step(&batch);
        assert_eq!(lr, lo, "loss diverged at step {step}");
    }
    t.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            t.block_params(i),
            resident.block_params(i),
            "block {i} parameters diverged under live autotuning"
        );
    }
    let ctrl = t.autotune().expect("controller must be live");
    assert_eq!(ctrl.evaluations(), steps, "one evaluation per step");
    assert_eq!(tel.counter("autotune.evals").get(), steps);
    let cur = ctrl.current();
    assert_eq!(
        tel.gauge("autotune.window").get(),
        cur.window as i64,
        "window gauge must mirror the knob"
    );
    assert_eq!(
        tel.gauge("autotune.offload_workers").get(),
        cur.offload_workers as i64
    );
    assert_eq!(
        tel.gauge("autotune.compute_workers").get(),
        cur.compute_workers as i64
    );
    assert_eq!(
        tel.gauge("autotune.optimizer_workers").get(),
        cur.optimizer_workers as i64
    );
    assert_eq!(t.window(), cur.window, "backend window matches controller");
    let b = ctrl.bounds();
    assert!(cur.window >= b.window.0 && cur.window <= b.window.1.max(b.window.0));
}

/// ISSUE acceptance (calibration): distill one telemetry-enabled run into a
/// [`stronghold_sim::calibration::HostCalibration`], then predict the step
/// time of a *fresh* trainer on the same shape. The prediction must land
/// within 25% of the fresh run's measured mean step time.
#[test]
fn calibrated_prediction_lands_within_25_percent_of_a_fresh_run() {
    let cfg = tiny(6);
    let batch = batch_for(&cfg, 109);
    let hocfg = HostOffloadConfig {
        window: 2,
        optimizer_workers: 2,
        adam: adam(),
        ..HostOffloadConfig::default()
    };
    let measure = |steps: u64| -> (f64, stronghold_sim::calibration::HostCalibration) {
        let tel = Telemetry::enabled();
        let mut t = HostOffloadTrainer::with_telemetry(cfg, 41, hocfg, tel.clone());
        // Warm the pipeline (thread-local scratch pools, channel buffers)
        // outside the measured span.
        for _ in 0..2 {
            t.train_step(&batch);
        }
        t.flush();
        let skip = calibrate_host(&tel, t.device(), 2, 0); // warmup totals
        let t0 = std::time::Instant::now();
        for _ in 0..steps {
            t.train_step(&batch);
        }
        t.flush();
        let wall = t0.elapsed().as_nanos() as u64;
        let total = calibrate_host(&tel, t.device(), 2 + steps, 0);
        // Subtract the warmup's cumulative totals so the calibration covers
        // exactly the measured span.
        let cal = stronghold_sim::calibration::HostCalibration {
            steps,
            wall_ns: wall,
            compute_ns: total.compute_ns - skip.compute_ns,
            h2d_bytes: total.h2d_bytes - skip.h2d_bytes,
            h2d_busy_ns: total.h2d_busy_ns - skip.h2d_busy_ns,
            d2h_bytes: total.d2h_bytes - skip.d2h_bytes,
            d2h_busy_ns: total.d2h_busy_ns - skip.d2h_busy_ns,
            overlap_ns: total.overlap_ns.saturating_sub(skip.overlap_ns),
            spill_read_bytes: total.spill_read_bytes - skip.spill_read_bytes,
            spill_read_busy_ns: total.spill_read_busy_ns - skip.spill_read_busy_ns,
            spill_write_bytes: total.spill_write_bytes - skip.spill_write_bytes,
            spill_write_busy_ns: total.spill_write_busy_ns - skip.spill_write_busy_ns,
        };
        (wall as f64 / steps as f64, cal)
    };
    let (_, cal) = measure(6);
    let predicted = cal.predict_step_ns();
    let (measured, _) = measure(6);
    let err = (predicted - measured).abs() / measured;
    assert!(
        err <= 0.25,
        "calibrated prediction off by {:.1}% (predicted {predicted:.0} ns, fresh run measured \
         {measured:.0} ns)",
        err * 100.0
    );
}

/// The multi-stream backend only exposes the optimizer pool to the
/// controller (stream resizes would change the fold tree); tuned training
/// still matches an untuned run bitwise.
#[test]
fn multistream_autotune_tunes_only_the_pool() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 110);
    let run = |autotune: Option<AutotuneConfig>| {
        let mut t = MultiStreamTrainer::with_options(
            cfg,
            7,
            2,
            2,
            EngineOptions {
                adam: adam(),
                autotune,
                ..EngineOptions::default()
            },
            Telemetry::disabled(),
        );
        let mut losses = Vec::new();
        for _ in 0..5 {
            losses.push(t.train_step(&batch));
        }
        let tuning = t.autotune().map(|c| c.current());
        (losses, t.save_training_state(), tuning)
    };
    let (l0, m0, _) = run(None);
    let (l1, m1, tuning) = run(Some(eager()));
    assert_eq!(l0, l1, "losses diverged under autotuning");
    assert_eq!(m0.as_ref(), m1.as_ref(), "states diverged under autotuning");
    let cur = tuning.expect("controller must be live");
    assert_eq!(cur.window, 1, "window is pinned on this backend");
    assert_eq!(cur.offload_workers, 0, "offload engine is pinned");
    assert_eq!(cur.compute_workers, 2, "stream count is pinned");
    assert!(cur.optimizer_workers >= 1);
}

/// Data parallelism runs ONE controller for the whole replica group; every
/// proposal is applied to all ranks, so the group stays in SPMD lockstep
/// and tuned 2-replica training matches untuned 1-replica training bitwise.
#[test]
fn data_parallel_autotune_keeps_replicas_in_lockstep() {
    let cfg = tiny(3);
    let batch = batch_for(&cfg, 111);
    let mut single = DataParallelTrainer::new(
        cfg,
        51,
        DataParallelConfig {
            replicas: 1,
            adam: adam(),
            ..DataParallelConfig::default()
        },
    );
    let mut tuned = DataParallelTrainer::new(
        cfg,
        51,
        DataParallelConfig {
            replicas: 2,
            adam: adam(),
            autotune: Some(eager()),
            ..DataParallelConfig::default()
        },
    );
    for step in 0..6 {
        let a = single.train_step(&batch);
        let b = tuned.train_step(&batch);
        assert_eq!(a, b, "loss diverged at step {step}");
    }
    single.flush();
    tuned.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            single.block_params(i),
            tuned.block_params(i),
            "block {i} diverged from the single-replica reference"
        );
        assert_eq!(
            tuned.replica_block_params(0, i),
            tuned.replica_block_params(1, i),
            "replicas out of lockstep at block {i}"
        );
    }
    let ctrl = tuned.autotune().expect("trainer-level controller");
    assert_eq!(ctrl.evaluations(), 6, "one evaluation per global step");
    assert_eq!(tuned.window(), ctrl.current().window);
}
