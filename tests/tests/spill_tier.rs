//! PR 9 acceptance: the file-backed spill tier beneath host RAM is
//! *bit-invisible*. A model whose FP32 masters + Adam state exceed the
//! configured `host_capacity` trains end-to-end with the over-budget layers
//! living on an [`NvmeStore`](stronghold_core::nvme::NvmeStore) swap file,
//! and produces bit-identical parameters, losses, and byte-equal SHTS
//! checkpoints versus the all-resident trainer — across windows, spill
//! policies, spill-worker counts, and device precisions. Spill traffic is
//! metered with zero tolerance against the closed-form per-step formulas,
//! and one run's measured spill bandwidths predict a fresh run's spill busy
//! time within a stated bound (the §III-G calibration loop).

use stronghold_core::adam::AdamParams;
use stronghold_core::host::autotune::calibrate_host;
use stronghold_core::host::{
    AutotuneConfig, DataParallelConfig, DataParallelTrainer, HostOffloadConfig, HostOffloadTrainer,
    HostResidentTrainer, SpillPolicy, Tier,
};
use stronghold_core::telemetry::Telemetry;
use stronghold_core::tier::RESIDENT_BYTES_PER_PARAM;
use stronghold_integration_tests::batch_for;
use stronghold_model::config::tiny;
use stronghold_tensor::Precision;

const SEED: u64 = 77;

fn adam() -> AdamParams {
    AdamParams {
        lr: 2e-3,
        ..AdamParams::default()
    }
}

/// A `host_capacity` with room for exactly `resident` RAM-tier layers of
/// this config (12 bytes per parameter: FP32 master + Adam m + v).
fn capacity_for(cfg: &stronghold_model::config::ModelConfig, resident: usize) -> u64 {
    resident as u64 * RESIDENT_BYTES_PER_PARAM * cfg.block_params()
}

fn spill_cfg(window: usize, capacity: u64, workers: usize) -> HostOffloadConfig {
    HostOffloadConfig {
        window,
        optimizer_workers: 2,
        adam: adam(),
        host_capacity: Some(capacity),
        spill_workers: workers,
        ..HostOffloadConfig::default()
    }
}

/// The headline: a model whose full optimizer state does NOT fit in the
/// host-RAM budget trains bit-identically to resident training, the
/// cost-aware plan spills the deepest layers first, and the resident image
/// honours the budget.
#[test]
fn over_budget_model_trains_bit_identically_to_resident() {
    let cfg = tiny(6);
    let batch = batch_for(&cfg, 120);
    let budget = capacity_for(&cfg, 2); // 4 of 6 layers must spill
    let mut resident = HostResidentTrainer::new(cfg, SEED, adam());
    let mut spilled = HostOffloadTrainer::new(cfg, SEED, spill_cfg(2, budget, 1));

    assert_eq!(
        spilled.spilled_layers(),
        4,
        "budget admits 2 resident layers"
    );
    let plan = spilled.tier_plan().clone();
    assert_eq!(
        plan.tiers()[..2],
        [Tier::Ram, Tier::Ram],
        "shallow layers stay"
    );
    assert!(
        plan.tiers()[2..].iter().all(|t| *t == Tier::File),
        "deepest layers spill first (cost-ascending order)"
    );
    assert!(
        plan.resident_bytes() <= budget,
        "resident image {} over budget {budget}",
        plan.resident_bytes()
    );

    for step in 0..5 {
        let lr = resident.train_step(&batch);
        let lo = spilled.train_step(&batch);
        assert_eq!(lr, lo, "loss diverged at step {step}");
    }
    spilled.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            spilled.block_params(i),
            resident.block_params(i),
            "block {i} parameters diverged"
        );
    }
    assert_eq!(
        spilled.save_training_state().as_ref(),
        resident.save_training_state().as_ref(),
        "SHTS checkpoints must be byte-equal (spilled Adam state included)"
    );
    let (read, written) = spilled.spill_traffic();
    assert!(read > 0 && written > 0, "the spill tier must actually run");
}

/// Stress matrix: window × spill policy × spill workers × precision. Every
/// spilled run is bitwise equal to its unspilled twin (and, at FP32, to the
/// resident reference), with byte-equal checkpoints — placement is not part
/// of the math.
#[test]
fn spill_matrix_is_bit_invisible() {
    let cfg = tiny(5);
    let batch = batch_for(&cfg, 121);
    let steps = 4;
    let run = |precision: Precision,
               capacity: Option<u64>,
               policy: SpillPolicy,
               workers: usize,
               window: usize| {
        let mut t = HostOffloadTrainer::new(
            cfg,
            SEED,
            HostOffloadConfig {
                precision,
                spill: policy,
                host_capacity: capacity,
                ..spill_cfg(window, 0, workers)
            },
        );
        let mut losses = Vec::new();
        for _ in 0..steps {
            losses.push(t.train_step(&batch));
        }
        t.flush();
        let params: Vec<Vec<f32>> = (0..cfg.layers).map(|i| t.block_params(i)).collect();
        let spilled = t.spilled_layers();
        (losses, params, t.save_training_state(), spilled)
    };
    let mut resident = HostResidentTrainer::new(cfg, SEED, adam());
    let mut resident_losses = Vec::new();
    for _ in 0..steps {
        resident_losses.push(resident.train_step(&batch));
    }
    let partial = capacity_for(&cfg, 3);
    for precision in [Precision::F32, Precision::Bf16] {
        // The unspilled twin: same precision, everything resident.
        let reference = run(precision, None, SpillPolicy::CostAware, 1, 2);
        assert_eq!(reference.3, 0, "no budget → nothing spills");
        if precision == Precision::F32 {
            assert_eq!(reference.0, resident_losses, "FP32 twin vs resident");
        }
        for window in [1usize, 2] {
            for (policy, capacity, want_spilled) in [
                (SpillPolicy::CostAware, Some(partial), cfg.layers - 3),
                (SpillPolicy::All, Some(partial), cfg.layers),
            ] {
                for workers in [1usize, 2] {
                    let tag = format!(
                        "{} window={window} policy={policy:?} workers={workers}",
                        precision.name()
                    );
                    let got = run(precision, capacity, policy, workers, window);
                    assert_eq!(got.3, want_spilled, "spill count ({tag})");
                    assert_eq!(got.0, reference.0, "losses diverged ({tag})");
                    assert_eq!(got.1, reference.1, "parameters diverged ({tag})");
                    assert_eq!(
                        got.2.as_ref(),
                        reference.2.as_ref(),
                        "checkpoints not byte-equal ({tag})"
                    );
                }
            }
        }
    }
}

/// Zero-tolerance byte accounting: over a step window, the `spill.*`
/// telemetry counters and the swap file's own I/O counters advance by
/// exactly the closed-form per-step traffic the [`TierPlan`] predicts —
/// every fill, BP refill, optimizer page-in, and write-back, no slack.
#[test]
fn spill_byte_accounting_is_exact() {
    let cfg = tiny(5);
    let batch = batch_for(&cfg, 122);
    let tel = Telemetry::enabled();
    let budget = capacity_for(&cfg, 2); // 3 of 5 layers spill
    let mut t = HostOffloadTrainer::with_telemetry(cfg, SEED, spill_cfg(2, budget, 2), tel.clone());
    let plan = t.tier_plan().clone();
    let m = t.window();
    let f2h_per_step: u64 = (0..cfg.layers).map(|l| plan.f2h_bytes_per_step(l, m)).sum();
    let h2f_per_step: u64 = (0..cfg.layers).map(|l| plan.h2f_bytes_per_step(l)).sum();
    assert!(f2h_per_step > 0 && h2f_per_step > 0);

    // One warm-up step settles nothing — traffic is exact from step 1 — but
    // deltas also prove the counters are per-step linear, not front-loaded.
    t.train_step(&batch);
    t.flush();
    let f2h0 = tel.counter("spill.f2h_bytes").get();
    let h2f0 = tel.counter("spill.h2f_bytes").get();
    assert_eq!(f2h0, f2h_per_step, "step 1 file→host bytes");
    assert_eq!(h2f0, h2f_per_step, "step 1 host→file bytes");
    let (read0, written0) = t.spill_traffic();

    let steps = 3u64;
    for _ in 0..steps {
        t.train_step(&batch);
    }
    t.flush();
    assert_eq!(
        tel.counter("spill.f2h_bytes").get() - f2h0,
        steps * f2h_per_step,
        "file→host delta over {steps} steps"
    );
    assert_eq!(
        tel.counter("spill.h2f_bytes").get() - h2f0,
        steps * h2f_per_step,
        "host→file delta over {steps} steps"
    );
    // The swap file's own counters see the same engine traffic (they also
    // count the one-time init writes, hence deltas).
    let (read1, written1) = t.spill_traffic();
    assert_eq!(read1 - read0, steps * f2h_per_step, "NvmeStore reads");
    assert_eq!(
        written1 - written0,
        steps * h2f_per_step,
        "NvmeStore writes"
    );
    // Fill waits are measured with an always-on clock (autotune input).
    assert!(
        t.fill_wait_nanos() > 0,
        "spilled reads must report fill time"
    );
}

/// The autotuner treats spill workers as a first-class knob: fill-wait
/// pressure grows the pool live (bounded by limits ∩ cores ∩ cap), the
/// `autotune.spill_workers` gauge mirrors it, and the resizes stay
/// bit-invisible versus resident training.
#[test]
fn autotuner_resizes_spill_workers_bit_invisibly() {
    let cfg = tiny(5);
    let batch = batch_for(&cfg, 123);
    let tel = Telemetry::enabled();
    let budget = capacity_for(&cfg, 1);
    let mut resident = HostResidentTrainer::new(cfg, SEED, adam());
    let mut t = HostOffloadTrainer::with_telemetry(
        cfg,
        SEED,
        HostOffloadConfig {
            autotune: Some(AutotuneConfig {
                grow_ratio: 0.0,
                shrink_ratio: 0.0,
                patience: 1,
                settle_evals: 1,
                // Fixed, not measured: the worker caps must not depend on
                // the box (CI containers often report a single core).
                cores: 4,
                ..AutotuneConfig::default()
            }),
            ..spill_cfg(2, budget, 1)
        },
        tel.clone(),
    );
    for step in 0..8 {
        let lr = resident.train_step(&batch);
        let lo = t.train_step(&batch);
        assert_eq!(lr, lo, "loss diverged at step {step}");
    }
    t.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            t.block_params(i),
            resident.block_params(i),
            "block {i} diverged under live spill-worker tuning"
        );
    }
    let ctrl = t.autotune().expect("controller must be live");
    let cur = ctrl.current();
    let b = ctrl.bounds();
    assert!(b.spill_workers.0 >= 1, "spilled backend unpins the knob");
    assert!(
        cur.spill_workers > 1,
        "zero grow threshold + real fill waits must grow the pool (got {})",
        cur.spill_workers
    );
    assert!(cur.spill_workers <= b.spill_workers.1);
    assert_eq!(
        tel.gauge("autotune.spill_workers").get(),
        cur.spill_workers as i64,
        "gauge must mirror the knob in force"
    );
}

/// Data parallelism composes with the spill tier: replicas with private
/// swap files stay in lockstep and match unspilled single-replica training
/// bitwise — gradients never spill, so the all-reduce path is untouched.
#[test]
fn data_parallel_replicas_spill_bit_identically() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 124);
    let mut single = DataParallelTrainer::new(
        cfg,
        SEED,
        DataParallelConfig {
            replicas: 1,
            adam: adam(),
            ..DataParallelConfig::default()
        },
    );
    let mut spilled = DataParallelTrainer::new(
        cfg,
        SEED,
        DataParallelConfig {
            replicas: 2,
            adam: adam(),
            host_capacity: Some(capacity_for(&cfg, 1)),
            spill_workers: 2,
            ..DataParallelConfig::default()
        },
    );
    for step in 0..4 {
        let a = single.train_step(&batch);
        let b = spilled.train_step(&batch);
        assert_eq!(a, b, "loss diverged at step {step}");
    }
    single.flush();
    spilled.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            single.block_params(i),
            spilled.block_params(i),
            "block {i} diverged from the unspilled single-replica reference"
        );
        assert_eq!(
            spilled.replica_block_params(0, i),
            spilled.replica_block_params(1, i),
            "replicas out of lockstep at block {i}"
        );
    }
}

/// The calibration loop over the file tier: one telemetry-enabled run's
/// measured spill bandwidths, distilled through `calibrate_host`, predict a
/// *fresh* run's spill busy time within 8× in either direction (a loose
/// bound — CI disks are noisy — but enough to catch a model that is off by
/// orders of magnitude), and re-anchor the simulator's NVMe spec.
#[test]
fn measured_spill_bandwidth_calibrates_the_nvme_model() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 125);
    let budget = capacity_for(&cfg, 1);
    let steps = 4u64;
    let measure = || {
        let tel = Telemetry::enabled();
        let mut t =
            HostOffloadTrainer::with_telemetry(cfg, SEED, spill_cfg(2, budget, 1), tel.clone());
        for _ in 0..steps {
            t.train_step(&batch);
        }
        t.flush();
        let cal = calibrate_host(&tel, t.device(), steps, 0);
        let plan = t.tier_plan().clone();
        let m = t.window();
        let read_per_step: u64 = (0..cfg.layers).map(|l| plan.f2h_bytes_per_step(l, m)).sum();
        let write_per_step: u64 = (0..cfg.layers).map(|l| plan.h2f_bytes_per_step(l)).sum();
        (cal, read_per_step, write_per_step)
    };
    let (cal_a, read_b, write_b) = measure();
    assert!(cal_a.spill_read_bandwidth() > 0.0);
    assert!(cal_a.spill_write_bandwidth() > 0.0);
    let (cal_b, _, _) = measure();
    let predicted = cal_a.predict_spill_ns_per_step(read_b as f64, write_b as f64);
    let measured =
        (cal_b.spill_read_busy_ns + cal_b.spill_write_busy_ns) as f64 / cal_b.steps as f64;
    assert!(predicted > 0.0 && measured > 0.0);
    let ratio = predicted / measured;
    assert!(
        (0.125..=8.0).contains(&ratio),
        "calibrated spill prediction off by more than 8×: predicted {predicted:.0} ns/step, \
         fresh run measured {measured:.0} ns/step"
    );
    // The measured bandwidths re-anchor the simulator's §III-G NVMe spec.
    let prior = stronghold_sim::hardware::Platform::v100_server()
        .nvme
        .unwrap();
    let spec = cal_a.calibrate_nvme(prior);
    assert_eq!(spec.capacity, prior.capacity);
    assert!((spec.read_bw - cal_a.spill_read_bandwidth() * 1e9).abs() < 1.0);
    assert!((spec.write_bw - cal_a.spill_write_bandwidth() * 1e9).abs() < 1.0);
}
