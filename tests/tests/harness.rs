//! The paperbench harness itself: every experiment must run to completion
//! and produce sane output.

#[test]
fn every_experiment_id_resolves() {
    for id in stronghold_bench::ALL_EXPERIMENTS {
        assert!(
            stronghold_bench::run(id).is_some(),
            "experiment {id} did not resolve"
        );
    }
    assert!(stronghold_bench::run("nonsense").is_none());
}

#[test]
fn experiments_produce_rows_and_verdicts() {
    // The cheap experiments run inline; search-heavy ones are covered by
    // the `all` smoke below and the dedicated tests.
    for id in ["table1", "fig4", "fig8a", "fig9", "fig13", "comms"] {
        let exp = stronghold_bench::run(id).unwrap();
        assert!(!exp.verdict.is_empty(), "{id} verdict");
        assert!(
            exp.tables.iter().map(|t| t.rows.len()).sum::<usize>() > 0,
            "{id} has no rows"
        );
        // Render must not panic and must carry the paper claim.
        let rendered = exp.render();
        assert!(rendered.contains(exp.paper_claim));
    }
}

#[test]
fn json_serialization_round_trips() {
    let exp = stronghold_bench::run("table1").unwrap();
    let j = exp.to_json();
    assert_eq!(j["id"], "table1");
    let s = serde_json::to_string(&j).unwrap();
    let back: serde_json::Value = serde_json::from_str(&s).unwrap();
    assert_eq!(back["id"], "table1");
}

#[test]
fn fig4_trace_shows_all_lanes() {
    let exp = stronghold_bench::run("fig4").unwrap();
    assert!(exp.extra.contains("GPU-compute[0]"));
    assert!(exp.extra.contains("H2D-copy"));
    assert!(exp.extra.contains("D2H-copy"));
    assert!(exp.extra.contains("CPU-optim"));
}
