//! Data-parallel equivalence suite: N-replica training over the windowed
//! backend must be **bit-identical** to a single-replica resident run on
//! the same global batch, for every combination of replica count, window
//! size, dispatch mode, and gradient-bucket size.
//!
//! This is the §III-F claim made falsifiable: the canonical reduction tree
//! (`stronghold_collective::order`) makes each replica's shard fold a
//! subtree of the global-batch fold, and the bucketed all-reduce combines
//! the shard partials with the same tree over the rank index — so the
//! entire matrix below collapses onto one reference trajectory.

use stronghold_core::adam::AdamParams;
use stronghold_core::host::{DataParallelConfig, DataParallelTrainer, HostResidentTrainer};
use stronghold_integration_tests::batch_for;
use stronghold_model::config::{tiny, ModelConfig};

const SEED: u64 = 7;

fn adam() -> AdamParams {
    AdamParams {
        lr: 2e-3,
        ..AdamParams::default()
    }
}

fn cfg() -> ModelConfig {
    tiny(4).with_batch(8)
}

/// Reference trajectory: per-step losses and final block parameters of a
/// single-replica resident trainer over the global batch.
fn resident_reference(steps: usize) -> (Vec<f32>, Vec<Vec<f32>>) {
    let cfg = cfg();
    let batch = batch_for(&cfg, 71);
    let mut t = HostResidentTrainer::new(cfg, SEED, adam());
    let losses = (0..steps).map(|_| t.train_step(&batch)).collect();
    let params = (0..cfg.layers).map(|i| t.block_params(i)).collect();
    (losses, params)
}

fn dp_config(
    replicas: usize,
    window: usize,
    streaming: bool,
    bucket_bytes: usize,
) -> DataParallelConfig {
    DataParallelConfig {
        replicas,
        window,
        bucket_bytes,
        optimizer_workers: 2,
        offload_workers: 1,
        compute_workers: 1,
        adam: adam(),
        schedule: None,
        clip_norm: None,
        streaming_dispatch: streaming,
        autotune: None,
        ..DataParallelConfig::default()
    }
}

/// The full stress matrix: replicas {1, 2, 4} × window {1, 2} × dispatch
/// {deferred, streaming} × bucket {one layer, four layers, whole model}.
/// Every cell must reproduce the resident reference bit-for-bit — losses
/// per step and every block parameter — and all replicas must stay in
/// lockstep.
#[test]
fn dp_matrix_matches_single_replica_resident_bitwise() {
    let cfg = cfg();
    let batch = batch_for(&cfg, 71);
    let steps = 3;
    let (ref_losses, ref_params) = resident_reference(steps);
    let layer_bytes = cfg.block_params() as usize * 4;

    for replicas in [1usize, 2, 4] {
        for window in [1usize, 2] {
            for streaming in [false, true] {
                for bucket_bytes in [layer_bytes, 4 * layer_bytes, usize::MAX] {
                    let cell = format!(
                        "replicas={replicas} window={window} streaming={streaming} \
                         bucket_bytes={bucket_bytes}"
                    );
                    let mut t = DataParallelTrainer::new(
                        cfg,
                        SEED,
                        dp_config(replicas, window, streaming, bucket_bytes),
                    );
                    for (s, expect) in ref_losses.iter().enumerate() {
                        let loss = t.train_step(&batch);
                        assert_eq!(
                            loss.to_bits(),
                            expect.to_bits(),
                            "{cell}: loss diverged at step {s} ({loss} vs {expect})"
                        );
                    }
                    t.flush();
                    for (i, expect) in ref_params.iter().enumerate() {
                        assert_eq!(
                            &t.block_params(i),
                            expect,
                            "{cell}: block {i} params diverged"
                        );
                        for r in 1..replicas {
                            assert_eq!(
                                t.replica_block_params(r, i),
                                t.replica_block_params(0, i),
                                "{cell}: replica {r} out of lockstep at block {i}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Thread-interleaving determinism at the trainer level: the most
/// concurrent cell (4 replicas, streaming dispatch, layer-sized buckets,
/// offload workers racing the bucket cursor) repeated from scratch must
/// retrace itself exactly.
#[test]
fn dp_repeat_runs_are_bit_identical() {
    let cfg = cfg();
    let batch = batch_for(&cfg, 72);
    let layer_bytes = cfg.block_params() as usize * 4;
    let run = || {
        let mut t = DataParallelTrainer::new(cfg, 11, dp_config(4, 2, true, layer_bytes));
        let losses: Vec<u32> = (0..4).map(|_| t.train_step(&batch).to_bits()).collect();
        t.flush();
        let params: Vec<Vec<f32>> = (0..cfg.layers).map(|i| t.block_params(i)).collect();
        (losses, params)
    };
    let a = run();
    for rep in 0..3 {
        assert_eq!(a, run(), "repeat run {rep} diverged");
    }
}

/// Evaluation and checkpointing route through replica 0 and agree with the
/// resident trainer's view of the same parameters.
#[test]
fn dp_eval_and_state_follow_replica_zero() {
    let cfg = cfg();
    let batch = batch_for(&cfg, 73);
    let mut dp = DataParallelTrainer::new(cfg, SEED, dp_config(2, 2, true, usize::MAX));
    let mut single = HostResidentTrainer::new(cfg, SEED, adam());
    for _ in 0..2 {
        dp.train_step(&batch);
        single.train_step(&batch);
    }
    assert_eq!(dp.eval_loss(&batch), single.eval_loss(&batch));
    // The saved state is byte-equal to the single-replica trainer's: same
    // step counter, same parameters, same Adam moments.
    assert_eq!(
        dp.save_training_state().as_ref(),
        single.save_training_state().as_ref(),
        "training-state blobs diverged"
    );
}

/// Config validation rejects shard shapes the trainer would panic on.
#[test]
fn dp_validate_matches_train_step_requirements() {
    let cfg = cfg();
    let ok = dp_config(2, 2, true, usize::MAX);
    assert!(DataParallelTrainer::validate(&cfg, &ok, 8).is_ok());
    assert!(DataParallelTrainer::validate(&cfg, &ok, 9).is_err());
    let zero_window = DataParallelConfig {
        window: 0,
        ..ok.clone()
    };
    assert!(DataParallelTrainer::validate(&cfg, &zero_window, 8).is_err());
}
