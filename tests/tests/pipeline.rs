//! Scheduler-level invariants of the simulated offloading pipeline.

use stronghold_core::memplan::{ColdTier, StrongholdMemPlan};
use stronghold_core::offload::{derive_window, simulate_iteration, OffloadOptions};
use stronghold_model::config::{common_1_7b, model_4b, ModelConfig};
use stronghold_sim::{Lane, Platform, SimTime};

fn v100() -> Platform {
    Platform::v100_server()
}

#[test]
fn makespan_bounds() {
    // The iteration can never beat the pure-compute lower bound, and the
    // schedule must keep every FIFO lane serialized.
    let cfg = model_4b();
    let r = simulate_iteration(&cfg, &v100(), &OffloadOptions::default()).unwrap();
    let compute_busy = r.timeline.compute_busy();
    assert!(r.iter_time >= compute_busy);
    r.timeline.assert_lanes_serialized();
}

#[test]
fn every_sliding_layer_moves_both_ways() {
    let cfg = common_1_7b();
    let opts = OffloadOptions {
        window: Some(3),
        ..OffloadOptions::default()
    };
    let r = simulate_iteration(&cfg, &v100(), &opts).unwrap();
    let h2d = r
        .timeline
        .segments()
        .iter()
        .filter(|s| s.lane == Lane::CopyIn)
        .count();
    let d2h = r
        .timeline
        .segments()
        .iter()
        .filter(|s| s.lane == Lane::CopyOut)
        .count();
    // Sliding layers: 20 blocks - window(3 resident) = 17. FP fetches those
    // except nothing extra; BP refetches the ones that left. Both lanes must
    // be busy with a plausible op count.
    assert!(h2d >= 17, "h2d ops {h2d}");
    assert!(d2h >= 17, "d2h ops {d2h}");
    // One CPU optimizer dispatch per sliding layer.
    let adam_ops = r
        .timeline
        .segments()
        .iter()
        .filter(|s| s.lane == Lane::CpuOptim)
        .count();
    assert_eq!(adam_ops, 17, "one concurrent update per sliding layer");
}

#[test]
fn bigger_windows_never_break_the_schedule() {
    let cfg = common_1_7b();
    for m in 1..=12 {
        let opts = OffloadOptions {
            window: Some(m),
            ..OffloadOptions::default()
        };
        let r = simulate_iteration(&cfg, &v100(), &opts).unwrap();
        assert!(r.iter_time > SimTime::ZERO);
        r.timeline.assert_lanes_serialized();
    }
}

#[test]
fn derived_window_is_memory_feasible() {
    for cfg in [common_1_7b(), model_4b(), ModelConfig::new(200, 2560, 16)] {
        let m = derive_window(&cfg, &v100(), &OffloadOptions::default()).unwrap();
        let plan = StrongholdMemPlan::new(cfg, 1, ColdTier::CpuRam);
        assert!(
            plan.gpu_usage(m) <= StrongholdMemPlan::gpu_capacity(&v100()),
            "window {m} exceeds device for {}",
            cfg.size_label()
        );
    }
}

#[test]
fn deeper_models_scale_iteration_time() {
    let p = v100();
    let t20 = simulate_iteration(&common_1_7b(), &p, &OffloadOptions::default())
        .unwrap()
        .iter_time
        .as_secs_f64();
    let t200 = simulate_iteration(
        &ModelConfig::new(200, 2560, 16),
        &p,
        &OffloadOptions::default(),
    )
    .unwrap()
    .iter_time
    .as_secs_f64();
    let ratio = t200 / t20;
    assert!(
        (8.0..12.0).contains(&ratio),
        "10x layers -> {ratio:.1}x time"
    );
}

#[test]
fn nvme_iteration_slower_than_ram_but_works() {
    let cfg = model_4b();
    let p = v100();
    let ram = simulate_iteration(&cfg, &p, &OffloadOptions::default()).unwrap();
    let nvme = simulate_iteration(
        &cfg,
        &p,
        &OffloadOptions {
            cold_tier: ColdTier::Nvme {
                cpu_cache_layers: 64,
            },
            ..OffloadOptions::default()
        },
    )
    .unwrap();
    assert!(nvme.iter_time >= ram.iter_time);
    assert!(nvme.throughput > 0.0);
}

#[test]
fn compute_never_precedes_its_prefetch() {
    // Dependency legality, recovered from the trace itself: for every
    // sliding layer, "fp Lj" on the compute lane must start at or after
    // "h2d Lj" ends, and "bp Lj" at or after "h2d' Lj" ends.
    let cfg = common_1_7b();
    let opts = OffloadOptions {
        window: Some(4),
        ..OffloadOptions::default()
    };
    let r = simulate_iteration(&cfg, &v100(), &opts).unwrap();
    let find = |label: &str| {
        r.timeline
            .segments()
            .iter()
            .find(|s| s.label == label)
            .cloned()
    };
    let mut checked = 0;
    for j in 0..cfg.layers + 2 {
        if let (Some(copy), Some(fp)) = (find(&format!("h2d L{j}")), find(&format!("fp L{j}"))) {
            assert!(
                fp.start >= copy.end,
                "fp L{j} started before its prefetch landed"
            );
            checked += 1;
        }
        if let (Some(copy), Some(bp)) = (find(&format!("h2d' L{j}")), find(&format!("bp L{j}"))) {
            assert!(
                bp.start >= copy.end,
                "bp L{j} started before its BP prefetch landed"
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 20,
        "only {checked} dependencies found in the trace"
    );
}

#[test]
fn offload_never_precedes_compute() {
    // The post_forward/post_backward offloads must start after the layer's
    // compute ends (step 3 of Fig. 3b, step 2 of Fig. 3c).
    let cfg = common_1_7b();
    let opts = OffloadOptions {
        window: Some(3),
        ..OffloadOptions::default()
    };
    let r = simulate_iteration(&cfg, &v100(), &opts).unwrap();
    let find = |label: String| {
        r.timeline
            .segments()
            .iter()
            .find(|s| s.label == label)
            .cloned()
    };
    let mut checked = 0;
    for j in 0..cfg.layers + 2 {
        if let (Some(fp), Some(out)) = (find(format!("fp L{j}")), find(format!("d2h L{j}"))) {
            assert!(out.start >= fp.end, "d2h L{j} started before fp finished");
            checked += 1;
        }
        if let (Some(bp), Some(out)) = (find(format!("bp L{j}")), find(format!("d2h' L{j}"))) {
            assert!(out.start >= bp.end, "d2h' L{j} started before bp finished");
            checked += 1;
        }
    }
    assert!(checked >= 20, "only {checked} offload dependencies found");
}

#[test]
fn simulation_is_deterministic() {
    let cfg = model_4b();
    let a = simulate_iteration(&cfg, &v100(), &OffloadOptions::default()).unwrap();
    let b = simulate_iteration(&cfg, &v100(), &OffloadOptions::default()).unwrap();
    assert_eq!(a.iter_time, b.iter_time);
    assert_eq!(a.window, b.window);
    assert_eq!(a.timeline.segments().len(), b.timeline.segments().len());
}
