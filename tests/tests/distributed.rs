//! Cluster-level integration: Fig. 6b ceilings, Fig. 7b ordering, Fig. 12 —
//! plus traffic validation: the bytes *measured* through the real
//! in-process collective during data-parallel training must equal the
//! §III-F analytic volume formulas exactly, per step and per replica count.

use stronghold_baselines::{ZeroInfinity, ZeroOffload};
use stronghold_cluster::comm::dp_traffic_bytes;
use stronghold_cluster::{MegatronMP, StrongholdDP, StrongholdMP, ZeroDP};
use stronghold_collective::{v_dp, v_dp_exact, volume::VolumeParams};
use stronghold_core::adam::AdamParams;
use stronghold_core::host::{DataParallelConfig, DataParallelTrainer};
use stronghold_core::method::{max_trainable_layers, TrainingMethod};
use stronghold_model::config::{tiny, ModelConfig};
use stronghold_model::data::SyntheticCorpus;
use stronghold_sim::Platform;

fn a10() -> Platform {
    Platform::a10_cluster_8()
}

#[test]
fn fig6b_cluster_ceilings() {
    let base = ModelConfig::new(1, 5120, 16).with_mp(8);
    let sh = max_trainable_layers(&StrongholdMP, &base, &a10(), 3000)
        .unwrap()
        .billions();
    let zi = max_trainable_layers(&ZeroInfinity::cpu_only(), &base, &a10(), 3000)
        .unwrap()
        .billions();
    let mega = max_trainable_layers(&MegatronMP, &base, &a10(), 3000)
        .unwrap()
        .billions();
    // Paper: STRONGHOLD 82.1B > ZeRO-Infinity 56.9B >> Megatron-MP.
    assert!((74.0..92.0).contains(&sh), "SH cluster ceiling {sh}B");
    assert!((50.0..64.0).contains(&zi), "ZI cluster ceiling {zi}B");
    assert!(mega < zi, "Megatron-MP {mega}B must trail ZI {zi}B");
    assert!((1.2..1.8).contains(&(sh / zi)), "SH/ZI = {}", sh / zi);
}

#[test]
fn single_gpu_methods_stay_small_on_cluster() {
    // L2L/ZeRO-Offload cannot exploit the cluster (paper: "largely
    // constrained by a single GPU memory").
    let single = Platform::a10_cluster(1);
    let base = ModelConfig::new(1, 5120, 16);
    let zo = max_trainable_layers(&ZeroOffload, &base, &single, 1000)
        .unwrap()
        .billions();
    assert!(zo < 10.0, "ZeRO-Offload single-GPU bound, got {zo}B");
}

#[test]
fn fig12_ordering_and_magnitude() {
    let base = ModelConfig::new(1, 2560, 16).with_batch(1);
    let cfg = max_trainable_layers(&ZeroDP::stage2(), &base, &a10(), 400).unwrap();
    assert!(
        (2.0..5.0).contains(&cfg.billions()),
        "ZeRO-2 cap {}B",
        cfg.billions()
    );
    let p = a10();
    let z2 = ZeroDP::stage2().iteration(&cfg, &p).unwrap().throughput;
    let z3 = ZeroDP::stage3().iteration(&cfg, &p).unwrap().throughput;
    let sh = StrongholdDP.iteration(&cfg, &p).unwrap().throughput;
    assert!(sh > z2 && z2 > z3, "ordering: SH {sh} Z2 {z2} Z3 {z3}");
    assert!(sh / z2 > 1.8, "SH/Z2 = {}", sh / z2);
    assert!(sh / z3 > 2.0, "SH/Z3 = {}", sh / z3);
}

fn dp_trainer(cfg: ModelConfig, replicas: usize, streaming: bool) -> DataParallelTrainer {
    DataParallelTrainer::new(
        cfg,
        5,
        DataParallelConfig {
            replicas,
            window: 2,
            streaming_dispatch: streaming,
            adam: AdamParams {
                lr: 2e-3,
                ..AdamParams::default()
            },
            ..DataParallelConfig::default()
        },
    )
}

/// Measured traffic == analytic volume, with **zero tolerance**: for every
/// replica count, each training step moves exactly `4·w·(w−1)·E` bytes
/// through the collective, where `E` is the per-replica gradient element
/// count — and `E` equals the model's full parameter count, so the measured
/// bytes also equal [`dp_traffic_bytes`], the cluster cost model's §III-F
/// volume. (This replaces analytic-only coverage: the formula is now
/// checked against bytes actually carried by `collective::real`.)
#[test]
fn measured_dp_traffic_matches_volume_formula_exactly() {
    let cfg = tiny(3).with_batch(12);
    let batch = SyntheticCorpus::new(cfg.vocab, 80).next_batch(12, cfg.seq - 1);
    for replicas in [1usize, 2, 3, 4] {
        let mut t = dp_trainer(cfg, replicas, true);
        let e = t.grad_elements();
        assert_eq!(
            e,
            cfg.total_params(),
            "per-replica gradient elements must cover every parameter"
        );
        let per_step = 4 * v_dp_exact(replicas as u64, e);
        assert_eq!(per_step, dp_traffic_bytes(&cfg, replicas));
        for step in 1..=2u64 {
            t.train_step(&batch);
            assert_eq!(
                t.allreduce_bytes(),
                per_step * step,
                "replicas={replicas} after step {step}"
            );
        }
    }
}

/// The streaming (bucketed, overlapped) and deferred paths issue the same
/// collective traffic: identical bytes, and one collective call per bucket
/// plus one for the resident groups, regardless of dispatch mode.
#[test]
fn dp_traffic_is_dispatch_mode_invariant() {
    let cfg = tiny(3).with_batch(8);
    let batch = SyntheticCorpus::new(cfg.vocab, 81).next_batch(8, cfg.seq - 1);
    let mut counts = Vec::new();
    for streaming in [false, true] {
        let mut t = dp_trainer(cfg, 2, streaming);
        for _ in 0..2 {
            t.train_step(&batch);
        }
        counts.push((t.allreduce_bytes(), t.collective_calls()));
    }
    assert_eq!(counts[0], counts[1], "deferred vs streaming traffic");
    // Whole-model bucket (the default): per step each rank issues one
    // bucket flush + one resident reduce = 2 collectives, counted once per
    // group-wide call.
    assert_eq!(counts[0].1, 2 * 2);
}

/// The paper's `V_dp` estimate decomposes exactly into the measured count:
/// `E = (12·n·hd² + hd·vs) + extras`, where the extras are the terms the
/// closed form drops (per-block biases and layernorms, position table,
/// final LN) — so `v_dp(paper) ≤ v_dp_exact(measured)` with an exactly
/// accounted gap.
#[test]
fn paper_volume_formula_decomposes_measured_elements() {
    let cfg = tiny(3).with_batch(8);
    let t = dp_trainer(cfg, 2, true);
    let e = t.grad_elements();
    let (n, h, v, s) = (
        cfg.layers as u64,
        cfg.hidden as u64,
        cfg.vocab as u64,
        cfg.seq as u64,
    );
    let paper = VolumeParams {
        w: 2,
        n,
        hd: h,
        bs: 8,
        seq: s,
        vs: v,
    };
    let paper_elems = 12 * n * h * h + h * v;
    let extras = 13 * n * h + s * h + 2 * h;
    assert_eq!(e, paper_elems + extras, "unaccounted gradient elements");
    assert_eq!(v_dp(&paper), v_dp_exact(2, paper_elems));
    assert_eq!(
        v_dp_exact(2, e),
        v_dp(&paper) + v_dp_exact(2, extras),
        "measured volume must be the paper volume plus the exact extras"
    );
}

#[test]
fn mp_throughput_ordering_on_cluster() {
    // Fig. 7b: at each method's ceiling STRONGHOLD still moves; here we
    // check it beats ZeRO-Infinity on a common large MP model.
    let cfg = ModelConfig::new(150, 5120, 16).with_mp(8); // ~47B
    let p = a10();
    let sh = StrongholdMP.iteration(&cfg, &p).unwrap().throughput;
    let zi = ZeroInfinity::cpu_only()
        .iteration(&cfg, &p)
        .unwrap()
        .throughput;
    assert!(sh > zi, "SH {sh} vs ZI {zi} on a common 47B model");
}
