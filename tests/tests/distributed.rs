//! Cluster-level integration: Fig. 6b ceilings, Fig. 7b ordering, Fig. 12.

use stronghold_baselines::{ZeroInfinity, ZeroOffload};
use stronghold_cluster::{MegatronMP, StrongholdDP, StrongholdMP, ZeroDP};
use stronghold_core::method::{max_trainable_layers, TrainingMethod};
use stronghold_model::config::ModelConfig;
use stronghold_sim::Platform;

fn a10() -> Platform {
    Platform::a10_cluster_8()
}

#[test]
fn fig6b_cluster_ceilings() {
    let base = ModelConfig::new(1, 5120, 16).with_mp(8);
    let sh = max_trainable_layers(&StrongholdMP, &base, &a10(), 3000)
        .unwrap()
        .billions();
    let zi = max_trainable_layers(&ZeroInfinity::cpu_only(), &base, &a10(), 3000)
        .unwrap()
        .billions();
    let mega = max_trainable_layers(&MegatronMP, &base, &a10(), 3000)
        .unwrap()
        .billions();
    // Paper: STRONGHOLD 82.1B > ZeRO-Infinity 56.9B >> Megatron-MP.
    assert!((74.0..92.0).contains(&sh), "SH cluster ceiling {sh}B");
    assert!((50.0..64.0).contains(&zi), "ZI cluster ceiling {zi}B");
    assert!(mega < zi, "Megatron-MP {mega}B must trail ZI {zi}B");
    assert!((1.2..1.8).contains(&(sh / zi)), "SH/ZI = {}", sh / zi);
}

#[test]
fn single_gpu_methods_stay_small_on_cluster() {
    // L2L/ZeRO-Offload cannot exploit the cluster (paper: "largely
    // constrained by a single GPU memory").
    let single = Platform::a10_cluster(1);
    let base = ModelConfig::new(1, 5120, 16);
    let zo = max_trainable_layers(&ZeroOffload, &base, &single, 1000)
        .unwrap()
        .billions();
    assert!(zo < 10.0, "ZeRO-Offload single-GPU bound, got {zo}B");
}

#[test]
fn fig12_ordering_and_magnitude() {
    let base = ModelConfig::new(1, 2560, 16).with_batch(1);
    let cfg = max_trainable_layers(&ZeroDP::stage2(), &base, &a10(), 400).unwrap();
    assert!(
        (2.0..5.0).contains(&cfg.billions()),
        "ZeRO-2 cap {}B",
        cfg.billions()
    );
    let p = a10();
    let z2 = ZeroDP::stage2().iteration(&cfg, &p).unwrap().throughput;
    let z3 = ZeroDP::stage3().iteration(&cfg, &p).unwrap().throughput;
    let sh = StrongholdDP.iteration(&cfg, &p).unwrap().throughput;
    assert!(sh > z2 && z2 > z3, "ordering: SH {sh} Z2 {z2} Z3 {z3}");
    assert!(sh / z2 > 1.8, "SH/Z2 = {}", sh / z2);
    assert!(sh / z3 > 2.0, "SH/Z3 = {}", sh / z3);
}

#[test]
fn mp_throughput_ordering_on_cluster() {
    // Fig. 7b: at each method's ceiling STRONGHOLD still moves; here we
    // check it beats ZeRO-Infinity on a common large MP model.
    let cfg = ModelConfig::new(150, 5120, 16).with_mp(8); // ~47B
    let p = a10();
    let sh = StrongholdMP.iteration(&cfg, &p).unwrap().throughput;
    let zi = ZeroInfinity::cpu_only()
        .iteration(&cfg, &p)
        .unwrap()
        .throughput;
    assert!(sh > zi, "SH {sh} vs ZI {zi} on a common 47B model");
}
