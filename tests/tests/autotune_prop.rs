//! Property tests of the step-boundary autotune controller: from *any*
//! starting tuning and *any* synthetic stall trace the knobs stay inside
//! the declared bounds (window never exceeds `m_mem_max`), and on a
//! steady-state trace — no stalls, empty queues — the controller reaches a
//! fixed point in a bounded number of evaluations and never moves again.

use proptest::prelude::*;
use stronghold_core::host::{AutotuneConfig, AutotuneController, StallSignals, TuneLimits, Tuning};
use stronghold_core::telemetry::Telemetry;

/// One synthetic step observation: a wall time plus the per-step signal
/// *deltas* the backend would have accumulated during it.
#[derive(Clone, Debug)]
struct Obs {
    step_ns: u64,
    fetch: u64,
    shell: u64,
    d2h: u64,
    fill: u64,
    backlog: u64,
}

impl From<(u64, u64, u64, u64, u64, u64)> for Obs {
    fn from((step_ns, fetch, shell, d2h, fill, backlog): (u64, u64, u64, u64, u64, u64)) -> Self {
        Obs {
            step_ns,
            fetch,
            shell,
            d2h,
            fill,
            backlog,
        }
    }
}

/// Six sampling ranges, one per [`Obs`] field.
type ObsRanges = (
    std::ops::Range<u64>,
    std::ops::Range<u64>,
    std::ops::Range<u64>,
    std::ops::Range<u64>,
    std::ops::Range<u64>,
    std::ops::Range<u64>,
);

/// Strategy tuple for one [`Obs`]: step wall time, four stall-time deltas
/// (any of which may dwarf the step time), and a queue backlog.
fn obs_ranges() -> ObsRanges {
    (
        1_000u64..2_000_000,
        0u64..3_000_000,
        0u64..3_000_000,
        0u64..3_000_000,
        0u64..3_000_000,
        0u64..6,
    )
}

/// Drives the controller through a trace, accumulating the deltas into the
/// cumulative counters a real backend reports. Returns every tuning the
/// controller held (initial + after each eval).
fn drive(ctrl: &mut AutotuneController, trace: &[Obs]) -> Vec<Tuning> {
    let mut cum = StallSignals::default();
    let mut history = vec![ctrl.current()];
    for o in trace {
        cum.fetch_wait_ns += o.fetch;
        cum.shell_wait_ns += o.shell;
        cum.d2h_wait_ns += o.d2h;
        cum.fill_wait_ns += o.fill;
        cum.optim_backlog = o.backlog;
        ctrl.observe(o.step_ns, cum);
        history.push(ctrl.current());
    }
    history
}

fn in_bounds(t: Tuning, b: TuneLimits) -> bool {
    let ok = |v: usize, (lo, hi): (usize, usize)| v >= lo && v <= hi.max(lo);
    ok(t.window, b.window)
        && ok(t.offload_workers, b.offload_workers)
        && ok(t.compute_workers, b.compute_workers)
        && ok(t.optimizer_workers, b.optimizer_workers)
        && ok(t.spill_workers, b.spill_workers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bounds invariant: whatever the starting tuning (even far outside the
    /// limits) and whatever the trace, every tuning the controller ever
    /// holds sits within `bounds()`, and the window never exceeds `m_max`.
    #[test]
    fn knobs_stay_within_bounds_for_any_trace(
        m_max in 1usize..12,
        layers in 1usize..16,
        start_w in 0usize..24,
        start_ow in 0usize..24,
        start_cw in 0usize..24,
        start_opt in 0usize..24,
        start_sp in 0usize..24,
        raw_trace in proptest::collection::vec(obs_ranges(), 1..60),
    ) {
        let trace: Vec<Obs> = raw_trace.into_iter().map(Obs::from).collect();
        let cfg = AutotuneConfig {
            m_max,
            patience: 1,
            settle_evals: 1,
            ..AutotuneConfig::default()
        };
        let limits = TuneLimits {
            window: (1, layers),
            offload_workers: (1, 8),
            compute_workers: (1, 8),
            optimizer_workers: (1, 8),
            spill_workers: (1, 8),
        };
        let initial = Tuning {
            window: start_w,
            offload_workers: start_ow,
            compute_workers: start_cw,
            optimizer_workers: start_opt,
            spill_workers: start_sp,
        };
        let mut ctrl = AutotuneController::new(cfg, limits, initial, &Telemetry::disabled());
        let bounds = ctrl.bounds();
        for (i, t) in drive(&mut ctrl, &trace).iter().enumerate().skip(1) {
            prop_assert!(in_bounds(*t, bounds), "eval {i} left bounds: {t:?} vs {bounds:?}");
            prop_assert!(t.window <= m_max.max(1), "eval {i} window {} > m_max {m_max}", t.window);
        }
    }

    /// Convergence: a steady-state trace (zero stall time, empty queues)
    /// drives every knob monotonically to its floor/target and then holds —
    /// the controller reaches a fixed point within a bound derived from the
    /// knob spans and never resizes again.
    #[test]
    fn steady_trace_reaches_a_fixed_point_in_bounded_evals(
        m_max in 1usize..12,
        layers in 1usize..16,
        start_w in 0usize..24,
        start_ow in 0usize..24,
        start_cw in 0usize..24,
        start_opt in 0usize..24,
        start_sp in 0usize..24,
        step_ns in 100_000u64..5_000_000,
    ) {
        let cfg = AutotuneConfig {
            m_max,
            patience: 2,
            settle_evals: 1,
            ..AutotuneConfig::default()
        };
        let limits = TuneLimits {
            window: (1, layers),
            offload_workers: (1, 8),
            compute_workers: (1, 8),
            optimizer_workers: (1, 8),
            spill_workers: (1, 8),
        };
        let initial = Tuning {
            window: start_w,
            offload_workers: start_ow,
            compute_workers: start_cw,
            optimizer_workers: start_opt,
            spill_workers: start_sp,
        };
        let mut ctrl = AutotuneController::new(cfg, limits, initial, &Telemetry::disabled());
        let b = ctrl.bounds();
        // Worst case every knob walks its whole span, one unit per commit,
        // each commit taking `patience` identical proposals; the window can
        // additionally spend `settle_evals` frozen per grow. Double it for
        // slack — the point is a *bound*, not tightness.
        let span = (b.window.1 - b.window.0)
            + (b.offload_workers.1 - b.offload_workers.0)
            + (b.compute_workers.1 - b.compute_workers.0)
            + (b.optimizer_workers.1 - b.optimizer_workers.0)
            + (b.spill_workers.1 - b.spill_workers.0);
        let budget = 2 * (span + 2) * (cfg.patience as usize + cfg.settle_evals as usize + 1);
        let steady = Obs { step_ns, fetch: 0, shell: 0, d2h: 0, fill: 0, backlog: 0 };
        let trace: Vec<Obs> = std::iter::repeat_n(steady, budget + 10).collect();
        let history = drive(&mut ctrl, &trace);
        let fixed = history[budget];
        prop_assert!(in_bounds(fixed, b));
        for (i, t) in history.iter().enumerate().skip(budget) {
            prop_assert_eq!(
                *t, fixed,
                "controller moved at eval {} after the convergence budget {}", i, budget
            );
        }
        // The fixed point is the floor for the queue-drain knobs: with no
        // stalls there is nothing to feed.
        prop_assert_eq!(fixed.offload_workers, b.offload_workers.0);
        prop_assert_eq!(fixed.optimizer_workers, b.optimizer_workers.0);
        prop_assert_eq!(fixed.spill_workers, b.spill_workers.0);
    }
}
