//! The paper's §III-A exactness claim, verified end-to-end: the asynchronous
//! offloading pipeline (prefetcher thread, bounded device window, concurrent
//! optimizer actors) produces **bit-identical** parameters to conventional
//! resident training, for every window size and worker count.

use std::collections::HashSet;

use stronghold_core::adam::AdamParams;
use stronghold_core::host::{
    EngineOptions, HostOffloadConfig, HostOffloadTrainer, HostResidentTrainer,
};
use stronghold_core::schedule::LrSchedule;
use stronghold_core::telemetry::Telemetry;
use stronghold_integration_tests::batch_for;
use stronghold_model::config::tiny;

fn adam() -> AdamParams {
    AdamParams {
        lr: 2e-3,
        ..AdamParams::default()
    }
}

#[test]
fn offloaded_equals_resident_bitwise() {
    let cfg = tiny(5);
    let batch = batch_for(&cfg, 100);

    let mut resident = HostResidentTrainer::new(cfg, 9, adam());
    let mut offloaded = HostOffloadTrainer::new(
        cfg,
        9,
        HostOffloadConfig {
            window: 2,
            optimizer_workers: 4,
            adam: adam(),
            ..HostOffloadConfig::default()
        },
    );
    for step in 0..6 {
        let lr = resident.train_step(&batch);
        let lo = offloaded.train_step(&batch);
        assert_eq!(lr, lo, "loss diverged at step {step}");
    }
    offloaded.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            offloaded.block_params(i),
            resident.block_params(i),
            "block {i} parameters diverged"
        );
    }
    assert_eq!(
        offloaded.optimizer_updates(),
        6 * cfg.layers,
        "one concurrent update per layer per step"
    );
}

#[test]
fn window_size_does_not_change_results() {
    let cfg = tiny(6);
    let batch = batch_for(&cfg, 101);
    let run = |window: usize| {
        let mut t = HostOffloadTrainer::new(
            cfg,
            4,
            HostOffloadConfig {
                window,
                optimizer_workers: 3,
                adam: adam(),
                ..HostOffloadConfig::default()
            },
        );
        let mut losses = Vec::new();
        for _ in 0..4 {
            losses.push(t.train_step(&batch));
        }
        t.flush();
        let params: Vec<Vec<f32>> = (0..cfg.layers).map(|i| t.block_params(i)).collect();
        (losses, params)
    };
    let w1 = run(1);
    let w3 = run(3);
    let w6 = run(6);
    assert_eq!(w1, w3, "window 1 vs 3");
    assert_eq!(w3, w6, "window 3 vs 6 (fully resident)");
}

#[test]
fn worker_count_does_not_change_results() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 102);
    let run = |workers: usize| {
        let mut t = HostOffloadTrainer::new(
            cfg,
            5,
            HostOffloadConfig {
                window: 2,
                optimizer_workers: workers,
                adam: adam(),
                ..HostOffloadConfig::default()
            },
        );
        for _ in 0..5 {
            t.train_step(&batch);
        }
        t.flush();
        (0..cfg.layers)
            .map(|i| t.block_params(i))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(8), "optimizer concurrency must be invisible");
}

#[test]
fn eval_matches_between_trainers() {
    let cfg = tiny(3);
    let batch = batch_for(&cfg, 103);
    let mut resident = HostResidentTrainer::new(cfg, 6, adam());
    let mut offloaded = HostOffloadTrainer::new(
        cfg,
        6,
        HostOffloadConfig {
            adam: adam(),
            ..HostOffloadConfig::default()
        },
    );
    for _ in 0..3 {
        resident.train_step(&batch);
        offloaded.train_step(&batch);
    }
    let er = resident.eval_loss(&batch);
    let eo = offloaded.eval_loss(&batch);
    assert_eq!(er, eo, "eval losses diverged");
}

#[test]
fn convergence_on_synthetic_language() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 104);
    let mut t = HostOffloadTrainer::new(
        cfg,
        12,
        HostOffloadConfig {
            window: 2,
            optimizer_workers: 4,
            adam: AdamParams {
                lr: 5e-3,
                ..AdamParams::default()
            },
            ..HostOffloadConfig::default()
        },
    );
    let initial = t.eval_loss(&batch);
    for _ in 0..30 {
        t.train_step(&batch);
    }
    let fin = t.eval_loss(&batch);
    assert!(
        fin < initial * 0.7,
        "offloaded training failed to learn: {initial} -> {fin}"
    );
}

/// Stress matrix for the overlapped pipeline: every combination of window
/// size, dispatch policy (streaming vs deferred), and engine policy
/// (clip + schedule on/off) must stay bit-identical to resident training
/// after multiple steps. With clipping on, streaming silently degrades to
/// deferred dispatch — the results must not care either way.
#[test]
fn pipeline_matrix_stays_bit_identical_to_resident() {
    let cfg = tiny(6);
    let batch = batch_for(&cfg, 105);
    let policy = |on: bool| {
        if on {
            (
                Some(LrSchedule::CosineWithWarmup {
                    peak: 2e-3,
                    floor: 2e-4,
                    warmup: 2,
                    total: 12,
                }),
                Some(0.75),
            )
        } else {
            (None, None)
        }
    };
    for policy_on in [false, true] {
        let (schedule, clip_norm) = policy(policy_on);
        let mut resident = HostResidentTrainer::with_options(
            cfg,
            17,
            EngineOptions {
                adam: adam(),
                schedule,
                clip_norm,
                ..EngineOptions::default()
            },
        );
        let mut reference: Vec<f32> = Vec::new();
        for _ in 0..4 {
            reference.push(resident.train_step(&batch));
        }
        for window in [1usize, 2] {
            for streaming in [true, false] {
                let mut t = HostOffloadTrainer::new(
                    cfg,
                    17,
                    HostOffloadConfig {
                        window,
                        optimizer_workers: 3,
                        adam: adam(),
                        schedule,
                        clip_norm,
                        streaming_dispatch: streaming,
                        ..HostOffloadConfig::default()
                    },
                );
                let tag = format!("policy={policy_on} window={window} streaming={streaming}");
                for (step, want) in reference.iter().enumerate() {
                    let got = t.train_step(&batch);
                    assert_eq!(got, *want, "loss diverged at step {step} ({tag})");
                }
                t.flush();
                for i in 0..cfg.layers {
                    assert_eq!(
                        t.block_params(i),
                        resident.block_params(i),
                        "block {i} parameters diverged ({tag})"
                    );
                }
            }
        }
    }
}

/// Trace-level evidence that gradient offload left the compute thread's
/// critical path: every `d2h-copy` span must come from a thread that never
/// recorded a `compute` span.
#[test]
fn d2h_copies_run_off_the_compute_thread() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 106);
    let tel = Telemetry::enabled();
    let mut t = HostOffloadTrainer::with_telemetry(
        cfg,
        3,
        HostOffloadConfig {
            adam: adam(),
            ..HostOffloadConfig::default()
        },
        tel.clone(),
    );
    for _ in 0..2 {
        t.train_step(&batch);
    }
    t.flush();
    let spans = tel.spans();
    let compute_threads: HashSet<u64> = spans
        .iter()
        .filter(|s| s.track == "compute")
        .map(|s| s.thread)
        .collect();
    let d2h: Vec<_> = spans.iter().filter(|s| s.track == "d2h-copy").collect();
    assert!(!compute_threads.is_empty(), "compute spans must exist");
    assert_eq!(
        d2h.len(),
        2 * cfg.layers,
        "one gradient offload span per layer per step"
    );
    for s in &d2h {
        assert!(
            !compute_threads.contains(&s.thread),
            "d2h span '{}' ran on a compute thread",
            s.name
        );
    }
}
