//! Mixed-precision offload suite: half-precision device residency and
//! transfers with FP32 CPU masters (the ZeRO-Offload-style split grafted
//! onto STRONGHOLD's working window).
//!
//! The contract under test, per mode:
//!
//! - `F32` — bit-identical to the resident reference (the existing
//!   equivalence matrix, re-asserted here under an explicit capacity
//!   budget).
//! - `Bf16`/`F16` — H2D and D2H traffic **exactly** halved (zero
//!   tolerance), the same device-capacity budget admits a window twice as
//!   deep, parameters stay within the divergence bound stated in
//!   DESIGN.md, and the trajectory is deterministic: windowed ≡
//!   multistream bitwise, worker counts don't matter, checkpoints
//!   round-trip bit-exact FP32 masters across precision modes.

use bytes::Bytes;
use stronghold_core::adam::AdamParams;
use stronghold_core::analytic::solve_window;
use stronghold_core::host::profiler::measure_host_profile_with_precision;
use stronghold_core::host::{
    DataParallelConfig, DataParallelTrainer, EngineOptions, HostOffloadConfig, HostOffloadTrainer,
    HostResidentTrainer, MultiStreamTrainer,
};
use stronghold_core::telemetry::Telemetry;
use stronghold_integration_tests::batch_for;
use stronghold_model::config::{tiny, ModelConfig};
use stronghold_tensor::Precision;

const SEED: u64 = 21;

fn adam() -> AdamParams {
    AdamParams {
        lr: 2e-3,
        ..AdamParams::default()
    }
}

fn hocfg(precision: Precision, window: usize) -> HostOffloadConfig {
    HostOffloadConfig {
        window,
        optimizer_workers: 2,
        adam: adam(),
        precision,
        ..HostOffloadConfig::default()
    }
}

/// Runs `steps` training steps and returns the cumulative transfer
/// counters `(h2d_bytes, d2h_bytes)`.
fn transfer_bytes(precision: Precision, window: usize, offload_workers: usize) -> (u64, u64) {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 55);
    let mut t = HostOffloadTrainer::new(
        cfg,
        SEED,
        HostOffloadConfig {
            offload_workers,
            ..hocfg(precision, window)
        },
    );
    for _ in 0..3 {
        t.train_step(&batch);
    }
    t.flush();
    (t.device().h2d_bytes(), t.device().d2h_bytes())
}

/// The headline claim, zero tolerance: at the same window, bf16 and f16
/// move **exactly** half the bytes FP32 moves, in both directions, for
/// both the inline and the threaded offload engine.
#[test]
fn half_modes_move_exactly_half_the_bytes() {
    for window in [1usize, 2] {
        for offload_workers in [0usize, 1] {
            let (h32, d32) = transfer_bytes(Precision::F32, window, offload_workers);
            assert!(h32 > 0 && d32 > 0, "FP32 baseline moved no bytes");
            for precision in [Precision::Bf16, Precision::F16] {
                let (hh, dh) = transfer_bytes(precision, window, offload_workers);
                assert_eq!(
                    2 * hh,
                    h32,
                    "{} h2d not exactly half of FP32 (window={window}, \
                     offload_workers={offload_workers})",
                    precision.name()
                );
                assert_eq!(
                    2 * dh,
                    d32,
                    "{} d2h not exactly half of FP32 (window={window}, \
                     offload_workers={offload_workers})",
                    precision.name()
                );
            }
        }
    }
}

/// A fixed device-capacity budget admits twice the window under a half
/// mode: `tune_limits().window.max` doubles (+1 slot accounting), and the
/// arena footprint of any given window halves.
#[test]
fn fixed_capacity_budget_doubles_half_mode_window() {
    let cfg = tiny(8);
    let block_bytes_f32 = cfg.block_params() as u64 * 4;
    // Budget with room for 4 FP32 slots: window_max = 4 - 1 = 3 at FP32,
    // 8/block halves → ⌊8⌋ - 1 = 7 at bf16.
    let budget = 4 * block_bytes_f32;
    let build = |precision| {
        HostOffloadTrainer::new(
            cfg,
            SEED,
            HostOffloadConfig {
                device_capacity: Some(budget),
                ..hocfg(precision, 2)
            },
        )
    };
    let f32_t = build(Precision::F32);
    let bf16_t = build(Precision::Bf16);
    let f32_max = f32_t.tune_limits().expect("limits").window.1;
    let bf16_max = bf16_t.tune_limits().expect("limits").window.1;
    assert_eq!(f32_max, 3, "FP32 window bound under the budget");
    assert_eq!(bf16_max, 7, "bf16 window bound under the same budget");
    assert_eq!(
        bf16_t.arena_usage(4),
        f32_t.arena_usage(4) / 2,
        "half-width slots halve the arena footprint of a window"
    );
    // The capacity itself is pinned to the budget, not resized to the
    // configured window.
    assert_eq!(f32_t.device().capacity(), budget);
    assert_eq!(bf16_t.device().capacity(), budget);
}

/// The analytic solver sees the same doubling: a profile measured at half
/// precision reports half-width `s_fp`, so `m_mem_max` under a fixed
/// capacity comes out (roughly) twice the FP32 bound.
#[test]
fn solver_m_mem_max_doubles_at_half_precision() {
    let cfg = tiny(8);
    let batch = batch_for(&cfg, 56);
    let capacity = 4 * cfg.block_params() as u64 * 4;
    let m_mem_max = |precision| {
        let p = measure_host_profile_with_precision(&cfg, SEED, &batch, 1, precision);
        let bytes = cfg.block_params() as u64 * precision.param_bytes();
        solve_window(&p, |m| (m as u64 + 1) * bytes, capacity)
            .expect("solvable")
            .m_mem_max
    };
    let f32_max = m_mem_max(Precision::F32);
    let bf16_max = m_mem_max(Precision::Bf16);
    assert!(
        bf16_max >= 2 * f32_max,
        "bf16 m_mem_max {bf16_max} should at least double FP32's {f32_max}"
    );
}

/// FP32 mode with an explicit capacity budget is still bit-identical to
/// the resident reference — the budget only bounds the window, it never
/// enters the numerics.
#[test]
fn f32_with_capacity_budget_stays_bit_identical_to_resident() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 57);
    let mut resident = HostResidentTrainer::new(cfg, SEED, adam());
    let mut offloaded = HostOffloadTrainer::new(
        cfg,
        SEED,
        HostOffloadConfig {
            device_capacity: Some(8 * cfg.block_params() as u64 * 4),
            ..hocfg(Precision::F32, 2)
        },
    );
    for step in 0..4 {
        let lr = resident.train_step(&batch);
        let lo = offloaded.train_step(&batch);
        assert_eq!(lr.to_bits(), lo.to_bits(), "loss diverged at step {step}");
    }
    offloaded.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            offloaded.block_params(i),
            resident.block_params(i),
            "block {i} diverged"
        );
    }
}

/// Half-mode divergence bound (stated in DESIGN.md): after `S` steps with
/// learning rate `lr` and no clipping, every parameter satisfies
/// `|θ_half − θ_f32| ≤ 2·S·lr` — each trajectory's per-step Adam update
/// is magnitude-bounded near `lr`, so the trajectories can separate by at
/// most both update budgets. The divergence must also be *nonzero*
/// (rounding actually happened) and finite.
#[test]
fn half_mode_divergence_is_bounded_and_nonzero() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 58);
    let steps = 5usize;
    let lr = adam().lr;
    let run = |precision| {
        let mut t = HostOffloadTrainer::new(cfg, SEED, hocfg(precision, 2));
        for _ in 0..steps {
            t.train_step(&batch);
        }
        t.flush();
        (0..cfg.layers)
            .map(|i| t.block_params(i))
            .collect::<Vec<_>>()
    };
    let reference = run(Precision::F32);
    for precision in [Precision::Bf16, Precision::F16] {
        let half = run(precision);
        let bound = 2.0 * steps as f32 * lr;
        let mut max_abs = 0f32;
        for (i, (a, b)) in half.iter().zip(&reference).enumerate() {
            for (x, y) in a.iter().zip(b) {
                let d = (x - y).abs();
                assert!(d.is_finite(), "{} block {i} non-finite", precision.name());
                assert!(
                    d <= bound,
                    "{} block {i}: |Δθ| = {d} exceeds 2·S·lr = {bound}",
                    precision.name()
                );
                max_abs = max_abs.max(d);
            }
        }
        assert!(
            max_abs > 0.0,
            "{} trajectory identical to FP32 — rounding never happened",
            precision.name()
        );
    }
}

/// Determinism inside a half mode: the windowed trainer and the
/// multi-stream trainer agree bitwise (both round through the same packed
/// format at the same points), and worker counts / dispatch modes don't
/// perturb the trajectory.
#[test]
fn bf16_windowed_matches_multistream_bitwise() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 59);
    let opts = EngineOptions {
        adam: adam(),
        precision: Precision::Bf16,
        ..EngineOptions::default()
    };
    let mut windowed = HostOffloadTrainer::new(cfg, SEED, hocfg(Precision::Bf16, 2));
    let mut multistream =
        MultiStreamTrainer::with_options(cfg, SEED, 1, 2, opts, Telemetry::disabled());
    assert_eq!(multistream.precision(), Precision::Bf16);
    for step in 0..4 {
        let lw = windowed.train_step(&batch);
        let lm = multistream.train_step(&batch);
        assert_eq!(
            lw.to_bits(),
            lm.to_bits(),
            "windowed vs multistream loss at step {step}"
        );
    }
    windowed.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            windowed.block_params(i),
            multistream.block_params(i),
            "block {i} diverged"
        );
    }
}

/// Worker counts, dispatch mode, and window size are invisible to the
/// half-mode trajectory, exactly as they are to FP32.
#[test]
fn bf16_trajectory_invariant_to_pipeline_shape() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 60);
    let run = |window: usize, offload_workers: usize, streaming: bool| {
        let mut t = HostOffloadTrainer::new(
            cfg,
            SEED,
            HostOffloadConfig {
                offload_workers,
                streaming_dispatch: streaming,
                ..hocfg(Precision::Bf16, window)
            },
        );
        let losses: Vec<u32> = (0..3).map(|_| t.train_step(&batch).to_bits()).collect();
        t.flush();
        let params: Vec<Vec<f32>> = (0..cfg.layers).map(|i| t.block_params(i)).collect();
        (losses, params)
    };
    let reference = run(2, 0, false);
    for window in [1usize, 2, 4] {
        for offload_workers in [0usize, 1, 2] {
            for streaming in [false, true] {
                assert_eq!(
                    reference,
                    run(window, offload_workers, streaming),
                    "window={window} offload_workers={offload_workers} streaming={streaming}"
                );
            }
        }
    }
}

/// f16 smoke: trains to finite losses and halves traffic (the byte claim
/// is asserted exactly in `half_modes_move_exactly_half_the_bytes`).
#[test]
fn f16_trains_finite() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 61);
    let mut t = HostOffloadTrainer::new(cfg, SEED, hocfg(Precision::F16, 2));
    let mut prev = f32::INFINITY;
    for _ in 0..5 {
        let loss = t.train_step(&batch);
        assert!(loss.is_finite());
        prev = loss;
    }
    assert!(prev.is_finite());
}

/// Checkpoints always serialize the FP32 masters: a state saved under
/// bf16 resumes under FP32 with bit-exact parameters (and vice versa),
/// and resuming under bf16 continues the bf16 trajectory bit-identically.
#[test]
fn cross_precision_checkpoint_round_trip() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 62);

    // Uninterrupted bf16 run: 4 steps.
    let mut full = HostOffloadTrainer::new(cfg, SEED, hocfg(Precision::Bf16, 2));
    let full_losses: Vec<u32> = (0..4).map(|_| full.train_step(&batch).to_bits()).collect();
    full.flush();

    // Interrupted run: 2 steps, save, resume twice.
    let mut half = HostOffloadTrainer::new(cfg, SEED, hocfg(Precision::Bf16, 2));
    for (s, expect) in full_losses.iter().take(2).enumerate() {
        assert_eq!(half.train_step(&batch).to_bits(), *expect, "step {s}");
    }
    half.flush();
    let blob = half.save_training_state();

    // Resume under FP32: the masters come back bit-exact.
    let resumed_f32 =
        HostOffloadTrainer::load_training_state(blob.clone(), cfg, hocfg(Precision::F32, 2))
            .expect("bf16 checkpoint loads under f32 (masters present)");
    for i in 0..cfg.layers {
        assert_eq!(
            resumed_f32.block_params(i),
            half.block_params(i),
            "masters not bit-exact across precision at block {i}"
        );
    }

    // Resume under bf16: the continuation retraces the uninterrupted run.
    let mut resumed = HostOffloadTrainer::load_training_state(blob, cfg, hocfg(Precision::Bf16, 2))
        .expect("bf16 checkpoint loads under bf16");
    for (s, expect) in full_losses.iter().enumerate().skip(2) {
        assert_eq!(
            resumed.train_step(&batch).to_bits(),
            *expect,
            "resumed step {s} diverged from the uninterrupted run"
        );
    }
    resumed.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            resumed.block_params(i),
            full.block_params(i),
            "resumed block {i} diverged"
        );
    }
}

/// Precision-conflict policy: a checkpoint is rejected only when its
/// recorded precision conflicts with the trainer's *and* the
/// FP32-masters flag is absent — masters-present blobs (everything this
/// runtime saves) cross-load freely.
#[test]
fn precision_conflict_rejected_only_without_masters() {
    let cfg = tiny(4);
    let batch = batch_for(&cfg, 63);
    let mut t = HostOffloadTrainer::new(cfg, SEED, hocfg(Precision::Bf16, 2));
    t.train_step(&batch);
    t.flush();
    let blob = t.save_training_state();
    // SHTS v2 layout: magic u32 | version u8 | precision u8 | flags u8 | …
    assert_eq!(blob[4], 2, "state version");
    assert_eq!(blob[5], Precision::Bf16.tag(), "recorded precision");
    assert_eq!(blob[6], 1, "FP32-masters flag set on every save");

    // Masters present → cross-precision load succeeds (also covered by
    // the round-trip test; asserted here for the policy's sake).
    assert!(
        HostOffloadTrainer::load_training_state(blob.clone(), cfg, hocfg(Precision::F32, 2))
            .is_ok()
    );

    // Strip the masters flag: now the bf16-tagged blob must be refused by
    // an FP32 trainer…
    let mut raw = blob.to_vec();
    raw[6] = 0;
    let stripped = Bytes::from(raw.clone());
    let msg = match HostOffloadTrainer::load_training_state(
        stripped.clone(),
        cfg,
        hocfg(Precision::F32, 2),
    ) {
        Ok(_) => panic!("masters-absent precision conflict must be rejected"),
        Err(err) => format!("{err}"),
    };
    assert!(
        msg.contains("precision mismatch"),
        "unexpected error: {msg}"
    );
    // …but still accepted by a matching bf16 trainer.
    assert!(
        HostOffloadTrainer::load_training_state(stripped, cfg, hocfg(Precision::Bf16, 2)).is_ok()
    );

    // Unknown flag bits and unknown precision tags are hard errors.
    let mut bad_flags = blob.to_vec();
    bad_flags[6] = 0x80;
    assert!(
        HostOffloadTrainer::load_training_state(
            Bytes::from(bad_flags),
            cfg,
            hocfg(Precision::Bf16, 2)
        )
        .is_err(),
        "unknown flag bits must be rejected"
    );
    let mut bad_tag = blob.to_vec();
    bad_tag[5] = 9;
    assert!(
        HostOffloadTrainer::load_training_state(
            Bytes::from(bad_tag),
            cfg,
            hocfg(Precision::Bf16, 2)
        )
        .is_err(),
        "unknown precision tag must be rejected"
    );
}

fn dp_config(replicas: usize, precision: Precision, bucket_bytes: usize) -> DataParallelConfig {
    DataParallelConfig {
        replicas,
        window: 2,
        bucket_bytes,
        optimizer_workers: 2,
        offload_workers: 1,
        compute_workers: 1,
        adam: adam(),
        streaming_dispatch: true,
        precision,
        ..DataParallelConfig::default()
    }
}

/// Data parallelism under bf16: each replica rounds its gradient shard
/// through the packed half format at D2H, then the all-reduce combines
/// the rounded shards in FP32 — so the trajectory is deterministic
/// (repeat runs bitwise equal), replicas stay in lockstep, and bucket
/// boundaries are invisible (rounding happens per layer, before
/// bucketing).
#[test]
fn dp_bf16_is_deterministic_and_bucket_invariant() {
    let cfg: ModelConfig = tiny(4).with_batch(8);
    let batch = batch_for(&cfg, 64);
    let layer_bytes = cfg.block_params() as usize * 4;
    let run = |bucket_bytes: usize| {
        let mut t =
            DataParallelTrainer::new(cfg, SEED, dp_config(2, Precision::Bf16, bucket_bytes));
        let losses: Vec<u32> = (0..3).map(|_| t.train_step(&batch).to_bits()).collect();
        t.flush();
        for i in 0..cfg.layers {
            assert_eq!(
                t.replica_block_params(1, i),
                t.replica_block_params(0, i),
                "replicas out of lockstep at block {i}"
            );
        }
        let params: Vec<Vec<f32>> = (0..cfg.layers).map(|i| t.block_params(i)).collect();
        (losses, params)
    };
    let reference = run(layer_bytes);
    assert_eq!(reference, run(layer_bytes), "repeat run diverged");
    assert_eq!(
        reference,
        run(usize::MAX),
        "bucket boundaries leaked into the numerics"
    );
}
