//! Integration-test crate. The tests live in `tests/tests/`; this library
//! only exposes small helpers shared between them.

use stronghold_model::config::ModelConfig;
use stronghold_model::data::SyntheticCorpus;

/// A deterministic batch for a configuration.
pub fn batch_for(cfg: &ModelConfig, seed: u64) -> Vec<(Vec<u32>, Vec<u32>)> {
    SyntheticCorpus::new(cfg.vocab, seed).next_batch(cfg.batch, cfg.seq - 1)
}
