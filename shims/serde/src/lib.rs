//! Offline shim for `serde`.
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize` as a
//! forward-compatibility marker — no code path calls a serialize method
//! (checkpoints use a hand-rolled binary format; JSON goes through the
//! concrete `serde_json` shim). So the traits here are empty markers and
//! the derive (see `serde_derive`) emits empty impls.

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing (blanket-implemented).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
