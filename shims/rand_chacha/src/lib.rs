//! Offline shim for `rand_chacha`: [`ChaCha8Rng`].
//!
//! Implements the genuine ChaCha8 stream cipher (8 rounds of the ChaCha
//! quarter-round schedule over the standard 16-word state), keyed from a
//! 64-bit seed through SplitMix64 expansion. Streams are therefore
//! high-quality and fully deterministic, though not byte-identical to the
//! upstream crate (which expands seeds differently); everything in this
//! workspace relies only on self-consistency of seeded streams.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// SplitMix64, used only for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 64-bit counter, 2 nonce words.
    input: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next word index into `block`; 16 means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.input;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, inp)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.input.iter()))
        {
            *out = w.wrapping_add(*inp);
        }
        // 64-bit block counter in words 12..14.
        let counter = ((self.input[13] as u64) << 32 | self.input[12] as u64).wrapping_add(1);
        self.input[12] = counter as u32;
        self.input[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let w = splitmix64(&mut sm);
            input[4 + 2 * i] = w as u32;
            input[4 + 2 * i + 1] = (w >> 32) as u32;
        }
        // counter = 0 (words 12, 13), nonce = 0 (words 14, 15).
        ChaCha8Rng {
            input,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u32> = (0..100).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..100).map(|_| b.next_u32()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniformity_sanity() {
        // Mean of [0,1) uniforms must be near 0.5, variance near 1/12.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 32.0);
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }
}
