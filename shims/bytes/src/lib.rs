//! Offline shim for `bytes`.
//!
//! [`Bytes`] is a cheaply-cloneable view (`Arc<Vec<u8>>` + range) with
//! consuming cursor reads; [`BytesMut`] is a growable builder that
//! freezes into [`Bytes`]. Only the accessors used by the checkpoint
//! serializers are provided: big-endian `u16`/`u32` (header fields) and
//! little-endian `u64`/`f32` (payload), plus `split_to` / `slice`.

use std::sync::Arc;

/// Consuming read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left to read.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads exactly `N` bytes, advancing the cursor. Panics if short.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads a single byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }
}

/// Append access to a byte builder.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// A sub-view over `range` (relative to this view).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the view out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(
            self.len() >= N,
            "buffer underrun: need {N}, have {}",
            self.len()
        );
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

/// A growable byte builder.
#[derive(Default, Debug, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates a builder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends raw bytes (inherent form, like upstream `BytesMut`).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_endianness() {
        let mut b = BytesMut::new();
        b.put_u32(0xDEAD_BEEF);
        b.put_u16(0x0102);
        b.put_u64_le(42);
        b.put_f32_le(1.5);
        let mut bytes = b.freeze();
        assert_eq!(bytes.remaining(), 4 + 2 + 8 + 4);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u16(), 0x0102);
        assert_eq!(bytes.get_u64_le(), 42);
        assert_eq!(bytes.get_f32_le(), 1.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn split_to_and_slice() {
        let mut bytes = Bytes::from((0u8..10).collect::<Vec<_>>());
        let head = bytes.split_to(4);
        assert_eq!(head.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(bytes.as_slice(), &[4, 5, 6, 7, 8, 9]);
        let mid = bytes.slice(1..3);
        assert_eq!(mid.as_slice(), &[5, 6]);
        assert_eq!(bytes.len(), 6); // slice() does not consume
    }

    #[test]
    #[should_panic(expected = "buffer underrun")]
    fn underrun_panics() {
        let mut bytes = Bytes::from(vec![1, 2]);
        let _ = bytes.get_u32();
    }
}
