//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` / `Condvar` behind `parking_lot`'s
//! poison-free API: `lock()` returns the guard directly and a poisoned
//! std mutex (a thread panicked while holding it) is transparently
//! recovered, matching `parking_lot`'s behaviour of not poisoning.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn rwlock_concurrent_reads_then_write() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poison_is_recovered() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        assert_eq!(*m.lock(), 5);
    }
}
