//! Offline shim for the `rand` crate.
//!
//! Provides the trait surface the workspace uses — [`RngCore`], [`Rng`]
//! (with `gen`, `gen_range`, `gen_bool`) and [`SeedableRng`] — backed by
//! whatever core generator implements [`RngCore`] (see the `rand_chacha`
//! shim). Uniform float sampling uses the standard 24/53-bit mantissa
//! construction so values land in `[0, 1)`.

/// The low-level generator interface.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sint_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u = <$t as StandardSample>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Uniform sample over the standard domain of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            // A weak generator is fine for interface tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 32) as u32
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Counter(9);
        for _ in 0..1000 {
            let a = r.gen_range(3u64..17);
            assert!((3..17).contains(&a));
            let b = r.gen_range(-2.5f32..=2.5);
            assert!((-2.5..=2.5).contains(&b));
            let c = r.gen_range(5usize..6);
            assert_eq!(c, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
