//! Offline shim for `proptest`.
//!
//! Implements the subset the workspace relies on: the [`proptest!`]
//! macro (optionally headed by `#![proptest_config(..)]`), range / tuple
//! / `collection::vec` / `num::f32::NORMAL` strategies, and the
//! `prop_assert!` family. No shrinking: each test runs `cases` random
//! inputs drawn from a ChaCha8 stream seeded deterministically from the
//! test's module path, so failures reproduce exactly across runs.

/// Strategy trait and primitive strategy impls.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy: lengths drawn from `len`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Numeric strategies.
pub mod num {
    /// `f32` strategies.
    pub mod f32 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::RngCore;

        /// Yields normal (non-zero, non-subnormal, finite) `f32`s of both
        /// signs, spread across the whole exponent range.
        #[derive(Clone, Copy, Debug)]
        pub struct Normal;

        /// The normal-floats strategy constant, as `proptest::num::f32::NORMAL`.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f32;
            fn sample(&self, rng: &mut TestRng) -> f32 {
                loop {
                    let x = f32::from_bits(rng.next_u32());
                    if x.is_normal() {
                        return x;
                    }
                }
            }
        }

        /// Yields every `f32` bit pattern with equal probability: normals,
        /// subnormals, both zeros, infinities, and NaN payloads.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// The any-bits strategy constant, as `proptest::num::f32::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f32;
            fn sample(&self, rng: &mut TestRng) -> f32 {
                f32::from_bits(rng.next_u32())
            }
        }
    }

    /// `u16` strategies.
    pub mod u16 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::RngCore;

        /// Yields every `u16` with equal probability.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// The any-value strategy constant, as `proptest::num::u16::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u16;
            fn sample(&self, rng: &mut TestRng) -> u16 {
                (rng.next_u32() >> 16) as u16
            }
        }
    }
}

/// Runner plumbing: config, RNG, and per-case error type.
pub mod test_runner {
    /// Per-proptest-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Smaller than upstream's 256: these suites run in CI on every
            // change and the generators here don't shrink.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; resample without counting.
        Reject,
        /// `prop_assert!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Deterministic RNG handed to strategies.
    pub struct TestRng(rand_chacha::ChaCha8Rng);

    impl TestRng {
        /// Seeds from a test's name so every run draws the same cases.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable 64-bit seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            use rand::SeedableRng;
            TestRng(rand_chacha::ChaCha8Rng::seed_from_u64(h))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
    }
}

/// Everything a `use proptest::prelude::*;` site expects.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests. Accepts an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = <$crate::test_runner::ProptestConfig as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

/// Internal expansion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest shim: {} rejected too many cases ({} attempts for {} cases)",
                    stringify!($name), attempts, config.cases,
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat = $crate::strategy::Strategy::sample(&$strat, &mut rng);
                        )+
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} of {} failed: {}", passed + 1, config.cases, msg);
                    }
                }
            }
        }
    )*};
}

/// Asserts inside a proptest body; failure fails only the current case
/// (which, with no shrinking, fails the test with the sampled inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Discards the current case (resampled without counting) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(a in 1u64..10, b in -3i32..3, x in 0.5f32..2.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((-3..3).contains(&b));
            prop_assert!((0.5..2.0).contains(&x), "x out of range: {x}");
        }

        /// Vec strategy honours the length range and element bounds.
        #[test]
        fn vec_strategy_bounds(v in crate::collection::vec((0u64..100, 1u64..50), 1..40)) {
            prop_assert!((1..40).contains(&v.len()));
            for (a, b) in &v {
                prop_assert!(*a < 100 && *b >= 1 && *b < 50);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn normal_floats_are_normal(x in crate::num::f32::NORMAL) {
            prop_assert!(x.is_normal());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::from_name("fixed");
        let mut r2 = crate::test_runner::TestRng::from_name("fixed");
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..32).map(|_| s.sample(&mut r1)).collect();
        let b: Vec<u64> = (0..32).map(|_| s.sample(&mut r2)).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        // No #[test] on the generated fn: it is invoked by hand below.
        proptest! {
            fn always_fails(n in 0u64..10)  {
                prop_assert!(n > 100, "n was {n}");
            }
        }
        always_fails();
    }
}
