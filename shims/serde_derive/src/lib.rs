//! Offline shim for `serde_derive`.
//!
//! The shim `serde` traits are empty markers, so the derives only need to
//! name the type: we scan the item's tokens for the ident following
//! `struct` / `enum` and emit an empty impl. Every derived type in this
//! workspace is generic-free, so no bound handling is required.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a struct/enum item token stream.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        // Attribute bodies and braces are groups; only idents matter.
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    panic!("serde_derive shim: could not find a struct/enum name");
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}
