//! Offline shim for `rayon`.
//!
//! Exposes the `par_iter` / `par_iter_mut` / `par_chunks` /
//! `par_chunks_mut` entry points used by the tensor kernels, but returns
//! the corresponding **std sequential iterators**. Every adapter the
//! workspace chains on them (`zip`, `enumerate`, `map`, `for_each`,
//! `collect`, `sum`) is then the plain `Iterator` machinery, so kernels
//! compile unchanged and — as a bonus — reductions become bit-exact
//! deterministic regardless of thread count.

/// Sequential stand-ins for `rayon::prelude` traits.
pub mod prelude {
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// `par_chunks` on slices.
pub trait ParallelSlice<T> {
    /// Chunked iteration; sequential in this shim.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T> {
    /// Mutable chunked iteration; sequential in this shim.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// `par_iter` on slices.
pub trait IntoParallelRefIterator<T> {
    /// Element iteration; sequential in this shim.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// `par_iter_mut` on slices.
pub trait IntoParallelRefMutIterator<T> {
    /// Mutable element iteration; sequential in this shim.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
}

impl<T> IntoParallelRefMutIterator<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_compose_like_rayon() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        let doubled: Vec<f32> = xs.par_iter().map(|x| x * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0, 8.0]);

        let mut ys = vec![0.0f32; 4];
        ys.par_iter_mut()
            .zip(xs.par_iter())
            .for_each(|(y, x)| *y = x + 1.0);
        assert_eq!(ys, vec![2.0, 3.0, 4.0, 5.0]);

        let mut rows = vec![0usize; 6];
        rows.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, row)| row.iter_mut().for_each(|v| *v = i));
        assert_eq!(rows, vec![0, 0, 1, 1, 2, 2]);

        let chunk_sums: Vec<usize> = rows.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(chunk_sums, vec![0, 2, 4]);
    }
}
