//! Offline shim for `rayon`.
//!
//! Two tiers of fidelity:
//!
//! * The slice adapters (`par_iter` / `par_iter_mut` / `par_chunks` /
//!   `par_chunks_mut`) return the corresponding **std sequential
//!   iterators**. Every adapter the workspace chains on them (`zip`,
//!   `enumerate`, `map`, `for_each`, `collect`, `sum`) is then the plain
//!   `Iterator` machinery, so kernels compile unchanged and — as a bonus
//!   — reductions become bit-exact deterministic regardless of thread
//!   count.
//! * Index-space parallelism (`(0..n).into_par_iter().for_each(..)`) is
//!   **real**: it fans the range out over `current_num_threads()` scoped
//!   OS threads pulling indices from a shared atomic cursor. This is the
//!   dispatch the blocked GEMM engine uses for its 2D tile grid, where
//!   each index owns a disjoint output tile and the summation order is a
//!   function of shape alone, so any schedule is bit-identical.
//!
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] mirror rayon's pool
//! API closely enough for thread-count-sensitivity tests: `install` runs
//! the closure on the calling thread with a thread-local override that
//! `current_num_threads` (and thus `for_each` fan-out) observes.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Sequential stand-ins for `rayon::prelude` traits, plus the real
/// range-parallel entry point.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

thread_local! {
    /// Pool-size override installed by [`ThreadPool::install`].
    static POOL_SIZE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel dispatch will use on this thread:
/// the innermost [`ThreadPool::install`] override, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    POOL_SIZE.with(|p| p.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Error type mirroring rayon's builder error (this shim cannot fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder (defaults to available parallelism).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 means "default", as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            }),
        })
    }
}

/// A sized pool handle. Workers are materialized lazily: parallel
/// dispatch under [`ThreadPool::install`] spawns scoped threads sized to
/// this pool rather than keeping persistent workers parked.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing all parallel
    /// dispatch performed inside (on this thread).
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        POOL_SIZE.with(|p| {
            let old = p.replace(Some(self.num_threads));
            // Restore on unwind too, so a panicking closure does not leak
            // the override into later work on this thread.
            struct Reset<'a>(&'a Cell<Option<usize>>, Option<usize>);
            impl Drop for Reset<'_> {
                fn drop(&mut self) {
                    self.0.set(self.1);
                }
            }
            let _reset = Reset(p, old);
            f()
        })
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// `into_par_iter` over index ranges (the only item type the workspace
/// fans out over).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over `Range<usize>`: real scoped-thread fan-out.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Applies `f` to every index. With more than one worker, indices are
    /// claimed dynamically from an atomic cursor by scoped threads; the
    /// caller returns only after every index completes. `f` must tolerate
    /// any assignment of indices to threads (in the workspace each index
    /// owns disjoint output, so results do not depend on the schedule).
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let len = self.range.len();
        let workers = current_num_threads().min(len);
        if workers <= 1 {
            for i in self.range {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(self.range.start);
        let end = self.range.end;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= end {
                        break;
                    }
                    f(i);
                });
            }
        });
    }
}

/// `par_chunks` on slices.
pub trait ParallelSlice<T> {
    /// Chunked iteration; sequential in this shim.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T> {
    /// Mutable chunked iteration; sequential in this shim.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// `par_iter` on slices.
pub trait IntoParallelRefIterator<T> {
    /// Element iteration; sequential in this shim.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// `par_iter_mut` on slices.
pub trait IntoParallelRefMutIterator<T> {
    /// Mutable element iteration; sequential in this shim.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
}

impl<T> IntoParallelRefMutIterator<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_compose_like_rayon() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        let doubled: Vec<f32> = xs.par_iter().map(|x| x * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0, 8.0]);

        let mut ys = vec![0.0f32; 4];
        ys.par_iter_mut()
            .zip(xs.par_iter())
            .for_each(|(y, x)| *y = x + 1.0);
        assert_eq!(ys, vec![2.0, 3.0, 4.0, 5.0]);

        let mut rows = vec![0usize; 6];
        rows.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, row)| row.iter_mut().for_each(|v| *v = i));
        assert_eq!(rows, vec![0, 0, 1, 1, 2, 2]);

        let chunk_sums: Vec<usize> = rows.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(chunk_sums, vec![0, 2, 4]);
    }

    #[test]
    fn par_range_visits_every_index_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        for threads in [1usize, 2, 8] {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
            pool.install(|| {
                assert_eq!(crate::current_num_threads(), threads);
                (0..100usize).into_par_iter().for_each(|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), 1);
            }
        }
    }

    #[test]
    fn install_restores_thread_count_on_exit() {
        let outside = crate::current_num_threads();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        pool.install(|| assert_eq!(crate::current_num_threads(), 3));
        assert_eq!(crate::current_num_threads(), outside);
        assert_eq!(pool.current_num_threads(), 3);
    }
}
