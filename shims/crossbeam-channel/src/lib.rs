//! Offline shim for `crossbeam-channel`.
//!
//! Multi-producer multi-consumer FIFO channels (both [`bounded`] and
//! [`unbounded`]) built on a `Mutex<VecDeque>` plus two condition
//! variables. Semantics match what the workspace relies on:
//!
//! * `Sender`/`Receiver` are `Clone`; any receiver can take any message.
//! * `send` on a full bounded channel blocks until space frees up, and
//!   fails only once every receiver is gone.
//! * `recv` blocks until a message arrives and fails only when the
//!   channel is empty *and* every sender is gone.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when all receivers are dropped;
/// carries the unsent message.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Capacity bound; `None` for unbounded.
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half of a channel.
pub struct Sender<T>(Arc<Shared<T>>);

/// Receiving half of a channel.
pub struct Receiver<T>(Arc<Shared<T>>);

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

/// Creates a channel holding at most `cap` in-flight messages.
///
/// `cap == 0` is treated as capacity 1 (a rendezvous channel is not
/// needed anywhere in this workspace).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.0.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            let full = self.0.cap.is_some_and(|c| st.queue.len() >= c);
            if !full {
                st.queue.push_back(value);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            st = self.0.not_full.wait(st).unwrap();
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().unwrap().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = match self.0.state.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        st.senders -= 1;
        if st.senders == 0 {
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or every sender is
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.0.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.0.not_empty.wait(st).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.0.state.lock().unwrap();
        if let Some(v) = st.queue.pop_front() {
            self.0.not_full.notify_one();
            Ok(v)
        } else if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.0.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().unwrap().receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = match self.0.state.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        st.receivers -= 1;
        if st.receivers == 0 {
            // Wake senders blocked on a full queue so they observe the
            // disconnect.
            self.0.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv frees a slot
            "sent"
        });
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(t.join().unwrap(), "sent");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_fails_after_senders_gone() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = bounded(4);
        let n_workers = 4;
        let n_msgs = 100;
        let workers: Vec<_> = (0..n_workers)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..n_msgs {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<i32> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n_msgs).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_empty_vs_value() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
    }
}
