//! Offline shim for `criterion`.
//!
//! A deliberately small wall-clock harness exposing the API the bench
//! targets use: `benchmark_group` / `sample_size` / `throughput` /
//! `bench_function` / `finish`, plus [`criterion_group!`] and
//! [`criterion_main!`]. Each benchmark runs one warm-up call and then
//! `sample_size` timed iterations, reporting mean time per iteration
//! (and derived throughput when configured). No statistics beyond the
//! mean — this exists so `cargo bench` works offline, not to replace
//! criterion's analysis.

use std::time::Instant;

pub use std::hint::black_box;

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    mean_secs: f64,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `samples` measured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_secs = start.elapsed().as_secs_f64() / self.samples as f64;
    }
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        mean_secs: 0.0,
    };
    f(&mut b);
    let mut line = format!("bench {label:<40} {:>12}/iter", format_secs(b.mean_secs));
    if let Some(tp) = throughput {
        if b.mean_secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.3} Melem/s", n as f64 / b.mean_secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  {:.3} MiB/s",
                        n as f64 / b.mean_secs / (1 << 20) as f64
                    ));
                }
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), self.default_samples, None, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.samples, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // 1 warm-up + 3 timed iterations.
        assert_eq!(runs, 4);
    }

    criterion_group!(example_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_runs() {
        example_group();
    }
}
