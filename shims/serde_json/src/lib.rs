//! Offline shim for `serde_json`.
//!
//! A self-contained JSON value tree: [`Value`] / [`Map`] / [`Number`],
//! a compact and a pretty writer, a full recursive-descent parser, and a
//! [`json!`] macro covering the flat-object form used in this workspace
//! (nest by passing another `json!` invocation as the value expression).
//! [`Map`] preserves insertion order so rendered reports are stable.

use std::fmt;
use std::ops::Index;

/// Serialization/parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Shorthand used by the public API.
pub type Result<T> = std::result::Result<T, Error>;

/// A JSON number: integer-preserving where possible.
#[derive(Clone, Copy, Debug)]
pub struct Number(Repr);

#[derive(Clone, Copy, Debug)]
enum Repr {
    Int(i64),
    UInt(u64),
    Float(f64),
}

impl Number {
    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match self.0 {
            Repr::Int(v) => v as f64,
            Repr::UInt(v) => v as f64,
            Repr::Float(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            Repr::Int(v) if v >= 0 => Some(v as u64),
            Repr::UInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `i64` if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            Repr::Int(v) => Some(v),
            Repr::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.as_f64() == other.as_f64()
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Repr::Int(v) => write!(f, "{v}"),
            Repr::UInt(v) => write!(f, "{v}"),
            Repr::Float(v) => {
                if v.is_finite() {
                    // Keep a distinguishing fractional form for floats.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; serialize as null like serde_json
                    // does for these through arbitrary-precision paths.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An insertion-ordered string → value map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing and returning any previous
    /// value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric content as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object content, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number(Repr::Float(v)))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number(Repr::Float(v as f64)))
    }
}

macro_rules! from_int {
    (signed: $($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number(Repr::Int(v as i64))) }
        }
    )*};
    (unsigned: $($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number(Repr::UInt(v as u64))) }
        }
    )*};
}
from_int!(signed: i8, i16, i32, i64, isize);
from_int!(unsigned: u8, u16, u32, u64, usize);

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

/// By-reference conversion used by [`json!`] so value expressions are
/// borrowed (matching upstream `json!` semantics), not moved.
pub trait ToJsonValue {
    /// Converts to a [`Value`], cloning as needed.
    fn to_json_value(&self) -> Value;
}

impl ToJsonValue for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl ToJsonValue for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJsonValue for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJsonValue for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! to_json_via_from {
    ($($t:ty),*) => {$(
        impl ToJsonValue for $t {
            fn to_json_value(&self) -> Value { Value::from(*self) }
        }
    )*};
}
to_json_via_from!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl<T: ToJsonValue> ToJsonValue for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJsonValue::to_json_value).collect())
    }
}

impl ToJsonValue for Map {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl<T: ToJsonValue + ?Sized> ToJsonValue for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

/// Builds a [`Value`]. Supports `null`, flat arrays, and objects with
/// literal keys; nest by using `json!` again in a value position. Value
/// expressions are borrowed, as with upstream `json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::ToJsonValue::to_json_value(&$v)),* ])
    };
    ({ $($k:literal : $v:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $( map.insert($k.to_string(), $crate::ToJsonValue::to_json_value(&$v)); )*
        $crate::Value::Object(map)
    }};
    ($v:expr) => { $crate::ToJsonValue::to_json_value(&$v) };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes compactly.
pub fn to_string(value: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Serializes with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null").map(|()| Value::Null),
            Some(b't') => self.eat_lit("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                0x10000
                                    + ((hi as u32 - 0xD800) << 10)
                                    + (lo as u32).wrapping_sub(0xDC00)
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error("bad unicode escape".into()))?,
                            );
                            continue; // pos already advanced past the escape
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (bytes are valid UTF-8: the
                    // input came in as &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number(Repr::UInt(u))));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number(Repr::Int(i))));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number(Repr::Float(f))))
            .map_err(|_| Error(format!("bad number '{text}'")))
    }
}

/// Parses a JSON document.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = json!({
            "id": "table1",
            "n": 42u64,
            "pi": 3.5,
            "ok": true,
            "tags": vec![Value::from("a"), Value::from("b")],
        });
        let s = to_string(&v).unwrap();
        let back = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["id"], "table1");
        assert_eq!(back["tags"][1], "b");
        assert_eq!(back["missing"], Value::Null);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "a": 1u64, "b": vec![Value::from(2u64)] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("he said \"hi\"\n\ttab\\done \u{1F600}".to_string());
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(from_str(r#""A""#).unwrap(), "A");
        assert_eq!(from_str(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn numbers_preserve_integerness() {
        let v = from_str("[1, -2, 3.5, 1e3]").unwrap();
        assert_eq!(v[0].as_u64(), Some(1));
        assert_eq!(v[1], Value::from(-2i64));
        assert_eq!(v[2].as_f64(), Some(3.5));
        assert_eq!(v[3].as_f64(), Some(1000.0));
    }

    #[test]
    fn map_replaces_and_keeps_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::from(1u64));
        m.insert("a".into(), Value::from(2u64));
        m.insert("z".into(), Value::from(3u64));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(m.get("z").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 tail").is_err());
    }
}
