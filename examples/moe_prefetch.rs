//! Preprocessing non-linear architectures (§III-B): how STRONGHOLD plans
//! prefetching for models whose execution path is data-dependent
//! (mixture-of-experts gating), versus a plain Transformer stack.
//!
//! Run with: `cargo run --release --example moe_prefetch`

use stronghold_core::graph::{PrefetchPolicy, TensorGraph};

fn describe(graph: &TensorGraph, window_free: u64, title: &str) {
    println!("\n== {title} (window headroom: {window_free} bytes)");
    println!("   sequential structure: {}", graph.is_sequential());
    for step in graph.offload_sequence(window_free) {
        let node = graph.node(step.node);
        let policy = match step.policy {
            PrefetchPolicy::Static => "static prefetch".to_string(),
            PrefetchPolicy::FetchAllCandidates => {
                format!("fetch ALL {} gate candidates", step.candidates.len())
            }
            PrefetchPolicy::DelayUntilKnown => "DELAY until the gate resolves".to_string(),
        };
        println!(
            "   {:<10} ({:>6} B) -> {policy}",
            node.label, node.state_bytes
        );
    }
}

fn main() {
    // A plain 4-block Transformer: static layer order, static prefetch.
    let stack = TensorGraph::sequential_stack(4, 4096);
    describe(&stack, 8192, "sequential Transformer stack");

    // A mixture-of-experts block: the router's fan-out is data-dependent.
    let moe = TensorGraph::moe_block(4, 4096);

    // Roomy window: all experts are prefetched speculatively — no stall
    // whichever expert the router picks.
    describe(&moe, 4 * 4096, "MoE block, roomy window");

    // Tight window: the runtime delays expert movement until the routing
    // decision is known, trading a stall for OOM safety.
    describe(&moe, 4096 * 2, "MoE block, tight window");

    println!("\nBoth policies come from §III-B of the paper: \"either offloads all");
    println!("units/layers directly connected to a branch to the GPU working window");
    println!("(if possible), or delays the layer movement until it knows which layer");
    println!("will be computed to avoid GPU out-of-memory errors.\"");
}
