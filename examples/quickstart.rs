//! Quickstart: train a small GPT with the STRONGHOLD functional runtime.
//!
//! Demonstrates the paper's deployment story end-to-end on real math:
//! a model whose layers live in (simulated pinned) host memory, a working
//! window of two layers on the "device", a prefetcher thread and a pool of
//! concurrent CPU Adam actors — and shows that the result is *bit-identical*
//! to conventional resident training (§III-A).
//!
//! Run with: `cargo run --release --example quickstart`

use stronghold_core::adam::AdamParams;
use stronghold_core::host::{HostOffloadConfig, HostOffloadTrainer, HostResidentTrainer};
use stronghold_model::config::tiny;
use stronghold_model::data::SyntheticCorpus;

fn main() {
    let cfg = tiny(6); // 6 transformer blocks, hidden 32 — laptop scale
    let adam = AdamParams {
        lr: 3e-3,
        ..AdamParams::default()
    };
    println!(
        "model: {} blocks, hidden {}, vocab {} ({} parameters)",
        cfg.layers,
        cfg.hidden,
        cfg.vocab,
        cfg.total_params()
    );

    // The offloaded trainer keeps only a 2-layer window on the device.
    let mut offloaded = HostOffloadTrainer::new(
        cfg,
        42,
        HostOffloadConfig {
            window: 2,
            optimizer_workers: 4,
            adam,
            ..HostOffloadConfig::default()
        },
    );
    // The reference trainer holds all 6 blocks resident.
    let mut resident = HostResidentTrainer::new(cfg, 42, adam);

    let mut corpus = SyntheticCorpus::new(cfg.vocab, 7);
    let batch = corpus.next_batch(cfg.batch, cfg.seq - 1);

    println!("\nstep | offloaded loss | resident loss");
    for step in 0..15 {
        let lo = offloaded.train_step(&batch);
        let lr_ = resident.train_step(&batch);
        if step % 3 == 0 {
            println!("{step:4} | {lo:14.4} | {lr_:13.4}");
        }
        assert_eq!(lo, lr_, "losses must be bit-identical");
    }
    offloaded.flush();

    // The paper's §III-A claim, verified: asynchronous offloading does not
    // change a single bit of the trained parameters.
    for i in 0..cfg.layers {
        assert_eq!(
            offloaded.block_params(i),
            resident.model().blocks[i].flatten_params(),
            "block {i} diverged"
        );
    }
    println!(
        "\nall {} blocks bit-identical to resident training",
        cfg.layers
    );
    println!(
        "device window: {} layers | peak device bytes: {} | H2D traffic: {} KiB | optimizer updates: {}",
        offloaded.window(),
        offloaded.device().peak(),
        offloaded.device().h2d_bytes() / 1024,
        offloaded.optimizer_updates()
    );
}
