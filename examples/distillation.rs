//! Knowledge distillation (§VI-D3): a large *offloaded* teacher guides a
//! small resident student using layer-wise hidden states.
//!
//! The teacher runs FP-only through the working window (it never needs
//! gradients or optimizer state), exactly the regime Fig. 13 evaluates; the
//! student trains against the teacher's intermediate activations.
//!
//! Run with: `cargo run --release --example distillation`

use stronghold_core::adam::AdamParams;
use stronghold_core::host::{HostOffloadConfig, HostOffloadTrainer};
use stronghold_model::config::tiny;
use stronghold_model::data::SyntheticCorpus;
use stronghold_model::transformer::Transformer;
use stronghold_tensor::ops::axpy;
use stronghold_tensor::Tensor;

fn mse_and_grad(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    let n = pred.numel() as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0f32;
    for (g, t) in grad.data_mut().iter_mut().zip(target.data()) {
        let d = *g - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

fn main() {
    // Teacher: 8 blocks, streamed through a 2-layer window (FP-only).
    let tcfg = tiny(8);
    let teacher = HostOffloadTrainer::new(tcfg, 11, HostOffloadConfig::default());

    // Student: 2 blocks, fully resident.
    let scfg = tiny(2);
    let mut student = Transformer::new(scfg, 23);
    let hp = AdamParams {
        lr: 5e-3,
        ..AdamParams::default()
    };
    let mut adams: Vec<stronghold_core::adam::AdamState> = student
        .blocks
        .iter()
        .map(|b| stronghold_core::adam::AdamState::new(b.param_count()))
        .collect();

    let mut corpus = SyntheticCorpus::new(tcfg.vocab, 3);
    let (tokens, _) = corpus.next_sample(tcfg.seq - 1);

    // Teacher exposes per-layer hidden states; the student matches the
    // teacher's depth-4 and depth-8 representations with its two blocks.
    let t_states = teacher.hidden_states(&tokens);
    println!(
        "teacher produced {} hidden states (FP-only, window {})",
        t_states.len(),
        teacher.window()
    );

    println!("\nstep | distillation loss");
    let mut first = f32::NAN;
    let mut last = f32::NAN;
    for step in 0..40 {
        // Student forward: embed, two blocks, capture both activations.
        let x0 = student.embed(&tokens);
        let (y1, c1) = student.blocks[0].forward(&x0);
        let (y2, c2) = student.blocks[1].forward(&y1);
        let (l1, g1) = mse_and_grad(&y1, &t_states[4]);
        let (l2, g2) = mse_and_grad(&y2, &t_states[8]);
        let loss = l1 + l2;
        if step == 0 {
            first = loss;
        }
        last = loss;
        if step % 8 == 0 {
            println!("{step:4} | {loss:.5}");
        }
        // Backward through both blocks.
        let mut grads1 = student.blocks[1].zero_grads();
        let dy1_from2 = student.blocks[1].backward(&g2, &y1, &c2, &mut grads1);
        let mut dy1 = g1;
        axpy(&mut dy1, 1.0, &dy1_from2);
        let mut grads0 = student.blocks[0].zero_grads();
        let _ = student.blocks[0].backward(&dy1, &x0, &c1, &mut grads0);
        // Adam on both blocks.
        for (i, g) in [grads0, grads1].into_iter().enumerate() {
            let mut flat = student.blocks[i].flatten_params();
            adams[i].step(&mut flat, &g.flatten(), &hp);
            student.blocks[i].load_flat_params(&flat);
        }
    }
    println!("\ndistillation loss: {first:.5} -> {last:.5}");
    assert!(last < first * 0.7, "student must learn from the teacher");
    println!("student matched the offloaded teacher's representations");
}
