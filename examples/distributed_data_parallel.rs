//! Distributed training on the 8-node A10 cluster (§VI-D2, Fig. 12):
//! converting model parallelism into data parallelism.
//!
//! Because STRONGHOLD fits the whole model in one node's GPU+CPU memory,
//! the cluster can run pure data parallelism; ZeRO-2/3 must partition state
//! and pay collective traffic plus partitioning machinery every step.
//!
//! Run with: `cargo run --release --example distributed_data_parallel`

use stronghold_cluster::{StrongholdDP, ZeroDP};
use stronghold_collective::volume::{volume_ratio, VolumeParams};
use stronghold_core::method::{max_trainable_layers, TrainingMethod};
use stronghold_model::config::ModelConfig;
use stronghold_sim::Platform;

fn main() {
    let a10 = Platform::a10_cluster_8();
    println!("platform: 8 nodes x (24 GiB A10 + 1 TiB RAM), 800 Gbps aggregate network\n");

    // The largest model ZeRO-2 supports at batch 1 per GPU (the paper's
    // Fig. 12 setup).
    let base = ModelConfig::new(1, 2560, 16).with_batch(1);
    let cfg = max_trainable_layers(&ZeroDP::stage2(), &base, &a10, 400).expect("zero-2 cap");
    println!(
        "comparison model: {} ({} layers), batch 1 per GPU",
        cfg.size_label(),
        cfg.layers
    );

    println!("\nmethod           | global samples/s | vs ZeRO-2");
    let z2 = ZeroDP::stage2().iteration(&cfg, &a10).unwrap();
    for m in [
        Box::new(ZeroDP::stage2()) as Box<dyn TrainingMethod>,
        Box::new(ZeroDP::stage3()),
        Box::new(StrongholdDP),
    ] {
        let r = m.iteration(&cfg, &a10).unwrap();
        println!(
            "{:<16} | {:16.3} | {:.2}x",
            m.name(),
            r.throughput,
            r.throughput / z2.throughput
        );
    }

    // The analytic traffic model of §III-F for this configuration.
    let p = VolumeParams {
        w: 8,
        n: cfg.layers as u64,
        hd: cfg.hidden as u64,
        bs: 8, // global batch when each node takes one sample
        seq: cfg.seq as u64,
        vs: cfg.vocab as u64,
    };
    println!(
        "\nSection III-F traffic model: V_mp/V_dp = {:.2} at global batch {}",
        volume_ratio(&p),
        p.bs
    );
    println!("(DP wins outright once gradient volume is amortized by overlap;");
    println!(" STRONGHOLD additionally hides the all-reduce under backward compute.)");
}
