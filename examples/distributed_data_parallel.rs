//! Distributed training on the 8-node A10 cluster (§VI-D2, Fig. 12):
//! converting model parallelism into data parallelism.
//!
//! Because STRONGHOLD fits the whole model in one node's GPU+CPU memory,
//! the cluster can run pure data parallelism; ZeRO-2/3 must partition state
//! and pay collective traffic plus partitioning machinery every step.
//!
//! Run with: `cargo run --release --example distributed_data_parallel`

use stronghold_cluster::{StrongholdDP, ZeroDP};
use stronghold_collective::volume::{volume_ratio, VolumeParams};
use stronghold_core::adam::AdamParams;
use stronghold_core::host::{DataParallelConfig, DataParallelTrainer, HostResidentTrainer};
use stronghold_core::method::{max_trainable_layers, TrainingMethod};
use stronghold_model::config::{tiny, ModelConfig};
use stronghold_model::data::SyntheticCorpus;
use stronghold_sim::Platform;

fn main() {
    let a10 = Platform::a10_cluster_8();
    println!("platform: 8 nodes x (24 GiB A10 + 1 TiB RAM), 800 Gbps aggregate network\n");

    // The largest model ZeRO-2 supports at batch 1 per GPU (the paper's
    // Fig. 12 setup).
    let base = ModelConfig::new(1, 2560, 16).with_batch(1);
    let cfg = max_trainable_layers(&ZeroDP::stage2(), &base, &a10, 400).expect("zero-2 cap");
    println!(
        "comparison model: {} ({} layers), batch 1 per GPU",
        cfg.size_label(),
        cfg.layers
    );

    println!("\nmethod           | global samples/s | vs ZeRO-2");
    let z2 = ZeroDP::stage2().iteration(&cfg, &a10).unwrap();
    for m in [
        Box::new(ZeroDP::stage2()) as Box<dyn TrainingMethod>,
        Box::new(ZeroDP::stage3()),
        Box::new(StrongholdDP),
    ] {
        let r = m.iteration(&cfg, &a10).unwrap();
        println!(
            "{:<16} | {:16.3} | {:.2}x",
            m.name(),
            r.throughput,
            r.throughput / z2.throughput
        );
    }

    // The analytic traffic model of §III-F for this configuration.
    let p = VolumeParams {
        w: 8,
        n: cfg.layers as u64,
        hd: cfg.hidden as u64,
        bs: 8, // global batch when each node takes one sample
        seq: cfg.seq as u64,
        vs: cfg.vocab as u64,
    };
    println!(
        "\nSection III-F traffic model: V_mp/V_dp = {:.2} at global batch {}",
        volume_ratio(&p),
        p.bs
    );
    println!("(DP wins outright once gradient volume is amortized by overlap;");
    println!(" STRONGHOLD additionally hides the all-reduce under backward compute.)");

    // And the real thing, in miniature: two windowed replicas on scoped
    // threads joined by the in-process collective, bit-identical to one
    // resident trainer on the same global batch.
    let cfg = tiny(4).with_batch(8);
    let batch = SyntheticCorpus::new(cfg.vocab, 7).next_batch(8, cfg.seq - 1);
    let mut dp = DataParallelTrainer::new(
        cfg,
        42,
        DataParallelConfig {
            replicas: 2,
            ..DataParallelConfig::default()
        },
    );
    let mut single = HostResidentTrainer::new(cfg, 42, AdamParams::default());
    println!("\nreal 2-replica run vs single-replica resident (same global batch):");
    for step in 0..3 {
        let (a, b) = (dp.train_step(&batch), single.train_step(&batch));
        println!(
            "  step {step}: dp loss {a:.6} | resident {b:.6} | bit-identical: {}",
            a.to_bits() == b.to_bits()
        );
    }
    println!(
        "  all-reduce traffic: {} bytes over {} steps (4·w·(w−1)·E per step)",
        dp.allreduce_bytes(),
        dp.steps()
    );
}
