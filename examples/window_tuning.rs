//! Window tuning: what the analytical model of §III-D actually decides.
//!
//! Sweeps the working-window size on the 1.7B model, prints the throughput
//! curve (Fig. 9), and dissects the P1/P2 constraint terms so you can see
//! *why* the solver picks the window it picks on this platform.
//!
//! Run with: `cargo run --release --example window_tuning`

use stronghold_core::analytic::solve_window;
use stronghold_core::memplan::{ColdTier, StrongholdMemPlan};
use stronghold_core::offload::{simulate_iteration, OffloadOptions};
use stronghold_core::profile::LayerProfile;
use stronghold_model::config::common_1_7b;
use stronghold_sim::{CostModel, Platform};

fn main() {
    let v100 = Platform::v100_server();
    let cfg = common_1_7b();
    let plan = StrongholdMemPlan::new(cfg, 1, ColdTier::CpuRam);
    let cost = CostModel::new(v100);
    let profile = LayerProfile::from_cost_model(plan.layers(), &cost, cfg.batch);

    // The raw ingredients of P1/P2 for a representative block.
    let i = 5;
    println!("per-layer profile (block {i}, batch {}):", cfg.batch);
    println!(
        "  t_fp  = {}   t_bp  = {}",
        profile.t_fp[i], profile.t_bp[i]
    );
    println!(
        "  t_c2g = {}   t_g2c = {}",
        profile.t_c2g[i], profile.t_g2c[i]
    );
    println!(
        "  t_opt_cpu = {} t_opt_gpu = {}",
        profile.t_opt_cpu[i], profile.t_opt_gpu[i]
    );
    println!("  t_async = {}", profile.t_async);

    let cap = StrongholdMemPlan::gpu_capacity(&v100);
    let planres = solve_window(&profile, |m| plan.gpu_usage(m), cap).expect("window");
    println!(
        "\nanalytic window: m = {} (memory admits up to {})",
        planres.m, planres.m_mem_max
    );
    println!(
        "  hard feasible: {} | soft (1d)/(2d): {} | Eq.(3): {} | Eq.(5): {}",
        planres.hard_feasible,
        planres.soft_satisfied,
        planres.cpu_update_hidden,
        planres.async_overhead_ok
    );

    println!("\nwindow sweep (Fig. 9):");
    println!("  m | samples/s | GPU GiB");
    for m in 1..=12usize {
        let opts = OffloadOptions {
            window: Some(m),
            ..OffloadOptions::default()
        };
        match simulate_iteration(&cfg, &v100, &opts) {
            Ok(r) => println!(
                " {m:2} | {:9.4} | {:7.2}",
                r.throughput,
                r.gpu_peak as f64 / (1u64 << 30) as f64
            ),
            Err(e) => println!(" {m:2} | OOM ({e})"),
        }
    }
    println!("\nOn this calibration transfers hide under compute from m = 1, so");
    println!("the curve is flat and larger windows only add memory pressure —");
    println!("see EXPERIMENTS.md for the deviation note vs the paper's plateau at 8.");
}
