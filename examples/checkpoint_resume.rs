//! Checkpoint / resume: serialize a model mid-training, reload it, and
//! continue — the workflow behind the paper's fine-tuning scenario (§III-G
//! targets fine-tuning *from a pre-trained checkpoint*).
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use stronghold_core::adam::AdamParams;
use stronghold_core::host::HostResidentTrainer;
use stronghold_model::config::tiny;
use stronghold_model::data::SyntheticCorpus;
use stronghold_model::serialize;

fn main() {
    let cfg = tiny(3);
    let adam = AdamParams {
        lr: 4e-3,
        ..AdamParams::default()
    };
    let mut corpus = SyntheticCorpus::new(cfg.vocab, 21);
    let batch = corpus.next_batch(cfg.batch, cfg.seq - 1);

    // Phase 1: pre-train a few steps.
    let mut trainer = HostResidentTrainer::new(cfg, 99, adam);
    for step in 0..8 {
        let loss = trainer.train_step(&batch);
        if step % 4 == 0 {
            println!("pretrain step {step}: loss {loss:.4}");
        }
    }

    // Save the checkpoint (magic + config header + f32 payloads).
    let path = std::env::temp_dir().join("stronghold-demo-ckpt.bin");
    serialize::save_to_file(&trainer.model, &path).expect("save checkpoint");
    let bytes = std::fs::metadata(&path).unwrap().len();
    println!("\ncheckpoint written: {} ({bytes} bytes)", path.display());

    // Phase 2: a fresh process reloads and fine-tunes.
    let restored = serialize::load_from_file(&path).expect("load checkpoint");
    std::fs::remove_file(&path).ok();
    let pre = trainer.eval_loss(&batch);
    let mut finetune = HostResidentTrainer::new(cfg, 0, adam);
    finetune.model = restored;
    let resumed = finetune.eval_loss(&batch);
    assert_eq!(pre, resumed, "restored model must evaluate identically");
    println!("restored model evaluates identically (loss {resumed:.4})");

    for step in 0..8 {
        let loss = finetune.train_step(&batch);
        if step % 4 == 0 {
            println!("finetune step {step}: loss {loss:.4}");
        }
    }
    let fin = finetune.eval_loss(&batch);
    assert!(fin < resumed, "fine-tuning should keep improving");
    println!("\nfine-tuning continued from the checkpoint: {resumed:.4} -> {fin:.4}");
}
