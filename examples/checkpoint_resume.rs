//! Checkpoint / resume: snapshot the *full training state* (parameters,
//! per-layer Adam moments, step counter) mid-run, reload it into a fresh
//! offloaded trainer, and continue — the workflow behind the paper's
//! fine-tuning scenario (§III-G targets fine-tuning *from a pre-trained
//! checkpoint*). Resuming is bit-exact: train 2k steps straight, or train
//! k + checkpoint + restore + k, and the parameters come out identical.
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use stronghold_core::adam::AdamParams;
use stronghold_core::host::{HostOffloadConfig, HostOffloadTrainer};
use stronghold_core::schedule::LrSchedule;
use stronghold_model::config::tiny;
use stronghold_model::data::SyntheticCorpus;

fn main() {
    let cfg = tiny(3);
    let hocfg = run_config();
    let mut corpus = SyntheticCorpus::new(cfg.vocab, 21);
    let batch = corpus.next_batch(cfg.batch, cfg.seq - 1);

    // Phase 1: pre-train a few steps on the working-window pipeline.
    let mut trainer = HostOffloadTrainer::new(cfg, 99, hocfg);
    for step in 0..8 {
        let loss = trainer.train_step(&batch);
        if step % 4 == 0 {
            println!("pretrain step {step}: loss {loss:.4}");
        }
    }

    // Save the universal training-state blob (versioned header + model +
    // optimizer moments + step counter). Any of the three trainers can
    // reload it.
    let blob = trainer.save_training_state();
    let path = std::env::temp_dir().join("stronghold-demo-state.bin");
    std::fs::write(&path, &blob).expect("write checkpoint");
    println!(
        "\ntraining state written: {} ({} bytes)",
        path.display(),
        blob.len()
    );

    // Phase 2: a fresh process reloads and fine-tunes. The LR schedule
    // picks up at step 8, not step 0, because the step counter travels
    // with the blob.
    let raw = std::fs::read(&path).expect("read checkpoint");
    std::fs::remove_file(&path).ok();
    let mut finetune = HostOffloadTrainer::load_training_state(bytes::Bytes::from(raw), cfg, hocfg)
        .expect("restore training state");
    let pre = trainer.eval_loss(&batch);
    let resumed = finetune.eval_loss(&batch);
    assert_eq!(pre, resumed, "restored model must evaluate identically");
    println!(
        "restored at step {} evaluates identically (loss {resumed:.4})",
        finetune.steps()
    );

    for step in 0..8 {
        let loss = finetune.train_step(&batch);
        if step % 4 == 0 {
            println!("finetune step {step}: loss {loss:.4}");
        }
    }
    let fin = finetune.eval_loss(&batch);
    assert!(fin < resumed, "fine-tuning should keep improving");
    println!("\nfine-tuning continued from the checkpoint: {resumed:.4} -> {fin:.4}");

    // Bit-exactness check: an uninterrupted 16-step run lands on the same
    // parameters as 8 + checkpoint + 8.
    let mut straight = HostOffloadTrainer::new(cfg, 99, run_config());
    for _ in 0..16 {
        straight.train_step(&batch);
    }
    straight.flush();
    finetune.flush();
    for i in 0..cfg.layers {
        assert_eq!(
            straight.block_params(i),
            finetune.block_params(i),
            "resume must be bit-exact"
        );
    }
    println!("16 straight steps == 8 + resume + 8, bit for bit");
}

fn run_config() -> HostOffloadConfig {
    HostOffloadConfig {
        window: 2,
        optimizer_workers: 2,
        adam: AdamParams {
            lr: 4e-3,
            ..AdamParams::default()
        },
        schedule: Some(LrSchedule::CosineWithWarmup {
            peak: 4e-3,
            floor: 4e-4,
            warmup: 4,
            total: 16,
        }),
        clip_norm: Some(1.0),
        ..HostOffloadConfig::default()
    }
}
