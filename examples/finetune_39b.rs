//! Fine-tuning a 39.4B-parameter model on one 32 GB V100 — the paper's
//! headline scenario (§VI-A1), priced on the virtual-time simulator.
//!
//! Walks through exactly what the runtime does at deployment: warm-up
//! profiling, analytic window derivation (P1/P2 of §III-D), stream-count
//! selection, and a steady-state iteration with the full trace.
//!
//! Run with: `cargo run --release --example finetune_39b`

use stronghold_core::offload::{simulate_iteration, OffloadOptions};
use stronghold_core::{Stronghold, TrainingMethod};
use stronghold_model::config::model_39_4b;
use stronghold_sim::Platform;

fn main() {
    let v100 = Platform::v100_server();
    let cfg = model_39_4b();
    println!(
        "model: {} ({} layers x hidden {}), batch {}",
        cfg.size_label(),
        cfg.layers,
        cfg.hidden,
        cfg.batch
    );
    println!(
        "platform: 32 GiB V100 + {} GiB host RAM",
        v100.cpu.ram_bytes >> 30
    );

    let sh = Stronghold::new();
    assert!(sh.feasible(&cfg, &v100), "39.4B must fit (Fig. 6a)");

    // Warm-up: profile, solve P1/P2, choose streams.
    let (window, streams, diag) = sh.warmup(&cfg, &v100).expect("warm-up");
    println!("\nwarm-up outcome:");
    println!("  working window m = {window} layers, {streams} stream(s)");
    if let Some(d) = diag {
        println!(
            "  hard constraints (1b)(1c)/(2b)(2c): {} | soft (1d)/(2d): {} | Eq.(3) CPU update hidden: {} | Eq.(5) async overhead recouped: {}",
            d.hard_feasible, d.soft_satisfied, d.cpu_update_hidden, d.async_overhead_ok
        );
        println!("  memory admits windows up to m = {}", d.m_mem_max);
    }

    let r = simulate_iteration(
        &cfg,
        &v100,
        &OffloadOptions {
            streams,
            ..OffloadOptions::default()
        },
    )
    .expect("iteration");
    println!("\nsteady-state iteration:");
    println!("  iteration time  : {}", r.iter_time);
    println!("  throughput      : {:.4} samples/s", r.throughput);
    println!("  achieved        : {:.2} TFLOPS", r.tflops);
    println!(
        "  GPU peak        : {:.1} GiB",
        r.gpu_peak as f64 / (1u64 << 30) as f64
    );
    println!(
        "  host pinned     : {:.0} GiB",
        r.cpu_peak as f64 / (1u64 << 30) as f64
    );
    println!("  copy overlap    : {:.1}%", r.overlap * 100.0);
    println!("  GPU utilization : {:.1}%", r.gpu_util * 100.0);
}
