//! Model checkpoint serialization.
//!
//! Production fine-tuning (the paper's primary use case for the NVMe tier,
//! §III-G) starts from a *pre-trained checkpoint*. This module defines a
//! compact binary container for a [`Transformer`]'s configuration and
//! parameters — magic + version + config header followed by per-group f32
//! little-endian payloads — built on the `bytes` crate for zero-copy
//! parsing.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::config::ModelConfig;
use crate::transformer::Transformer;

/// File magic: `SHCK`.
pub const MAGIC: u32 = 0x5348_434B;
/// Container format version.
pub const VERSION: u16 = 1;

/// Serialization / deserialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Magic or version mismatch.
    BadHeader(String),
    /// Payload ended early or sizes disagree with the embedded config.
    Truncated(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadHeader(m) => write!(f, "bad checkpoint header: {m}"),
            CheckpointError::Truncated(m) => write!(f, "truncated checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn put_f32s(buf: &mut BytesMut, data: &[f32]) {
    buf.reserve(data.len() * 4);
    for v in data {
        buf.put_f32_le(*v);
    }
}

fn get_f32s(buf: &mut Bytes, n: usize, what: &str) -> Result<Vec<f32>, CheckpointError> {
    if buf.remaining() < n * 4 {
        return Err(CheckpointError::Truncated(format!(
            "{what}: need {} bytes, have {}",
            n * 4,
            buf.remaining()
        )));
    }
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

/// Serializes a model (config + all parameters) into a checkpoint blob.
pub fn save(model: &Transformer) -> Bytes {
    let cfg = model.cfg;
    let mut buf = BytesMut::new();
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    for v in [
        cfg.layers as u64,
        cfg.hidden as u64,
        cfg.heads as u64,
        cfg.seq as u64,
        cfg.vocab as u64,
        cfg.batch as u64,
        cfg.mp_degree as u64,
    ] {
        buf.put_u64_le(v);
    }
    put_f32s(&mut buf, model.embedding.token.data());
    put_f32s(&mut buf, model.embedding.position.data());
    for b in &model.blocks {
        put_f32s(&mut buf, &b.flatten_params());
    }
    put_f32s(&mut buf, model.lnf_g.data());
    put_f32s(&mut buf, model.lnf_b.data());
    buf.freeze()
}

/// Deserializes a checkpoint blob into a model.
pub fn load(mut blob: Bytes) -> Result<Transformer, CheckpointError> {
    if blob.remaining() < 4 + 2 + 7 * 8 {
        return Err(CheckpointError::Truncated("header".into()));
    }
    let magic = blob.get_u32();
    if magic != MAGIC {
        return Err(CheckpointError::BadHeader(format!("magic {magic:#x}")));
    }
    let version = blob.get_u16();
    if version != VERSION {
        return Err(CheckpointError::BadHeader(format!("version {version}")));
    }
    let mut next = || blob.get_u64_le() as usize;
    let cfg = ModelConfig {
        layers: next(),
        hidden: next(),
        heads: next(),
        seq: next(),
        vocab: next(),
        batch: next(),
        mp_degree: next(),
    };
    // Rebuild structure (seed irrelevant; weights are overwritten).
    let mut model = Transformer::new(cfg, 0);
    let tok = get_f32s(&mut blob, model.embedding.token.numel(), "token table")?;
    model.embedding.token.data_mut().copy_from_slice(&tok);
    let pos = get_f32s(
        &mut blob,
        model.embedding.position.numel(),
        "position table",
    )?;
    model.embedding.position.data_mut().copy_from_slice(&pos);
    for (i, b) in model.blocks.iter_mut().enumerate() {
        let flat = get_f32s(&mut blob, b.param_count(), &format!("block {i}"))?;
        b.load_flat_params(&flat);
    }
    let g = get_f32s(&mut blob, model.lnf_g.numel(), "lnf gain")?;
    model.lnf_g.data_mut().copy_from_slice(&g);
    let bb = get_f32s(&mut blob, model.lnf_b.numel(), "lnf bias")?;
    model.lnf_b.data_mut().copy_from_slice(&bb);
    if blob.has_remaining() {
        return Err(CheckpointError::Truncated(format!(
            "{} trailing bytes",
            blob.remaining()
        )));
    }
    Ok(model)
}

/// Saves a checkpoint to a file.
pub fn save_to_file(model: &Transformer, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, save(model))
}

/// Loads a checkpoint from a file.
pub fn load_from_file(path: &std::path::Path) -> std::io::Result<Transformer> {
    let data = std::fs::read(path)?;
    load(Bytes::from(data)).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tiny;

    #[test]
    fn round_trip_is_exact() {
        let m1 = Transformer::new(tiny(3), 77);
        let blob = save(&m1);
        let m2 = load(blob).unwrap();
        assert_eq!(m1.cfg, m2.cfg);
        assert_eq!(m1.embedding.token, m2.embedding.token);
        assert_eq!(m1.embedding.position, m2.embedding.position);
        for (a, b) in m1.blocks.iter().zip(m2.blocks.iter()) {
            assert_eq!(a.flatten_params(), b.flatten_params());
        }
        assert_eq!(m1.lnf_g, m2.lnf_g);
        assert_eq!(m1.lnf_b, m2.lnf_b);
    }

    #[test]
    fn loaded_model_computes_identically() {
        let m1 = Transformer::new(tiny(2), 3);
        let m2 = load(save(&m1)).unwrap();
        let tokens: Vec<u32> = (0..10).collect();
        assert_eq!(
            m1.forward_loss(&tokens, &tokens),
            m2.forward_loss(&tokens, &tokens)
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let m = Transformer::new(tiny(1), 1);
        let mut raw = save(&m).to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(
            load(Bytes::from(raw)),
            Err(CheckpointError::BadHeader(_))
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let m = Transformer::new(tiny(1), 1);
        let raw = save(&m);
        let cut = raw.slice(0..raw.len() - 16);
        assert!(matches!(load(cut), Err(CheckpointError::Truncated(_))));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let m = Transformer::new(tiny(1), 1);
        let mut raw = save(&m).to_vec();
        raw.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            load(Bytes::from(raw)),
            Err(CheckpointError::Truncated(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let m = Transformer::new(tiny(2), 9);
        let path = std::env::temp_dir().join(format!("shck-test-{}.bin", std::process::id()));
        save_to_file(&m, &path).unwrap();
        let m2 = load_from_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(m.blocks[0].flatten_params(), m2.blocks[0].flatten_params());
    }
}
