//! GPT-style transformer models for the STRONGHOLD reproduction.
//!
//! Provides both sides of the model coin:
//!
//! * **Accounting** ([`config`], [`layer`], [`memory`]): parameter counts,
//!   FLOPs and byte sizes per layer for arbitrary Table I configurations —
//!   the inputs to the performance simulator. Billion-parameter models are
//!   described here without ever materializing their weights.
//! * **Functional model** ([`block`], [`transformer`]): a real, trainable
//!   GPT built on `stronghold-tensor`, with hand-written backward passes and
//!   activation checkpointing, used by the functional substrate to prove the
//!   runtime's exactness claims.

pub mod block;
pub mod checkpoint;
pub mod config;
pub mod data;
pub mod layer;
pub mod memory;
pub mod moe;
pub mod serialize;
pub mod transformer;

pub use config::ModelConfig;
pub use layer::{LayerKind, LayerSpec};
pub use transformer::Transformer;
