//! Per-layer accounting: the offloading unit of the STRONGHOLD runtime.
//!
//! A [`LayerSpec`] describes one layer of the tensor graph as the runtime
//! sees it (§III-B): its parameter/gradient/optimizer byte sizes (the "model
//! state" `S_k` of the analytical model) and its forward/backward FLOPs.
//! Under tensor parallelism the spec describes the *per-GPU shard*, which the
//! paper notes is then the offloading unit.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;

/// Bytes per FP32 scalar.
pub const F32_BYTES: u64 = 4;
/// Bytes of Adam optimizer state per parameter (momentum + variance, FP32).
pub const ADAM_STATE_BYTES: u64 = 8;

/// The kind of a model layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Token + positional embedding (kept on-GPU by STRONGHOLD, Fig. 3).
    Embedding,
    /// One transformer block.
    Block,
    /// Final layernorm + (tied) LM head / pooling (kept on-GPU, Fig. 3).
    Head,
}

/// Static description of one layer: the unit of offloading, profiling and
/// window accounting.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Position in the forward execution order (0-based).
    pub index: usize,
    /// Layer kind.
    pub kind: LayerKind,
    /// Parameter count of this layer's local shard.
    pub params: u64,
    /// FLOPs for a forward pass of one *sample* through this shard.
    pub flops_fp: u64,
    /// FLOPs for a backward pass of one sample (≈ 2× forward; the additional
    /// recompute cost of activation checkpointing is accounted separately by
    /// the cost model, matching footnote 2 of the paper).
    pub flops_bp: u64,
    /// Bytes of the activation checkpoint that must stay resident between FP
    /// and BP for one sample (layer-wise checkpointing, §V-D).
    pub act_checkpoint_bytes: u64,
    /// Peak bytes of transient activation workspace while this layer computes
    /// on one sample (attention score matrices etc.).
    pub act_workspace_bytes: u64,
}

impl LayerSpec {
    /// Parameter bytes (FP32).
    pub fn param_bytes(&self) -> u64 {
        self.params * F32_BYTES
    }

    /// Gradient bytes (FP32).
    pub fn grad_bytes(&self) -> u64 {
        self.params * F32_BYTES
    }

    /// Optimizer state bytes (Adam momentum + variance).
    pub fn opt_state_bytes(&self) -> u64 {
        self.params * ADAM_STATE_BYTES
    }

    /// The "model state" `S_k` moved by the offloading engine during FP:
    /// parameters only (gradients do not exist yet).
    pub fn fp_state_bytes(&self) -> u64 {
        self.param_bytes()
    }

    /// The model state resident during BP: parameters + gradients.
    pub fn bp_state_bytes(&self) -> u64 {
        self.param_bytes() + self.grad_bytes()
    }

    /// Full model-state footprint if everything lived on one device
    /// (parameters + gradients + optimizer state), 16 bytes/param as in
    /// ZeRO's accounting for FP32.
    pub fn full_state_bytes(&self) -> u64 {
        self.param_bytes() + self.grad_bytes() + self.opt_state_bytes()
    }
}

/// Builds the execution-ordered layer list for a configuration.
///
/// This is the output of STRONGHOLD's preprocessing stage (§III-B): the
/// layer sequence extracted from the tensor graph, with per-layer storage
/// sizes computed at model-load time.
pub fn build_layers(cfg: &ModelConfig) -> Vec<LayerSpec> {
    let h = cfg.hidden as u64;
    let t = cfg.seq as u64;
    let v = cfg.vocab as u64;
    let mp = cfg.mp_degree as u64;
    let heads = cfg.heads as u64;

    let mut layers = Vec::with_capacity(cfg.layers + 2);

    // Embedding: lookup is cheap; LM-head cost is carried by the Head layer.
    layers.push(LayerSpec {
        index: 0,
        kind: LayerKind::Embedding,
        params: (v + t) * h / mp,
        flops_fp: 2 * t * h, // additions of token+position rows
        flops_bp: 2 * t * h,
        act_checkpoint_bytes: t * h * F32_BYTES,
        act_workspace_bytes: t * h * F32_BYTES,
    });

    // Transformer blocks: 24·T·h² matmul FLOPs + 4·T²·h attention FLOPs.
    let block_params = cfg.block_params_per_shard();
    let block_flops = 24 * t * h * h / mp + 4 * t * t * h / mp;
    for i in 0..cfg.layers {
        layers.push(LayerSpec {
            index: i + 1,
            kind: LayerKind::Block,
            params: block_params,
            flops_fp: block_flops,
            flops_bp: 2 * block_flops,
            act_checkpoint_bytes: t * h * F32_BYTES,
            act_workspace_bytes: (4 * t * h + heads * t * t / mp) * F32_BYTES,
        });
    }

    // Head: final LN + tied LM-head matmul + loss.
    layers.push(LayerSpec {
        index: cfg.layers + 1,
        kind: LayerKind::Head,
        params: 2 * h,
        flops_fp: 2 * t * h * v / mp,
        flops_bp: 4 * t * h * v / mp,
        act_checkpoint_bytes: t * h * F32_BYTES,
        act_workspace_bytes: t * v * F32_BYTES / mp,
    });

    layers
}

/// Sum of `full_state_bytes` across all layers — total model-state bytes.
pub fn total_state_bytes(layers: &[LayerSpec]) -> u64 {
    layers.iter().map(|l| l.full_state_bytes()).sum()
}

/// Sum of parameters across all layers.
pub fn total_params(layers: &[LayerSpec]) -> u64 {
    layers.iter().map(|l| l.params).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{common_1_7b, ModelConfig};

    #[test]
    fn layer_count_is_blocks_plus_two() {
        let cfg = common_1_7b();
        let layers = build_layers(&cfg);
        assert_eq!(layers.len(), cfg.layers + 2);
        assert_eq!(layers[0].kind, LayerKind::Embedding);
        assert_eq!(layers[cfg.layers + 1].kind, LayerKind::Head);
        assert!(layers[1..=cfg.layers]
            .iter()
            .all(|l| l.kind == LayerKind::Block));
    }

    #[test]
    fn total_params_match_config_without_mp() {
        let cfg = common_1_7b();
        let layers = build_layers(&cfg);
        assert_eq!(total_params(&layers), cfg.total_params());
    }

    #[test]
    fn state_bytes_are_16_per_param() {
        let cfg = ModelConfig::new(4, 256, 4);
        let layers = build_layers(&cfg);
        assert_eq!(total_state_bytes(&layers), total_params(&layers) * 16);
    }

    #[test]
    fn bp_flops_double_fp() {
        let layers = build_layers(&common_1_7b());
        for l in &layers[1..layers.len() - 1] {
            assert_eq!(l.flops_bp, 2 * l.flops_fp);
        }
    }

    #[test]
    fn mp_shrinks_shard_and_flops() {
        let base = ModelConfig::new(24, 5120, 16);
        let sharded = base.with_mp(8);
        let l1 = build_layers(&base);
        let l8 = build_layers(&sharded);
        assert!(l8[1].params < l1[1].params / 7);
        assert!(l8[1].flops_fp <= l1[1].flops_fp / 8 + 1);
    }

    #[test]
    fn indices_are_execution_order() {
        let layers = build_layers(&ModelConfig::new(3, 64, 4));
        for (i, l) in layers.iter().enumerate() {
            assert_eq!(l.index, i);
        }
    }
}
