//! Segmented activation checkpointing.
//!
//! Layer-wise checkpointing (the paper's evaluation default, §V-D) keeps
//! one boundary activation per layer. Checkpointing every `k` layers keeps
//! `n/k` boundaries instead, trading `k−1` layers of extra recompute and a
//! transient `k`-deep activation stack during BP. STRONGHOLD supports this
//! "as long as the working window size is larger than the number of layers
//! between two consecutive checkpoints" (§III-C) — the constraint exported
//! here and consumed by the runtime's warm-up diagnostics.

use stronghold_tensor::Tensor;

use crate::config::ModelConfig;
use crate::layer::F32_BYTES;
use crate::transformer::{Transformer, TransformerGrads};

/// The §III-C compatibility constraint: a window of `m` layers supports a
/// checkpoint interval of `k` iff `m ≥ k`.
pub fn window_supports_interval(window: usize, interval: usize) -> bool {
    window >= interval.max(1)
}

/// Boundary-activation residency for checkpoint interval `k`: one
/// `[seq, hidden]` tensor per segment per sample.
pub fn checkpoint_bytes_with_interval(cfg: &ModelConfig, interval: usize) -> u64 {
    let k = interval.max(1);
    let segments = cfg.layers.div_ceil(k) as u64;
    segments * cfg.seq as u64 * cfg.hidden as u64 * F32_BYTES * cfg.batch as u64
}

/// Peak transient activation stack during BP recompute of one segment: `k`
/// boundary tensors per sample.
pub fn segment_recompute_bytes(cfg: &ModelConfig, interval: usize) -> u64 {
    interval.max(1) as u64 * cfg.seq as u64 * cfg.hidden as u64 * F32_BYTES * cfg.batch as u64
}

/// Forward + backward for one sample with checkpoints every `interval`
/// blocks. Produces the **same loss and gradients bit-for-bit** as the
/// layer-wise path (each block's math is unchanged; only which activations
/// are retained differs), which the tests assert.
pub fn forward_backward_segmented(
    model: &Transformer,
    tokens: &[u32],
    targets: &[u32],
    grads: &mut TransformerGrads,
    grad_scale: f32,
    interval: usize,
) -> f32 {
    let k = interval.max(1);
    let n = model.blocks.len();

    // FP keeping only segment-boundary inputs.
    let mut boundaries: Vec<(usize, Tensor)> = Vec::new(); // (first block of segment, its input)
    let mut x = model.embed(tokens);
    for i in 0..n {
        if i % k == 0 {
            boundaries.push((i, x.clone()));
        }
        x = model.block_forward(i, &x);
    }

    let (loss, mut dy, head_cache) = model.head_forward_loss(&x, targets);
    let mut scratch = model.zero_grads();
    model.head_backward(&head_cache, &mut scratch);

    // BP segment by segment, deepest first: recompute the segment's
    // intra-activations from its boundary, then backward through it.
    for (seg_start, seg_input) in boundaries.iter().rev() {
        let seg_end = (seg_start + k).min(n); // exclusive
                                              // Recompute per-block inputs inside the segment.
        let mut inputs = Vec::with_capacity(seg_end - seg_start);
        let mut xx = seg_input.clone();
        for i in *seg_start..seg_end {
            inputs.push(xx.clone());
            if i + 1 < seg_end {
                xx = model.block_forward(i, &xx);
            }
        }
        for i in (*seg_start..seg_end).rev() {
            dy = model.block_backward(i, &dy, &inputs[i - seg_start], &mut scratch.blocks[i]);
        }
    }
    model.embed_backward(&dy, tokens, &mut scratch);
    grads.accumulate_scaled(&scratch, grad_scale);
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tiny;
    use crate::data::SyntheticCorpus;

    #[test]
    fn segmented_matches_layerwise_bitwise() {
        let cfg = tiny(6);
        let model = Transformer::new(cfg, 3);
        let mut corpus = SyntheticCorpus::new(cfg.vocab, 8);
        let (tokens, targets) = corpus.next_sample(cfg.seq - 1);

        let mut ref_grads = model.zero_grads();
        let ref_loss = model.forward_backward_sample(&tokens, &targets, &mut ref_grads, 1.0);

        for interval in [1usize, 2, 3, 6, 99] {
            let mut grads = model.zero_grads();
            let loss =
                forward_backward_segmented(&model, &tokens, &targets, &mut grads, 1.0, interval);
            assert_eq!(loss, ref_loss, "interval {interval}: loss");
            for (i, (a, b)) in grads.blocks.iter().zip(ref_grads.blocks.iter()).enumerate() {
                assert_eq!(a.flatten(), b.flatten(), "interval {interval}, block {i}");
            }
            assert_eq!(grads.embedding.token, ref_grads.embedding.token);
            assert_eq!(grads.lnf_g, ref_grads.lnf_g);
        }
    }

    #[test]
    fn fewer_checkpoints_with_larger_interval() {
        let cfg = tiny(8);
        let every = checkpoint_bytes_with_interval(&cfg, 1);
        let quarter = checkpoint_bytes_with_interval(&cfg, 4);
        assert_eq!(every, 4 * quarter);
        // Transient recompute stack grows with the interval instead.
        assert!(segment_recompute_bytes(&cfg, 4) > segment_recompute_bytes(&cfg, 1));
    }

    #[test]
    fn window_constraint() {
        assert!(window_supports_interval(4, 4));
        assert!(window_supports_interval(8, 4));
        assert!(!window_supports_interval(3, 4));
        assert!(window_supports_interval(1, 0), "interval 0 treated as 1");
    }

    #[test]
    fn interval_zero_acts_as_one() {
        let cfg = tiny(4);
        assert_eq!(
            checkpoint_bytes_with_interval(&cfg, 0),
            checkpoint_bytes_with_interval(&cfg, 1)
        );
    }
}
