//! A functional mixture-of-experts block (§III-B's dynamic execution path).
//!
//! The paper singles out gating architectures (MoE) as the case where the
//! layer execution order is *data-dependent*, requiring the preprocessor's
//! branch-aware prefetch policies. This module provides a real top-1-routed
//! MoE block with a hand-written backward pass, so the runtime's graph
//! planner (`stronghold-core`'s `graph` module) has an actual dynamic
//! model to plan for, and so routing statistics (which experts a batch
//! touches) can drive prefetch decisions.
//!
//! Per token `t`: `y_t = x_t + g_t · expert_{e_t}(LN(x_t))` where
//! `e_t = argmax softmax(router(LN(x_t)))` and `g_t` its gate probability —
//! the gate stays in the math so the router receives gradient.

use rand_chacha::ChaCha8Rng;
use stronghold_tensor::linear::{Linear, LinearGrads};
use stronghold_tensor::ops::{
    gelu, gelu_backward, layernorm, layernorm_backward, softmax_rows, softmax_rows_backward,
    LayerNormCache,
};
use stronghold_tensor::Tensor;

/// One expert: a GELU MLP (`fc2(gelu(fc1(x)))`).
#[derive(Clone, Debug)]
pub struct Expert {
    /// Up-projection `[4H, H]`.
    pub fc1: Linear,
    /// Down-projection `[H, 4H]`.
    pub fc2: Linear,
}

/// Gradients of one [`Expert`].
#[derive(Clone, Debug)]
pub struct ExpertGrads {
    /// Up-projection gradients.
    pub fc1: LinearGrads,
    /// Down-projection gradients.
    pub fc2: LinearGrads,
}

impl Expert {
    fn new(hidden: usize, rng: &mut ChaCha8Rng) -> Self {
        Expert {
            fc1: Linear::new(4 * hidden, hidden, rng),
            fc2: Linear::new(hidden, 4 * hidden, rng),
        }
    }

    /// Forward on a single token row `[1, H]`; returns output and the
    /// intermediates needed for backward.
    fn forward_token(&self, x: &Tensor) -> (Tensor, Tensor, Tensor) {
        let h1 = self.fc1.forward(x);
        let g = gelu(&h1);
        let y = self.fc2.forward(&g);
        (y, h1, g)
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.fc1.param_count() + self.fc2.param_count()
    }
}

/// A top-1-routed mixture-of-experts block.
#[derive(Clone, Debug)]
pub struct MoeBlock {
    /// Pre-norm gain.
    pub ln_g: Tensor,
    /// Pre-norm bias.
    pub ln_b: Tensor,
    /// Router `[E, H]`.
    pub router: Linear,
    /// The experts.
    pub experts: Vec<Expert>,
}

/// Gradients of a [`MoeBlock`].
pub struct MoeGrads {
    /// Pre-norm gain gradient.
    pub ln_g: Tensor,
    /// Pre-norm bias gradient.
    pub ln_b: Tensor,
    /// Router gradients.
    pub router: LinearGrads,
    /// Per-expert gradients.
    pub experts: Vec<ExpertGrads>,
}

/// Saved forward state for backward.
pub struct MoeCache {
    ln_out: Tensor,
    ln_cache: LayerNormCache,
    probs: Tensor,
    /// Chosen expert per token.
    pub routes: Vec<usize>,
    /// Gate probability per token.
    pub gates: Vec<f32>,
    token_h1: Vec<Tensor>,
    token_g: Vec<Tensor>,
    token_y: Vec<Tensor>,
}

impl MoeBlock {
    /// Creates a block with `experts` experts for hidden size `hidden`.
    pub fn new(hidden: usize, experts: usize, rng: &mut ChaCha8Rng) -> Self {
        assert!(experts >= 2, "an MoE block needs at least two experts");
        MoeBlock {
            ln_g: Tensor::full([hidden], 1.0),
            ln_b: Tensor::zeros([hidden]),
            router: Linear::new(experts, hidden, rng),
            experts: (0..experts).map(|_| Expert::new(hidden, rng)).collect(),
        }
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.ln_g.numel()
            + self.ln_b.numel()
            + self.router.param_count()
            + self.experts.iter().map(Expert::param_count).sum::<usize>()
    }

    /// Forward for one sample `x: [T, H]`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, MoeCache) {
        let t = x.shape().dim(0);
        let h = x.shape().dim(1);
        let (ln_out, ln_cache) = layernorm(x, &self.ln_g, &self.ln_b, 1e-5);
        let logits = self.router.forward(&ln_out); // [T, E]
        let probs = softmax_rows(&logits);
        let e = self.experts.len();

        let mut y = x.clone();
        let mut routes = Vec::with_capacity(t);
        let mut gates = Vec::with_capacity(t);
        let mut token_h1 = Vec::with_capacity(t);
        let mut token_g = Vec::with_capacity(t);
        let mut token_y = Vec::with_capacity(t);
        for tok in 0..t {
            let row = &probs.data()[tok * e..(tok + 1) * e];
            let (best, &gate) = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
                .expect("non-empty experts");
            let xin = Tensor::from_vec([1, h], ln_out.data()[tok * h..(tok + 1) * h].to_vec());
            let (ey, h1, g) = self.experts[best].forward_token(&xin);
            for j in 0..h {
                y.data_mut()[tok * h + j] += gate * ey.data()[j];
            }
            routes.push(best);
            gates.push(gate);
            token_h1.push(h1);
            token_g.push(g);
            token_y.push(ey);
        }
        (
            y,
            MoeCache {
                ln_out,
                ln_cache,
                probs,
                routes,
                gates,
                token_h1,
                token_g,
                token_y,
            },
        )
    }

    /// Backward for one sample; returns `dx`, accumulating into `grads`.
    pub fn backward(
        &self,
        dy: &Tensor,
        x: &Tensor,
        cache: &MoeCache,
        grads: &mut MoeGrads,
    ) -> Tensor {
        let t = x.shape().dim(0);
        let h = x.shape().dim(1);
        let e = self.experts.len();
        let mut dx = dy.clone(); // residual path
        let mut d_ln_out = Tensor::zeros([t, h]);
        let mut d_probs = Tensor::zeros([t, e]);

        for tok in 0..t {
            let best = cache.routes[tok];
            let gate = cache.gates[tok];
            let dy_tok = &dy.data()[tok * h..(tok + 1) * h];
            // d gate = dy · expert_out.
            let ey = &cache.token_y[tok];
            let dgate: f32 = dy_tok.iter().zip(ey.data()).map(|(a, b)| a * b).sum();
            d_probs.data_mut()[tok * e + best] = dgate;
            // Through the expert (scaled by the gate).
            let d_ey = Tensor::from_vec([1, h], dy_tok.iter().map(|v| v * gate).collect());
            let d_g = self.experts[best].fc2.backward(
                &d_ey,
                &cache.token_g[tok],
                &mut grads.experts[best].fc2,
            );
            let d_h1 = gelu_backward(&d_g, &cache.token_h1[tok]);
            let xin =
                Tensor::from_vec([1, h], cache.ln_out.data()[tok * h..(tok + 1) * h].to_vec());
            let d_xin = self.experts[best]
                .fc1
                .backward(&d_h1, &xin, &mut grads.experts[best].fc1);
            for j in 0..h {
                d_ln_out.data_mut()[tok * h + j] += d_xin.data()[j];
            }
        }

        // Through the router softmax.
        let d_logits = softmax_rows_backward(&d_probs, &cache.probs);
        let d_ln_from_router = self
            .router
            .backward(&d_logits, &cache.ln_out, &mut grads.router);
        stronghold_tensor::ops::add_assign(&mut d_ln_out, &d_ln_from_router);

        // Through the pre-norm.
        let d_x_ln = layernorm_backward(
            &d_ln_out,
            x,
            &self.ln_g,
            &cache.ln_cache,
            &mut grads.ln_g,
            &mut grads.ln_b,
        );
        stronghold_tensor::ops::add_assign(&mut dx, &d_x_ln);
        dx
    }

    /// Allocates zeroed gradients.
    pub fn zero_grads(&self) -> MoeGrads {
        MoeGrads {
            ln_g: Tensor::zeros(*self.ln_g.shape()),
            ln_b: Tensor::zeros(*self.ln_b.shape()),
            router: self.router.zero_grads(),
            experts: self
                .experts
                .iter()
                .map(|ex| ExpertGrads {
                    fc1: ex.fc1.zero_grads(),
                    fc2: ex.fc2.zero_grads(),
                })
                .collect(),
        }
    }

    /// Expert utilization for a cache: how many tokens routed to each
    /// expert — exactly the signal a working-window planner uses to decide
    /// which expert states to prefetch (§III-B).
    pub fn utilization(&self, cache: &MoeCache) -> Vec<usize> {
        let mut counts = vec![0usize; self.experts.len()];
        for &r in &cache.routes {
            counts[r] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_tensor::init::{normal, seeded_rng};

    #[test]
    fn forward_shapes_and_routing() {
        let mut rng = seeded_rng(60);
        let moe = MoeBlock::new(16, 4, &mut rng);
        let x = normal([10, 16], 1.0, &mut rng);
        let (y, cache) = moe.forward(&x);
        assert_eq!(y.shape().dims(), &[10, 16]);
        assert_eq!(cache.routes.len(), 10);
        assert!(cache.routes.iter().all(|&r| r < 4));
        assert!(cache.gates.iter().all(|&g| (0.0..=1.0).contains(&g)));
        let util = moe.utilization(&cache);
        assert_eq!(util.iter().sum::<usize>(), 10);
    }

    #[test]
    fn gate_is_argmax_probability() {
        let mut rng = seeded_rng(61);
        let moe = MoeBlock::new(8, 3, &mut rng);
        let x = normal([4, 8], 1.0, &mut rng);
        let (_, cache) = moe.forward(&x);
        for tok in 0..4 {
            let row = &cache.probs.data()[tok * 3..(tok + 1) * 3];
            let max = row.iter().cloned().fold(f32::MIN, f32::max);
            assert_eq!(cache.gates[tok], max);
            assert_eq!(row[cache.routes[tok]], max);
        }
    }

    #[test]
    fn gradient_check_through_moe() {
        // Finite differences around a point where routing is stable (small
        // eps cannot flip an argmax that isn't near a tie).
        let mut rng = seeded_rng(62);
        let moe = MoeBlock::new(8, 2, &mut rng);
        let x = normal([3, 8], 0.5, &mut rng);
        let w = normal([3, 8], 1.0, &mut rng);
        let loss = |xin: &Tensor| -> f32 {
            let (y, _) = moe.forward(xin);
            y.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
        };
        let (_, cache) = moe.forward(&x);
        let mut grads = moe.zero_grads();
        let dx = moe.backward(&w, &x, &cache, &mut grads);
        let eps = 5e-4;
        let mut checked = 0;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            // Skip probe points where the perturbation flips the routing
            // (the loss is only piecewise differentiable there).
            let (_, cp) = moe.forward(&xp);
            let (_, cm) = moe.forward(&xm);
            if cp.routes != cache.routes || cm.routes != cache.routes {
                continue;
            }
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 5e-2 * (1.0 + num.abs()),
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
            checked += 1;
        }
        assert!(
            checked > x.numel() / 2,
            "too few differentiable probes: {checked}"
        );
    }

    #[test]
    fn router_receives_gradient() {
        let mut rng = seeded_rng(63);
        let moe = MoeBlock::new(8, 3, &mut rng);
        let x = normal([6, 8], 1.0, &mut rng);
        let dy = normal([6, 8], 1.0, &mut rng);
        let (_, cache) = moe.forward(&x);
        let mut grads = moe.zero_grads();
        moe.backward(&dy, &x, &cache, &mut grads);
        assert!(grads.router.weight.l2_norm() > 0.0, "router must learn");
        // Only routed experts accumulate gradient.
        let util = moe.utilization(&cache);
        for (e, count) in util.iter().enumerate() {
            let norm = grads.experts[e].fc1.weight.l2_norm();
            if *count == 0 {
                assert_eq!(norm, 0.0, "unused expert {e} got gradient");
            } else {
                assert!(norm > 0.0, "used expert {e} got no gradient");
            }
        }
    }

    #[test]
    fn utilization_drives_graph_prefetch_bytes() {
        // Bridge to §III-B: the experts a batch actually touches bound the
        // state that must be prefetched under FetchAllCandidates.
        let mut rng = seeded_rng(64);
        let moe = MoeBlock::new(8, 4, &mut rng);
        let x = normal([32, 8], 1.0, &mut rng);
        let (_, cache) = moe.forward(&x);
        let util = moe.utilization(&cache);
        let touched = util.iter().filter(|c| **c > 0).count();
        assert!((1..=4).contains(&touched));
        let bytes_all: usize = moe.experts.iter().map(|e| e.param_count() * 4).sum();
        let bytes_touched: usize = util
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(e, _)| moe.experts[e].param_count() * 4)
            .sum();
        assert!(bytes_touched <= bytes_all);
    }
}
