//! The functional GPT model: embedding → N blocks → final LN → tied LM head.
//!
//! Exposes *layer-level* entry points (`embed`, `block_forward`,
//! `head_forward_loss`, `block_backward`, ...) because the STRONGHOLD runtime
//! drives execution one layer at a time — that is exactly the granularity at
//! which it offloads. A whole-model `train_step` convenience wraps the same
//! entry points for tests and examples.

use rand_chacha::ChaCha8Rng;
use stronghold_tensor::attention::KvCache;
use stronghold_tensor::embedding::{Embedding, EmbeddingGrads};
use stronghold_tensor::init::seeded_rng;
use stronghold_tensor::loss::cross_entropy;
use stronghold_tensor::matmul::{matmul_nt, matmul_nt_stable, matmul_tn_acc};
use stronghold_tensor::ops::{layernorm, layernorm_backward, layernorm_into, LayerNormCache};
use stronghold_tensor::Tensor;

use crate::block::{Block, BlockDecodeScratch, BlockGrads};
use crate::config::ModelConfig;

const LN_EPS: f32 = 1e-5;

/// A functional GPT-style transformer.
pub struct Transformer {
    /// Model configuration.
    pub cfg: ModelConfig,
    /// Token + positional embedding (layer 0; LM head weights are tied).
    pub embedding: Embedding,
    /// Transformer blocks (layers 1..=n).
    pub blocks: Vec<Block>,
    /// Final layernorm gain (part of the head layer).
    pub lnf_g: Tensor,
    /// Final layernorm bias.
    pub lnf_b: Tensor,
}

/// Gradients for a [`Transformer`], mirroring its structure.
pub struct TransformerGrads {
    /// Embedding gradients (receives both embedding-backward and tied
    /// LM-head contributions).
    pub embedding: EmbeddingGrads,
    /// Per-block gradients.
    pub blocks: Vec<BlockGrads>,
    /// Final layernorm gain gradient.
    pub lnf_g: Tensor,
    /// Final layernorm bias gradient.
    pub lnf_b: Tensor,
}

/// Cache produced by [`Transformer::head_forward_loss`], consumed by
/// [`Transformer::head_backward`].
pub struct HeadCache {
    lnf_out: Tensor,
    dlogits: Tensor,
    dg: Tensor,
    db: Tensor,
}

impl HeadCache {
    /// Returns the cache's tensors to the thread-local scratch pool so the
    /// next head pass reuses them instead of allocating.
    pub fn recycle(self) {
        stronghold_tensor::scratch::give(self.lnf_out);
        stronghold_tensor::scratch::give(self.dlogits);
        stronghold_tensor::scratch::give(self.dg);
        stronghold_tensor::scratch::give(self.db);
    }
}

/// Reusable workspace for [`Transformer::lm_logits_last_into`].
#[derive(Clone)]
pub struct HeadDecodeScratch {
    last_row: Tensor,
    lnf_out: Tensor,
    ln_cache: LayerNormCache,
}

impl HeadDecodeScratch {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        HeadDecodeScratch {
            last_row: Tensor::zeros([1]),
            lnf_out: Tensor::zeros([1]),
            ln_cache: LayerNormCache::default(),
        }
    }
}

impl Default for HeadDecodeScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl Transformer {
    /// Builds a model with deterministic initialization from `seed`.
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        let mut rng: ChaCha8Rng = seeded_rng(seed);
        let embedding = Embedding::new(cfg.vocab, cfg.seq, cfg.hidden, &mut rng);
        let blocks = (0..cfg.layers)
            .map(|_| Block::new(cfg.hidden, cfg.heads, &mut rng))
            .collect();
        Transformer {
            cfg,
            embedding,
            blocks,
            lnf_g: Tensor::full([cfg.hidden], 1.0),
            lnf_b: Tensor::zeros([cfg.hidden]),
        }
    }

    /// Total parameter count (matches `cfg.total_params()`).
    pub fn param_count(&self) -> u64 {
        self.embedding.param_count() as u64
            + self
                .blocks
                .iter()
                .map(|b| b.param_count() as u64)
                .sum::<u64>()
            + 2 * self.cfg.hidden as u64
    }

    /// Allocates zeroed gradients.
    pub fn zero_grads(&self) -> TransformerGrads {
        TransformerGrads {
            embedding: self.embedding.zero_grads(),
            blocks: self.blocks.iter().map(|b| b.zero_grads()).collect(),
            lnf_g: Tensor::zeros(*self.lnf_g.shape()),
            lnf_b: Tensor::zeros(*self.lnf_b.shape()),
        }
    }

    // ----- layer-level API (what the runtime schedules) -----

    /// Layer 0 forward: embeds one sample.
    pub fn embed(&self, tokens: &[u32]) -> Tensor {
        self.embedding.forward(tokens)
    }

    /// Block `i` forward without cache (checkpointed FP).
    pub fn block_forward(&self, i: usize, x: &Tensor) -> Tensor {
        self.blocks[i].forward_no_cache(x)
    }

    /// Head forward + loss + gradient w.r.t. the head input, for one sample.
    ///
    /// Returns `(mean CE loss, d_input, cache)`.
    pub fn head_forward_loss(&self, x: &Tensor, targets: &[u32]) -> (f32, Tensor, HeadCache) {
        let (lnf_out, lnf_cache) = layernorm(x, &self.lnf_g, &self.lnf_b, LN_EPS);
        // Tied LM head: logits = lnf_out · Wtokᵀ.
        let logits = matmul_nt(&lnf_out, &self.embedding.token);
        let (loss, dlogits) = cross_entropy(&logits, targets);
        // d_lnf_out = dlogits · Wtok.
        let d_lnf_out = stronghold_tensor::matmul::matmul(&dlogits, &self.embedding.token);
        // dx via the final layernorm; parameter grads applied in head_backward.
        let mut dg = Tensor::zeros(*self.lnf_g.shape());
        let mut db = Tensor::zeros(*self.lnf_b.shape());
        let dx = layernorm_backward(&d_lnf_out, x, &self.lnf_g, &lnf_cache, &mut dg, &mut db);
        (
            loss,
            dx,
            HeadCache {
                lnf_out,
                dlogits,
                dg,
                db,
            },
        )
    }

    /// Head backward: accumulates the tied-LM-head and final-LN gradients.
    pub fn head_backward(&self, cache: &HeadCache, grads: &mut TransformerGrads) {
        // dWtok += dlogitsᵀ · lnf_out.
        matmul_tn_acc(&cache.dlogits, &cache.lnf_out, &mut grads.embedding.token);
        use stronghold_tensor::ops::add_assign;
        add_assign(&mut grads.lnf_g, &cache.dg);
        add_assign(&mut grads.lnf_b, &cache.db);
    }

    /// Block `i` backward with recompute-from-checkpoint. `x` is the block's
    /// saved input; returns `dx`. The recomputed activations are returned to
    /// the scratch pool on the way out.
    pub fn block_backward(
        &self,
        i: usize,
        dy: &Tensor,
        x: &Tensor,
        grads: &mut BlockGrads,
    ) -> Tensor {
        let (y, cache) = self.blocks[i].forward(x); // recompute (checkpointing)
        stronghold_tensor::scratch::give(y);
        let dx = self.blocks[i].backward(dy, x, &cache, grads);
        cache.recycle();
        dx
    }

    /// Layer 0 backward: scatter-add into the embedding tables.
    pub fn embed_backward(&self, dy: &Tensor, tokens: &[u32], grads: &mut TransformerGrads) {
        self.embedding.backward(dy, tokens, &mut grads.embedding);
    }

    // ----- serving (incremental decode) API -----

    /// Embeds a token run starting at absolute position `pos0` into a
    /// reusable output (serving: decode steps and mid-sequence prefill).
    pub fn embed_at_into(&self, tokens: &[u32], pos0: usize, out: &mut Tensor) {
        self.embedding.forward_at_into(tokens, pos0, out);
    }

    /// Block `i` incremental forward against a sequence's KV cache
    /// (serving). See [`Block::forward_decode`] for the bit contract.
    pub fn block_forward_decode(
        &self,
        i: usize,
        x: &Tensor,
        cache: &mut KvCache,
        ws: &mut BlockDecodeScratch,
        y: &mut Tensor,
    ) {
        self.blocks[i].forward_decode(x, cache, ws, y);
    }

    /// Final layernorm + tied LM head for the *last* row of `x` only:
    /// writes `[1, vocab]` logits into `logits`. Layernorm is per-row and
    /// the head product is batch-stable, so the result is bit-identical
    /// whether the row arrived via prefill or single-token decode.
    pub fn lm_logits_last_into(&self, x: &Tensor, ws: &mut HeadDecodeScratch, logits: &mut Tensor) {
        let (t, h) = x.shape().as_2d();
        assert!(t > 0, "lm_logits_last_into: empty input");
        ws.last_row.reset_for([1, h]);
        ws.last_row
            .data_mut()
            .copy_from_slice(&x.data()[(t - 1) * h..t * h]);
        layernorm_into(
            &ws.last_row,
            &self.lnf_g,
            &self.lnf_b,
            LN_EPS,
            &mut ws.lnf_out,
            &mut ws.ln_cache,
        );
        let v = self.embedding.vocab();
        logits.reset_for([1, v]);
        matmul_nt_stable(
            ws.lnf_out.data(),
            self.embedding.token.data(),
            logits.data_mut(),
            1,
            h,
            v,
        );
    }

    // ----- whole-model convenience -----

    /// Forward+backward for one sample; returns the loss. Gradients (scaled
    /// by `grad_scale`, e.g. `1/batch`) accumulate into `grads`. The head's
    /// LN gradients are folded in here.
    pub fn forward_backward_sample(
        &self,
        tokens: &[u32],
        targets: &[u32],
        grads: &mut TransformerGrads,
        grad_scale: f32,
    ) -> f32 {
        let mut scratch = self.zero_grads();
        self.forward_backward_sample_with(tokens, targets, &mut scratch, grads, grad_scale)
    }

    /// [`Transformer::forward_backward_sample`] with a caller-owned per-sample
    /// gradient scratch (zeroed here), so a training loop can reuse one
    /// scratch across every sample of every step instead of allocating a
    /// whole model's worth of gradients per sample. Zeroing a reused buffer
    /// and allocating a fresh zeroed one produce the same FP op sequence, so
    /// results are bit-identical to the convenience wrapper.
    pub fn forward_backward_sample_with(
        &self,
        tokens: &[u32],
        targets: &[u32],
        scratch: &mut TransformerGrads,
        grads: &mut TransformerGrads,
        grad_scale: f32,
    ) -> f32 {
        use stronghold_tensor::scratch as pool;
        scratch.zero_();
        let n = self.blocks.len();
        // FP with layer-wise checkpointing: each block's input tensor is
        // *moved* into the checkpoint list (the block writes a fresh pooled
        // tensor), never cloned.
        let mut inputs: Vec<Tensor> = Vec::with_capacity(n);
        let mut x = self.embed(tokens);
        for i in 0..n {
            let next = self.block_forward(i, &x);
            inputs.push(std::mem::replace(&mut x, next));
        }

        let (loss, mut dy, head_cache) = self.head_forward_loss(&x, targets);
        pool::give(x); // head input is done
        self.head_backward(&head_cache, scratch);
        head_cache.recycle();
        for i in (0..n).rev() {
            let dxs = self.block_backward(i, &dy, &inputs[i], &mut scratch.blocks[i]);
            pool::give(std::mem::replace(&mut dy, dxs));
        }
        self.embed_backward(&dy, tokens, scratch);
        pool::give(dy);
        for t in inputs {
            pool::give(t);
        }
        grads.accumulate_scaled(scratch, grad_scale);
        loss
    }

    /// Forward-only loss (inference / knowledge distillation FP).
    pub fn forward_loss(&self, tokens: &[u32], targets: &[u32]) -> f32 {
        let mut x = self.embed(tokens);
        for i in 0..self.blocks.len() {
            x = self.block_forward(i, &x);
        }
        let (lnf_out, _) = layernorm(&x, &self.lnf_g, &self.lnf_b, LN_EPS);
        let logits = matmul_nt(&lnf_out, &self.embedding.token);
        cross_entropy(&logits, targets).0
    }

    /// Per-layer hidden states (used for knowledge distillation, §VI-D3).
    pub fn forward_hidden_states(&self, tokens: &[u32]) -> Vec<Tensor> {
        let mut states = Vec::with_capacity(self.blocks.len() + 1);
        let mut x = self.embed(tokens);
        states.push(x.clone());
        for i in 0..self.blocks.len() {
            x = self.block_forward(i, &x);
            states.push(x.clone());
        }
        states
    }
}

impl TransformerGrads {
    /// Zeroes every gradient tensor.
    pub fn zero_(&mut self) {
        self.embedding.zero_();
        for b in &mut self.blocks {
            b.zero_();
        }
        self.lnf_g.zero_();
        self.lnf_b.zero_();
    }

    /// `self += scale * other`.
    pub fn accumulate_scaled(&mut self, other: &TransformerGrads, scale: f32) {
        use stronghold_tensor::ops::axpy;
        axpy(&mut self.embedding.token, scale, &other.embedding.token);
        axpy(
            &mut self.embedding.position,
            scale,
            &other.embedding.position,
        );
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            a.accumulate_scaled(b, scale);
        }
        axpy(&mut self.lnf_g, scale, &other.lnf_g);
        axpy(&mut self.lnf_b, scale, &other.lnf_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tiny;

    #[test]
    fn param_count_matches_config() {
        let cfg = tiny(3);
        let m = Transformer::new(cfg, 1);
        assert_eq!(m.param_count(), cfg.total_params());
    }

    #[test]
    fn forward_loss_is_near_log_vocab_at_init() {
        let cfg = tiny(2);
        let m = Transformer::new(cfg, 2);
        let tokens: Vec<u32> = (0..cfg.seq as u32).map(|i| i % cfg.vocab as u32).collect();
        let loss = m.forward_loss(&tokens[..cfg.seq - 1], &tokens[1..]);
        let expect = (cfg.vocab as f32).ln();
        assert!((loss - expect).abs() < 1.0, "loss {loss} vs ln(V) {expect}");
    }

    #[test]
    fn training_reduces_loss() {
        let cfg = tiny(2);
        let mut m = Transformer::new(cfg, 3);
        // A highly regular sequence the model should memorize quickly.
        let tokens: Vec<u32> = (0..cfg.seq as u32).map(|i| (i % 4) * 7).collect();
        let inputs = &tokens[..cfg.seq - 1];
        let targets = &tokens[1..];
        let initial = m.forward_loss(inputs, targets);
        let lr = 0.05;
        for _ in 0..30 {
            let mut grads = m.zero_grads();
            m.forward_backward_sample(inputs, targets, &mut grads, 1.0);
            sgd_step(&mut m, &grads, lr);
        }
        let fin = m.forward_loss(inputs, targets);
        assert!(fin < initial * 0.6, "loss did not drop: {initial} -> {fin}");
    }

    #[test]
    fn hidden_states_count() {
        let cfg = tiny(3);
        let m = Transformer::new(cfg, 4);
        let tokens: Vec<u32> = vec![1; 8];
        let hs = m.forward_hidden_states(&tokens);
        assert_eq!(hs.len(), 4); // embedding output + 3 blocks
    }

    /// Plain SGD used only by tests (Adam lives in stronghold-core).
    fn sgd_step(m: &mut Transformer, grads: &TransformerGrads, lr: f32) {
        use stronghold_tensor::ops::axpy;
        axpy(&mut m.embedding.token, -lr, &grads.embedding.token);
        axpy(&mut m.embedding.position, -lr, &grads.embedding.position);
        for (b, g) in m.blocks.iter_mut().zip(grads.blocks.iter()) {
            b.visit_params_mut(g, |p, gp| axpy(p, -lr, gp));
        }
        axpy(&mut m.lnf_g, -lr, &grads.lnf_g);
        axpy(&mut m.lnf_b, -lr, &grads.lnf_b);
    }

    #[test]
    fn gradient_determinism() {
        let cfg = tiny(2);
        let m = Transformer::new(cfg, 5);
        let tokens: Vec<u32> = (0..15).map(|i| i % 9).collect();
        let mut g1 = m.zero_grads();
        let l1 = m.forward_backward_sample(&tokens, &tokens, &mut g1, 1.0);
        let mut g2 = m.zero_grads();
        let l2 = m.forward_backward_sample(&tokens, &tokens, &mut g2, 1.0);
        assert_eq!(l1, l2);
        assert_eq!(g1.blocks[0].flatten(), g2.blocks[0].flatten());
        assert_eq!(g1.embedding.token, g2.embedding.token);
    }
}
