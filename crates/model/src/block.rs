//! Functional transformer block (pre-norm GPT-2 style) with explicit
//! forward/backward and optional activation checkpointing.

use rand_chacha::ChaCha8Rng;
use stronghold_tensor::attention::{
    Attention, AttentionCache, AttentionGrads, DecodeScratch, KvCache,
};
use stronghold_tensor::linear::{Linear, LinearGrads};
use stronghold_tensor::ops::{
    add, add_assign, axpy, gelu, gelu_backward, gelu_into, layernorm, layernorm_backward,
    layernorm_into, LayerNormCache,
};
use stronghold_tensor::scratch;
use stronghold_tensor::Tensor;

/// Parameters of one pre-norm transformer block:
/// `y = x + Attn(LN1(x)); z = y + W2·GELU(W1·LN2(y))`.
#[derive(Clone, Debug)]
pub struct Block {
    /// First layernorm gain.
    pub ln1_g: Tensor,
    /// First layernorm bias.
    pub ln1_b: Tensor,
    /// Self-attention.
    pub attn: Attention,
    /// Second layernorm gain.
    pub ln2_g: Tensor,
    /// Second layernorm bias.
    pub ln2_b: Tensor,
    /// MLP up-projection `[4H, H]`.
    pub fc1: Linear,
    /// MLP down-projection `[H, 4H]`.
    pub fc2: Linear,
}

/// Saved activations for one block's backward pass on one sample.
pub struct BlockCache {
    ln1_out: Tensor,
    ln1_cache: LayerNormCache,
    attn_cache: AttentionCache,
    after_attn: Tensor,
    ln2_out: Tensor,
    ln2_cache: LayerNormCache,
    fc1_out: Tensor,
    gelu_out: Tensor,
}

impl BlockCache {
    /// Returns every cached activation's allocation to the thread-local
    /// scratch pool. Trainers call this after a block's backward pass so
    /// the next sample's forward reuses the buffers instead of allocating.
    pub fn recycle(self) {
        scratch::give(self.ln1_out);
        self.attn_cache.recycle();
        scratch::give(self.after_attn);
        scratch::give(self.ln2_out);
        scratch::give(self.fc1_out);
        scratch::give(self.gelu_out);
    }
}

/// Reusable per-sequence workspace for [`Block::forward_decode`]: every
/// intermediate activation of the serving path, sized on first use and
/// recycled across decode steps so the steady state never allocates.
#[derive(Clone)]
pub struct BlockDecodeScratch {
    ln1_out: Tensor,
    ln_cache: LayerNormCache,
    attn: DecodeScratch,
    attn_out: Tensor,
    fc1_out: Tensor,
    gelu_out: Tensor,
}

impl BlockDecodeScratch {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        BlockDecodeScratch {
            ln1_out: Tensor::zeros([1]),
            ln_cache: LayerNormCache::default(),
            attn: DecodeScratch::new(),
            attn_out: Tensor::zeros([1]),
            fc1_out: Tensor::zeros([1]),
            gelu_out: Tensor::zeros([1]),
        }
    }
}

impl Default for BlockDecodeScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Gradients of one [`Block`].
#[derive(Clone, Debug)]
pub struct BlockGrads {
    /// LN1 gain gradient.
    pub ln1_g: Tensor,
    /// LN1 bias gradient.
    pub ln1_b: Tensor,
    /// Attention gradients.
    pub attn: AttentionGrads,
    /// LN2 gain gradient.
    pub ln2_g: Tensor,
    /// LN2 bias gradient.
    pub ln2_b: Tensor,
    /// MLP up-projection gradients.
    pub fc1: LinearGrads,
    /// MLP down-projection gradients.
    pub fc2: LinearGrads,
}

const LN_EPS: f32 = 1e-5;

impl Block {
    /// Creates a block for hidden size `hidden` with `heads` attention heads.
    pub fn new(hidden: usize, heads: usize, rng: &mut ChaCha8Rng) -> Self {
        Block {
            ln1_g: Tensor::full([hidden], 1.0),
            ln1_b: Tensor::zeros([hidden]),
            attn: Attention::new(hidden, heads, rng),
            ln2_g: Tensor::full([hidden], 1.0),
            ln2_b: Tensor::zeros([hidden]),
            fc1: Linear::new(4 * hidden, hidden, rng),
            fc2: Linear::new(hidden, 4 * hidden, rng),
        }
    }

    /// Total parameter count; equals `12·h² + 13·h`.
    pub fn param_count(&self) -> usize {
        self.ln1_g.numel()
            + self.ln1_b.numel()
            + self.attn.param_count()
            + self.ln2_g.numel()
            + self.ln2_b.numel()
            + self.fc1.param_count()
            + self.fc2.param_count()
    }

    /// Forward for one sample `x: [T, H]`, returning the output and the full
    /// activation cache.
    pub fn forward(&self, x: &Tensor) -> (Tensor, BlockCache) {
        let (ln1_out, ln1_cache) = layernorm(x, &self.ln1_g, &self.ln1_b, LN_EPS);
        let (attn_out, attn_cache) = self.attn.forward(&ln1_out);
        let after_attn = add(x, &attn_out);
        scratch::give(attn_out);
        let (ln2_out, ln2_cache) = layernorm(&after_attn, &self.ln2_g, &self.ln2_b, LN_EPS);
        let fc1_out = self.fc1.forward(&ln2_out);
        let gelu_out = gelu(&fc1_out);
        let mlp_out = self.fc2.forward(&gelu_out);
        let y = add(&after_attn, &mlp_out);
        scratch::give(mlp_out);
        (
            y,
            BlockCache {
                ln1_out,
                ln1_cache,
                attn_cache,
                after_attn,
                ln2_out,
                ln2_cache,
                fc1_out,
                gelu_out,
            },
        )
    }

    /// Forward pass that discards intermediate activations (checkpointed FP:
    /// only the block *input* is retained by the caller). The discarded
    /// activations go back to the thread-local scratch pool, so repeated
    /// recompute passes (the offloaded trainer's BP loop) do not allocate.
    pub fn forward_no_cache(&self, x: &Tensor) -> Tensor {
        let (y, cache) = self.forward(x);
        cache.recycle();
        y
    }

    /// Incremental forward for serving: runs `R` new tokens `x: [R, H]` of
    /// one sequence through the block, reading and extending the sequence's
    /// per-layer [`KvCache`]. All products go through the batch-stable GEMM
    /// entries and the attention softmax covers exactly the causal prefix,
    /// so one token's output bits are independent of how many tokens ride
    /// the call — prefill and token-at-a-time decode agree bit-for-bit.
    /// Writes the block output into `y` (reused across calls).
    pub fn forward_decode(
        &self,
        x: &Tensor,
        cache: &mut KvCache,
        ws: &mut BlockDecodeScratch,
        y: &mut Tensor,
    ) {
        layernorm_into(
            x,
            &self.ln1_g,
            &self.ln1_b,
            LN_EPS,
            &mut ws.ln1_out,
            &mut ws.ln_cache,
        );
        self.attn
            .forward_decode(&ws.ln1_out, cache, &mut ws.attn, &mut ws.attn_out);
        // after_attn = x + attn_out, reusing the attention output buffer.
        add_assign(&mut ws.attn_out, x);
        layernorm_into(
            &ws.attn_out,
            &self.ln2_g,
            &self.ln2_b,
            LN_EPS,
            &mut ws.ln1_out,
            &mut ws.ln_cache,
        );
        self.fc1.forward_stable_into(&ws.ln1_out, &mut ws.fc1_out);
        gelu_into(&ws.fc1_out, &mut ws.gelu_out);
        self.fc2.forward_stable_into(&ws.gelu_out, y);
        add_assign(y, &ws.attn_out);
    }

    /// Backward for one sample given upstream `dy`, the block input `x` and
    /// a cache (recompute it with [`Block::forward`] when checkpointing).
    /// Returns `dx`; parameter gradients accumulate into `grads`.
    pub fn backward(
        &self,
        dy: &Tensor,
        x: &Tensor,
        cache: &BlockCache,
        grads: &mut BlockGrads,
    ) -> Tensor {
        // z = after_attn + mlp_out: gradient flows to both summands.
        let mut d_after_attn = scratch::take_copy(dy);
        // Through MLP.
        let d_gelu_out = self.fc2.backward(dy, &cache.gelu_out, &mut grads.fc2);
        let d_fc1_out = gelu_backward(&d_gelu_out, &cache.fc1_out);
        scratch::give(d_gelu_out);
        let d_ln2_out = self
            .fc1
            .backward(&d_fc1_out, &cache.ln2_out, &mut grads.fc1);
        scratch::give(d_fc1_out);
        let d_after_attn_ln = layernorm_backward(
            &d_ln2_out,
            &cache.after_attn,
            &self.ln2_g,
            &cache.ln2_cache,
            &mut grads.ln2_g,
            &mut grads.ln2_b,
        );
        scratch::give(d_ln2_out);
        add_assign(&mut d_after_attn, &d_after_attn_ln);
        scratch::give(d_after_attn_ln);

        // after_attn = x + attn_out.
        let mut dx = scratch::take_copy(&d_after_attn);
        let d_ln1_out = self.attn.backward(
            &d_after_attn,
            &cache.ln1_out,
            &cache.attn_cache,
            &mut grads.attn,
        );
        scratch::give(d_after_attn);
        let dx_ln = layernorm_backward(
            &d_ln1_out,
            x,
            &self.ln1_g,
            &cache.ln1_cache,
            &mut grads.ln1_g,
            &mut grads.ln1_b,
        );
        scratch::give(d_ln1_out);
        add_assign(&mut dx, &dx_ln);
        scratch::give(dx_ln);
        dx
    }

    /// Allocates zeroed gradients.
    pub fn zero_grads(&self) -> BlockGrads {
        BlockGrads {
            ln1_g: Tensor::zeros(*self.ln1_g.shape()),
            ln1_b: Tensor::zeros(*self.ln1_b.shape()),
            attn: self.attn.zero_grads(),
            ln2_g: Tensor::zeros(*self.ln2_g.shape()),
            ln2_b: Tensor::zeros(*self.ln2_b.shape()),
            fc1: self.fc1.zero_grads(),
            fc2: self.fc2.zero_grads(),
        }
    }

    /// Visits every parameter tensor alongside its gradient, in a fixed
    /// canonical order (used by the optimizer and by flatten/unflatten).
    pub fn visit_params_mut<'a>(
        &'a mut self,
        grads: &'a BlockGrads,
        mut f: impl FnMut(&mut Tensor, &Tensor),
    ) {
        f(&mut self.ln1_g, &grads.ln1_g);
        f(&mut self.ln1_b, &grads.ln1_b);
        f(&mut self.attn.qkv.weight, &grads.attn.qkv.weight);
        f(&mut self.attn.qkv.bias, &grads.attn.qkv.bias);
        f(&mut self.attn.proj.weight, &grads.attn.proj.weight);
        f(&mut self.attn.proj.bias, &grads.attn.proj.bias);
        f(&mut self.ln2_g, &grads.ln2_g);
        f(&mut self.ln2_b, &grads.ln2_b);
        f(&mut self.fc1.weight, &grads.fc1.weight);
        f(&mut self.fc1.bias, &grads.fc1.bias);
        f(&mut self.fc2.weight, &grads.fc2.weight);
        f(&mut self.fc2.bias, &grads.fc2.bias);
    }

    /// Flattens all parameters into a single vector (canonical order).
    pub fn flatten_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.flatten_params_into(&mut out);
        out
    }

    /// Flattens all parameters into a reusable vector (canonical order),
    /// clearing it first. Steady-state callers (the prefetcher's H2D
    /// staging path) reuse one vector across steps and never reallocate.
    pub fn flatten_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.param_count());
        for t in self.param_tensors() {
            out.extend_from_slice(t.data());
        }
    }

    /// All parameter tensors in canonical order.
    pub fn param_tensors(&self) -> [&Tensor; 12] {
        [
            &self.ln1_g,
            &self.ln1_b,
            &self.attn.qkv.weight,
            &self.attn.qkv.bias,
            &self.attn.proj.weight,
            &self.attn.proj.bias,
            &self.ln2_g,
            &self.ln2_b,
            &self.fc1.weight,
            &self.fc1.bias,
            &self.fc2.weight,
            &self.fc2.bias,
        ]
    }

    /// All parameter tensors in canonical order, mutably.
    fn param_tensors_mut(&mut self) -> [&mut Tensor; 12] {
        [
            &mut self.ln1_g,
            &mut self.ln1_b,
            &mut self.attn.qkv.weight,
            &mut self.attn.qkv.bias,
            &mut self.attn.proj.weight,
            &mut self.attn.proj.bias,
            &mut self.ln2_g,
            &mut self.ln2_b,
            &mut self.fc1.weight,
            &mut self.fc1.bias,
            &mut self.fc2.weight,
            &mut self.fc2.bias,
        ]
    }

    /// Overwrites all parameters from a flat vector in canonical order.
    ///
    /// # Panics
    /// Panics if `flat.len() != self.param_count()`.
    pub fn load_flat_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count());
        let mut off = 0;
        for p in self.param_tensors_mut() {
            let n = p.numel();
            p.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        }
    }
}

impl BlockGrads {
    /// Resets all gradients to zero.
    pub fn zero_(&mut self) {
        self.ln1_g.zero_();
        self.ln1_b.zero_();
        self.attn.zero_();
        self.ln2_g.zero_();
        self.ln2_b.zero_();
        self.fc1.zero_();
        self.fc2.zero_();
    }

    /// All gradient tensors in canonical order.
    fn tensors(&self) -> [&Tensor; 12] {
        [
            &self.ln1_g,
            &self.ln1_b,
            &self.attn.qkv.weight,
            &self.attn.qkv.bias,
            &self.attn.proj.weight,
            &self.attn.proj.bias,
            &self.ln2_g,
            &self.ln2_b,
            &self.fc1.weight,
            &self.fc1.bias,
            &self.fc2.weight,
            &self.fc2.bias,
        ]
    }

    /// Flattens all gradients into a single vector (canonical order).
    pub fn flatten(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.flatten_into(&mut out);
        out
    }

    /// Flattens all gradients into a reusable vector (canonical order),
    /// clearing it first. The offloaded trainer's D2H/optimizer path calls
    /// this once per layer per step into one persistent buffer.
    pub fn flatten_into(&self, out: &mut Vec<f32>) {
        out.clear();
        for t in self.tensors() {
            out.extend_from_slice(t.data());
        }
    }

    /// `self += scale * other`, tensor by tensor in canonical order. Both
    /// the resident and the offloaded trainers accumulate per-sample
    /// gradients through this one routine, so their floating-point op
    /// sequences are identical — the basis of the bit-exact equivalence
    /// tests. (The vectorized [`axpy`] evaluates `a + scale * b` with the
    /// same two-rounding sequence as the scalar loop it replaced.)
    pub fn accumulate_scaled(&mut self, other: &BlockGrads, scale: f32) {
        axpy(&mut self.ln1_g, scale, &other.ln1_g);
        axpy(&mut self.ln1_b, scale, &other.ln1_b);
        axpy(&mut self.attn.qkv.weight, scale, &other.attn.qkv.weight);
        axpy(&mut self.attn.qkv.bias, scale, &other.attn.qkv.bias);
        axpy(&mut self.attn.proj.weight, scale, &other.attn.proj.weight);
        axpy(&mut self.attn.proj.bias, scale, &other.attn.proj.bias);
        axpy(&mut self.ln2_g, scale, &other.ln2_g);
        axpy(&mut self.ln2_b, scale, &other.ln2_b);
        axpy(&mut self.fc1.weight, scale, &other.fc1.weight);
        axpy(&mut self.fc1.bias, scale, &other.fc1.bias);
        axpy(&mut self.fc2.weight, scale, &other.fc2.weight);
        axpy(&mut self.fc2.bias, scale, &other.fc2.bias);
    }

    /// Adds another gradient set element-wise (micro-batch accumulation).
    pub fn accumulate(&mut self, other: &BlockGrads) {
        add_assign(&mut self.ln1_g, &other.ln1_g);
        add_assign(&mut self.ln1_b, &other.ln1_b);
        add_assign(&mut self.attn.qkv.weight, &other.attn.qkv.weight);
        add_assign(&mut self.attn.qkv.bias, &other.attn.qkv.bias);
        add_assign(&mut self.attn.proj.weight, &other.attn.proj.weight);
        add_assign(&mut self.attn.proj.bias, &other.attn.proj.bias);
        add_assign(&mut self.ln2_g, &other.ln2_g);
        add_assign(&mut self.ln2_b, &other.ln2_b);
        add_assign(&mut self.fc1.weight, &other.fc1.weight);
        add_assign(&mut self.fc1.bias, &other.fc1.bias);
        add_assign(&mut self.fc2.weight, &other.fc2.weight);
        add_assign(&mut self.fc2.bias, &other.fc2.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_tensor::init::{normal, seeded_rng};

    #[test]
    fn param_count_formula() {
        let b = Block::new(32, 4, &mut seeded_rng(70));
        assert_eq!(b.param_count(), 12 * 32 * 32 + 13 * 32);
    }

    #[test]
    fn forward_shapes() {
        let b = Block::new(16, 2, &mut seeded_rng(71));
        let x = normal([6, 16], 1.0, &mut seeded_rng(72));
        let (y, _) = b.forward(&x);
        assert_eq!(y.shape().dims(), &[6, 16]);
        assert!(y.all_finite());
    }

    #[test]
    fn recompute_matches_cached_forward() {
        let b = Block::new(16, 2, &mut seeded_rng(73));
        let x = normal([5, 16], 1.0, &mut seeded_rng(74));
        let (y1, _) = b.forward(&x);
        let y2 = b.forward_no_cache(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn gradient_check_through_block() {
        let mut rng = seeded_rng(75);
        let b = Block::new(8, 2, &mut rng);
        let x = normal([3, 8], 0.5, &mut rng);
        let w = normal([3, 8], 1.0, &mut rng);
        let loss = |xin: &Tensor| -> f32 {
            let (y, _) = b.forward(xin);
            y.data()
                .iter()
                .zip(w.data().iter())
                .map(|(a, c)| a * c)
                .sum()
        };
        let (_, cache) = b.forward(&x);
        let mut grads = b.zero_grads();
        let dx = b.backward(&w, &x, &cache, &mut grads);
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 5e-2 * (1.0 + num.abs()),
                "dx[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn flatten_load_round_trip() {
        let mut rng = seeded_rng(76);
        let b1 = Block::new(16, 2, &mut rng);
        let flat = b1.flatten_params();
        assert_eq!(flat.len(), b1.param_count());
        let mut b2 = Block::new(16, 2, &mut seeded_rng(999));
        b2.load_flat_params(&flat);
        assert_eq!(b2.flatten_params(), flat);
        // Same forward result.
        let x = normal([4, 16], 1.0, &mut rng);
        assert_eq!(b1.forward_no_cache(&x), b2.forward_no_cache(&x));
    }

    #[test]
    fn grads_accumulate() {
        let mut rng = seeded_rng(77);
        let b = Block::new(8, 2, &mut rng);
        let x = normal([3, 8], 1.0, &mut rng);
        let dy = normal([3, 8], 1.0, &mut rng);
        let (_, cache) = b.forward(&x);
        let mut g1 = b.zero_grads();
        b.backward(&dy, &x, &cache, &mut g1);
        let mut g2 = b.zero_grads();
        g2.accumulate(&g1);
        g2.accumulate(&g1);
        let f1 = g1.flatten();
        let f2 = g2.flatten();
        for (a, b) in f2.iter().zip(f1.iter()) {
            assert!((a - 2.0 * b).abs() < 1e-5);
        }
    }
}
