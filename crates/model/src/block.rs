//! Functional transformer block (pre-norm GPT-2 style) with explicit
//! forward/backward and optional activation checkpointing.

use rand_chacha::ChaCha8Rng;
use stronghold_tensor::attention::{Attention, AttentionCache, AttentionGrads};
use stronghold_tensor::linear::{Linear, LinearGrads};
use stronghold_tensor::ops::{
    add, add_assign, gelu, gelu_backward, layernorm, layernorm_backward, LayerNormCache,
};
use stronghold_tensor::Tensor;

/// Parameters of one pre-norm transformer block:
/// `y = x + Attn(LN1(x)); z = y + W2·GELU(W1·LN2(y))`.
#[derive(Clone, Debug)]
pub struct Block {
    /// First layernorm gain.
    pub ln1_g: Tensor,
    /// First layernorm bias.
    pub ln1_b: Tensor,
    /// Self-attention.
    pub attn: Attention,
    /// Second layernorm gain.
    pub ln2_g: Tensor,
    /// Second layernorm bias.
    pub ln2_b: Tensor,
    /// MLP up-projection `[4H, H]`.
    pub fc1: Linear,
    /// MLP down-projection `[H, 4H]`.
    pub fc2: Linear,
}

/// Saved activations for one block's backward pass on one sample.
pub struct BlockCache {
    ln1_out: Tensor,
    ln1_cache: LayerNormCache,
    attn_cache: AttentionCache,
    after_attn: Tensor,
    ln2_out: Tensor,
    ln2_cache: LayerNormCache,
    fc1_out: Tensor,
    gelu_out: Tensor,
}

/// Gradients of one [`Block`].
#[derive(Clone, Debug)]
pub struct BlockGrads {
    /// LN1 gain gradient.
    pub ln1_g: Tensor,
    /// LN1 bias gradient.
    pub ln1_b: Tensor,
    /// Attention gradients.
    pub attn: AttentionGrads,
    /// LN2 gain gradient.
    pub ln2_g: Tensor,
    /// LN2 bias gradient.
    pub ln2_b: Tensor,
    /// MLP up-projection gradients.
    pub fc1: LinearGrads,
    /// MLP down-projection gradients.
    pub fc2: LinearGrads,
}

const LN_EPS: f32 = 1e-5;

impl Block {
    /// Creates a block for hidden size `hidden` with `heads` attention heads.
    pub fn new(hidden: usize, heads: usize, rng: &mut ChaCha8Rng) -> Self {
        Block {
            ln1_g: Tensor::full([hidden], 1.0),
            ln1_b: Tensor::zeros([hidden]),
            attn: Attention::new(hidden, heads, rng),
            ln2_g: Tensor::full([hidden], 1.0),
            ln2_b: Tensor::zeros([hidden]),
            fc1: Linear::new(4 * hidden, hidden, rng),
            fc2: Linear::new(hidden, 4 * hidden, rng),
        }
    }

    /// Total parameter count; equals `12·h² + 13·h`.
    pub fn param_count(&self) -> usize {
        self.ln1_g.numel()
            + self.ln1_b.numel()
            + self.attn.param_count()
            + self.ln2_g.numel()
            + self.ln2_b.numel()
            + self.fc1.param_count()
            + self.fc2.param_count()
    }

    /// Forward for one sample `x: [T, H]`, returning the output and the full
    /// activation cache.
    pub fn forward(&self, x: &Tensor) -> (Tensor, BlockCache) {
        let (ln1_out, ln1_cache) = layernorm(x, &self.ln1_g, &self.ln1_b, LN_EPS);
        let (attn_out, attn_cache) = self.attn.forward(&ln1_out);
        let after_attn = add(x, &attn_out);
        let (ln2_out, ln2_cache) = layernorm(&after_attn, &self.ln2_g, &self.ln2_b, LN_EPS);
        let fc1_out = self.fc1.forward(&ln2_out);
        let gelu_out = gelu(&fc1_out);
        let mlp_out = self.fc2.forward(&gelu_out);
        let y = add(&after_attn, &mlp_out);
        (
            y,
            BlockCache {
                ln1_out,
                ln1_cache,
                attn_cache,
                after_attn,
                ln2_out,
                ln2_cache,
                fc1_out,
                gelu_out,
            },
        )
    }

    /// Forward pass that discards intermediate activations (checkpointed FP:
    /// only the block *input* is retained by the caller).
    pub fn forward_no_cache(&self, x: &Tensor) -> Tensor {
        self.forward(x).0
    }

    /// Backward for one sample given upstream `dy`, the block input `x` and
    /// a cache (recompute it with [`Block::forward`] when checkpointing).
    /// Returns `dx`; parameter gradients accumulate into `grads`.
    pub fn backward(
        &self,
        dy: &Tensor,
        x: &Tensor,
        cache: &BlockCache,
        grads: &mut BlockGrads,
    ) -> Tensor {
        // z = after_attn + mlp_out: gradient flows to both summands.
        let mut d_after_attn = dy.clone();
        // Through MLP.
        let d_gelu_out = self.fc2.backward(dy, &cache.gelu_out, &mut grads.fc2);
        let d_fc1_out = gelu_backward(&d_gelu_out, &cache.fc1_out);
        let d_ln2_out = self
            .fc1
            .backward(&d_fc1_out, &cache.ln2_out, &mut grads.fc1);
        let d_after_attn_ln = layernorm_backward(
            &d_ln2_out,
            &cache.after_attn,
            &self.ln2_g,
            &cache.ln2_cache,
            &mut grads.ln2_g,
            &mut grads.ln2_b,
        );
        add_assign(&mut d_after_attn, &d_after_attn_ln);

        // after_attn = x + attn_out.
        let mut dx = d_after_attn.clone();
        let d_ln1_out = self.attn.backward(
            &d_after_attn,
            &cache.ln1_out,
            &cache.attn_cache,
            &mut grads.attn,
        );
        let dx_ln = layernorm_backward(
            &d_ln1_out,
            x,
            &self.ln1_g,
            &cache.ln1_cache,
            &mut grads.ln1_g,
            &mut grads.ln1_b,
        );
        add_assign(&mut dx, &dx_ln);
        dx
    }

    /// Allocates zeroed gradients.
    pub fn zero_grads(&self) -> BlockGrads {
        BlockGrads {
            ln1_g: Tensor::zeros(*self.ln1_g.shape()),
            ln1_b: Tensor::zeros(*self.ln1_b.shape()),
            attn: self.attn.zero_grads(),
            ln2_g: Tensor::zeros(*self.ln2_g.shape()),
            ln2_b: Tensor::zeros(*self.ln2_b.shape()),
            fc1: self.fc1.zero_grads(),
            fc2: self.fc2.zero_grads(),
        }
    }

    /// Visits every parameter tensor alongside its gradient, in a fixed
    /// canonical order (used by the optimizer and by flatten/unflatten).
    pub fn visit_params_mut<'a>(
        &'a mut self,
        grads: &'a BlockGrads,
        mut f: impl FnMut(&mut Tensor, &Tensor),
    ) {
        f(&mut self.ln1_g, &grads.ln1_g);
        f(&mut self.ln1_b, &grads.ln1_b);
        f(&mut self.attn.qkv.weight, &grads.attn.qkv.weight);
        f(&mut self.attn.qkv.bias, &grads.attn.qkv.bias);
        f(&mut self.attn.proj.weight, &grads.attn.proj.weight);
        f(&mut self.attn.proj.bias, &grads.attn.proj.bias);
        f(&mut self.ln2_g, &grads.ln2_g);
        f(&mut self.ln2_b, &grads.ln2_b);
        f(&mut self.fc1.weight, &grads.fc1.weight);
        f(&mut self.fc1.bias, &grads.fc1.bias);
        f(&mut self.fc2.weight, &grads.fc2.weight);
        f(&mut self.fc2.bias, &grads.fc2.bias);
    }

    /// Flattens all parameters into a single vector (canonical order).
    pub fn flatten_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for t in self.param_tensors() {
            out.extend_from_slice(t.data());
        }
        out
    }

    /// All parameter tensors in canonical order.
    pub fn param_tensors(&self) -> Vec<&Tensor> {
        vec![
            &self.ln1_g,
            &self.ln1_b,
            &self.attn.qkv.weight,
            &self.attn.qkv.bias,
            &self.attn.proj.weight,
            &self.attn.proj.bias,
            &self.ln2_g,
            &self.ln2_b,
            &self.fc1.weight,
            &self.fc1.bias,
            &self.fc2.weight,
            &self.fc2.bias,
        ]
    }

    /// Overwrites all parameters from a flat vector in canonical order.
    ///
    /// # Panics
    /// Panics if `flat.len() != self.param_count()`.
    pub fn load_flat_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count());
        let mut off = 0;
        let noop = BlockGrads::dummy_like(self);
        self.visit_params_mut(&noop, |p, _| {
            let n = p.numel();
            p.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
    }
}

impl BlockGrads {
    /// Resets all gradients to zero.
    pub fn zero_(&mut self) {
        self.ln1_g.zero_();
        self.ln1_b.zero_();
        self.attn.zero_();
        self.ln2_g.zero_();
        self.ln2_b.zero_();
        self.fc1.zero_();
        self.fc2.zero_();
    }

    /// Flattens all gradients into a single vector (canonical order).
    pub fn flatten(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for t in [
            &self.ln1_g,
            &self.ln1_b,
            &self.attn.qkv.weight,
            &self.attn.qkv.bias,
            &self.attn.proj.weight,
            &self.attn.proj.bias,
            &self.ln2_g,
            &self.ln2_b,
            &self.fc1.weight,
            &self.fc1.bias,
            &self.fc2.weight,
            &self.fc2.bias,
        ] {
            out.extend_from_slice(t.data());
        }
        out
    }

    /// `self += scale * other` in canonical flat order. Both the resident
    /// and the offloaded trainers accumulate per-sample gradients through
    /// this one routine, so their floating-point op sequences are identical
    /// — the basis of the bit-exact equivalence tests.
    pub fn accumulate_scaled(&mut self, other: &BlockGrads, scale: f32) {
        let flat = other.flatten();
        let mut off = 0;
        for t in [
            &mut self.ln1_g,
            &mut self.ln1_b,
            &mut self.attn.qkv.weight,
            &mut self.attn.qkv.bias,
            &mut self.attn.proj.weight,
            &mut self.attn.proj.bias,
            &mut self.ln2_g,
            &mut self.ln2_b,
            &mut self.fc1.weight,
            &mut self.fc1.bias,
            &mut self.fc2.weight,
            &mut self.fc2.bias,
        ] {
            for v in t.data_mut() {
                *v += scale * flat[off];
                off += 1;
            }
        }
    }

    /// Adds another gradient set element-wise (micro-batch accumulation).
    pub fn accumulate(&mut self, other: &BlockGrads) {
        add_assign(&mut self.ln1_g, &other.ln1_g);
        add_assign(&mut self.ln1_b, &other.ln1_b);
        add_assign(&mut self.attn.qkv.weight, &other.attn.qkv.weight);
        add_assign(&mut self.attn.qkv.bias, &other.attn.qkv.bias);
        add_assign(&mut self.attn.proj.weight, &other.attn.proj.weight);
        add_assign(&mut self.attn.proj.bias, &other.attn.proj.bias);
        add_assign(&mut self.ln2_g, &other.ln2_g);
        add_assign(&mut self.ln2_b, &other.ln2_b);
        add_assign(&mut self.fc1.weight, &other.fc1.weight);
        add_assign(&mut self.fc1.bias, &other.fc1.bias);
        add_assign(&mut self.fc2.weight, &other.fc2.weight);
        add_assign(&mut self.fc2.bias, &other.fc2.bias);
    }

    fn dummy_like(block: &Block) -> BlockGrads {
        block.zero_grads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_tensor::init::{normal, seeded_rng};

    #[test]
    fn param_count_formula() {
        let b = Block::new(32, 4, &mut seeded_rng(70));
        assert_eq!(b.param_count(), 12 * 32 * 32 + 13 * 32);
    }

    #[test]
    fn forward_shapes() {
        let b = Block::new(16, 2, &mut seeded_rng(71));
        let x = normal([6, 16], 1.0, &mut seeded_rng(72));
        let (y, _) = b.forward(&x);
        assert_eq!(y.shape().dims(), &[6, 16]);
        assert!(y.all_finite());
    }

    #[test]
    fn recompute_matches_cached_forward() {
        let b = Block::new(16, 2, &mut seeded_rng(73));
        let x = normal([5, 16], 1.0, &mut seeded_rng(74));
        let (y1, _) = b.forward(&x);
        let y2 = b.forward_no_cache(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn gradient_check_through_block() {
        let mut rng = seeded_rng(75);
        let b = Block::new(8, 2, &mut rng);
        let x = normal([3, 8], 0.5, &mut rng);
        let w = normal([3, 8], 1.0, &mut rng);
        let loss = |xin: &Tensor| -> f32 {
            let (y, _) = b.forward(xin);
            y.data()
                .iter()
                .zip(w.data().iter())
                .map(|(a, c)| a * c)
                .sum()
        };
        let (_, cache) = b.forward(&x);
        let mut grads = b.zero_grads();
        let dx = b.backward(&w, &x, &cache, &mut grads);
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 5e-2 * (1.0 + num.abs()),
                "dx[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn flatten_load_round_trip() {
        let mut rng = seeded_rng(76);
        let b1 = Block::new(16, 2, &mut rng);
        let flat = b1.flatten_params();
        assert_eq!(flat.len(), b1.param_count());
        let mut b2 = Block::new(16, 2, &mut seeded_rng(999));
        b2.load_flat_params(&flat);
        assert_eq!(b2.flatten_params(), flat);
        // Same forward result.
        let x = normal([4, 16], 1.0, &mut rng);
        assert_eq!(b1.forward_no_cache(&x), b2.forward_no_cache(&x));
    }

    #[test]
    fn grads_accumulate() {
        let mut rng = seeded_rng(77);
        let b = Block::new(8, 2, &mut rng);
        let x = normal([3, 8], 1.0, &mut rng);
        let dy = normal([3, 8], 1.0, &mut rng);
        let (_, cache) = b.forward(&x);
        let mut g1 = b.zero_grads();
        b.backward(&dy, &x, &cache, &mut g1);
        let mut g2 = b.zero_grads();
        g2.accumulate(&g1);
        g2.accumulate(&g1);
        let f1 = g1.flatten();
        let f2 = g2.flatten();
        for (a, b) in f2.iter().zip(f1.iter()) {
            assert!((a - 2.0 * b).abs() < 1e-5);
        }
    }
}
