//! Training memory estimators shared by the runtime, the baselines' memory
//! plans, and the max-trainable-size searches (Figs. 1a, 6a, 6b).
//!
//! Conventions follow ZeRO's accounting for FP32 training: 4 bytes each for
//! parameters and gradients and 8 bytes of Adam state per parameter, plus
//! residual state (activations and workspaces).

use crate::config::ModelConfig;
use crate::layer::{build_layers, LayerSpec, F32_BYTES};

/// One gibibyte.
pub const GIB: u64 = 1 << 30;

/// Full-model state bytes (params + grads + Adam), local shard.
pub fn model_state_bytes(cfg: &ModelConfig) -> u64 {
    build_layers(cfg)
        .iter()
        .map(LayerSpec::full_state_bytes)
        .sum()
}

/// Parameter-only bytes, local shard.
pub fn param_bytes(cfg: &ModelConfig) -> u64 {
    build_layers(cfg).iter().map(LayerSpec::param_bytes).sum()
}

/// Activation-checkpoint residency for a whole iteration: one `[seq, hidden]`
/// checkpoint per layer per sample (layer-wise activation checkpointing,
/// §V-D) — these stay resident from FP until the layer's BP.
pub fn activation_checkpoint_bytes(cfg: &ModelConfig) -> u64 {
    build_layers(cfg)
        .iter()
        .map(|l| l.act_checkpoint_bytes)
        .sum::<u64>()
        * cfg.batch as u64
}

/// Peak transient workspace while the busiest layer computes (attention
/// probability matrices and MLP intermediates for the active layer only —
/// recomputation under checkpointing means only one layer's worth is live).
pub fn peak_workspace_bytes(cfg: &ModelConfig) -> u64 {
    build_layers(cfg)
        .iter()
        .map(|l| l.act_workspace_bytes)
        .max()
        .unwrap_or(0)
        * cfg.batch as u64
}

/// Bytes of one sample's inter-layer activation (`[seq, hidden]`).
pub fn boundary_activation_bytes(cfg: &ModelConfig) -> u64 {
    cfg.seq as u64 * cfg.hidden as u64 * F32_BYTES
}

/// CUDA context + framework runtime reservation on the device. Matches the
/// ~1.5 GiB PyTorch/CUDA footprint observed on V100-class setups.
pub const RUNTIME_RESERVED_BYTES: u64 = 3 * GIB / 2;

/// Fragmentation/allocator slack applied to device capacity planning: usable
/// capacity = capacity × (1 − slack).
pub const ALLOCATOR_SLACK: f64 = 0.05;

/// Usable device bytes after runtime reservation and allocator slack.
pub fn usable_device_bytes(capacity: u64) -> u64 {
    let after_slack = (capacity as f64 * (1.0 - ALLOCATOR_SLACK)) as u64;
    after_slack.saturating_sub(RUNTIME_RESERVED_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{common_1_7b, ModelConfig};

    #[test]
    fn model_state_is_16_bytes_per_param() {
        let cfg = common_1_7b();
        assert_eq!(model_state_bytes(&cfg), cfg.total_params() * 16);
    }

    #[test]
    fn megatron_1_7b_fits_32gb_but_2_5b_does_not() {
        // Sanity anchor for Fig. 6a: Megatron stores the full model state on
        // the GPU; 1.7B × 16 B ≈ 27 GiB fits a 32 GiB V100, 2.5 B does not.
        let v100 = usable_device_bytes(32 * GIB);
        let cfg17 = common_1_7b();
        let need17 = model_state_bytes(&cfg17)
            + activation_checkpoint_bytes(&cfg17)
            + peak_workspace_bytes(&cfg17);
        assert!(need17 <= v100, "1.7B needs {} GiB", need17 / GIB);
        let cfg25 = ModelConfig::new(30, 2560, 16);
        let need25 = model_state_bytes(&cfg25);
        assert!(need25 > v100, "2.5B unexpectedly fits");
    }

    #[test]
    fn checkpoint_bytes_scale_with_batch() {
        let a = activation_checkpoint_bytes(&common_1_7b().with_batch(2));
        let b = activation_checkpoint_bytes(&common_1_7b().with_batch(8));
        assert_eq!(4 * a, b);
    }

    #[test]
    fn usable_bytes_monotone() {
        assert!(usable_device_bytes(32 * GIB) < 32 * GIB);
        assert!(usable_device_bytes(32 * GIB) > 28 * GIB);
        assert_eq!(usable_device_bytes(GIB), 0);
    }
}
