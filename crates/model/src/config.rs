//! Model configurations, including every row of the paper's Table I.

use serde::{Deserialize, Serialize};

/// Default sequence length used throughout the paper's evaluation (§III-F).
pub const DEFAULT_SEQ: usize = 1024;
/// Default vocabulary size (§III-F uses vs = 30k).
pub const DEFAULT_VOCAB: usize = 30_000;

/// A GPT-style model configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Number of transformer blocks (`n` in the paper).
    pub layers: usize,
    /// Hidden size (`hd`).
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length (`seq`).
    pub seq: usize,
    /// Vocabulary size (`vs`).
    pub vocab: usize,
    /// Per-GPU micro batch size (`bs`).
    pub batch: usize,
    /// Tensor-model-parallel degree (Table I "Model Parallelism" column).
    pub mp_degree: usize,
}

impl ModelConfig {
    /// A configuration with the paper's default seq/vocab and batch 4.
    pub fn new(layers: usize, hidden: usize, heads: usize) -> Self {
        ModelConfig {
            layers,
            hidden,
            heads,
            seq: DEFAULT_SEQ,
            vocab: DEFAULT_VOCAB,
            batch: 4,
            mp_degree: 1,
        }
    }

    /// Builder: set batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Builder: set sequence length.
    pub fn with_seq(mut self, seq: usize) -> Self {
        self.seq = seq;
        self
    }

    /// Builder: set vocabulary size.
    pub fn with_vocab(mut self, vocab: usize) -> Self {
        self.vocab = vocab;
        self
    }

    /// Builder: set model-parallel degree.
    pub fn with_mp(mut self, mp: usize) -> Self {
        self.mp_degree = mp;
        self
    }

    /// Parameters in one transformer block: `12·h² + 13·h`
    /// (QKV 3h²+3h, attention projection h²+h, MLP 8h²+5h, two layernorms 4h).
    pub fn block_params(&self) -> u64 {
        let h = self.hidden as u64;
        12 * h * h + 13 * h
    }

    /// Parameters in the embedding layer (token + position tables).
    pub fn embedding_params(&self) -> u64 {
        (self.vocab as u64 + self.seq as u64) * self.hidden as u64
    }

    /// Parameters in the head layer (final layernorm; LM head is tied to the
    /// token embedding, as in GPT-2/Megatron).
    pub fn head_params(&self) -> u64 {
        2 * self.hidden as u64
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.layers as u64 * self.block_params() + self.embedding_params() + self.head_params()
    }

    /// Total parameters in billions.
    pub fn billions(&self) -> f64 {
        self.total_params() as f64 / 1e9
    }

    /// Human-readable size label, e.g. "1.7B".
    pub fn size_label(&self) -> String {
        format!("{:.1}B", self.billions())
    }

    /// Tokens processed per sample.
    pub fn tokens_per_sample(&self) -> u64 {
        self.seq as u64
    }

    /// The per-GPU shard of one block's parameters under tensor parallelism.
    pub fn block_params_per_shard(&self) -> u64 {
        // Layernorms are replicated; matmul weights are split mp ways.
        let h = self.hidden as u64;
        (12 * h * h + 9 * h) / self.mp_degree as u64 + 4 * h
    }
}

/// The common 1.7B model (Megatron-LM's largest on the 32 GB V100; Figs. 1b,
/// 8a, 9, 11).
pub fn common_1_7b() -> ModelConfig {
    ModelConfig::new(20, 2560, 16)
}

/// The 4B model used for the Fig. 4 trace and the Fig. 14 ablation.
pub fn model_4b() -> ModelConfig {
    ModelConfig::new(50, 2560, 16)
}

/// The 39.4B model: STRONGHOLD's largest trainable on the V100 (Fig. 6a).
pub fn model_39_4b() -> ModelConfig {
    ModelConfig::new(500, 2560, 16)
}

/// All rows of Table I, in paper order.
pub fn table1() -> Vec<ModelConfig> {
    let mut v = Vec::new();
    // Row 1: hidden 2560, MP 1.
    for layers in [20, 50, 74, 75, 83, 260, 300, 500] {
        v.push(ModelConfig::new(layers, 2560, 16));
    }
    // Row 2: hidden 4096, MP 1.
    v.push(ModelConfig::new(19, 4096, 16));
    // Row 3: hidden 5120, MP 1.
    for layers in [19, 31] {
        v.push(ModelConfig::new(layers, 5120, 16));
    }
    // Row 4: hidden 5120, MP 8.
    for layers in [10, 12, 24, 72, 200, 240, 260, 328, 1174, 1676] {
        v.push(ModelConfig::new(layers, 5120, 16).with_mp(8));
    }
    // Row 5: hidden 8192, MP 8.
    for layers in [24, 31] {
        v.push(ModelConfig::new(layers, 8192, 16).with_mp(8));
    }
    // Row 6: hidden 8704 / 9216 / 13312 at 31 layers, MP 8.
    for hidden in [8704, 9216, 13_312] {
        v.push(ModelConfig::new(31, hidden, 16).with_mp(8));
    }
    v
}

/// A tiny configuration for functional (real-math) tests and examples.
pub fn tiny(layers: usize) -> ModelConfig {
    ModelConfig {
        layers,
        hidden: 32,
        heads: 4,
        seq: 16,
        vocab: 64,
        batch: 2,
        mp_degree: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes_match_paper_labels() {
        // Paper sizes for the hidden-2560 row: 1.7, 4.0, 5.9, 6.0, 6.6, 20.5,
        // 23.7, 39.4 billion.
        let expect = [1.7, 4.0, 5.9, 6.0, 6.6, 20.5, 23.7, 39.4];
        for (cfg, want) in table1()[..8].iter().zip(expect) {
            let got = cfg.billions();
            assert!(
                (got - want).abs() < 0.15,
                "layers {} hidden {}: got {got:.2}B want {want}B",
                cfg.layers,
                cfg.hidden
            );
        }
    }

    #[test]
    fn table1_wide_rows_match() {
        let t = table1();
        // hidden 4096, 19 layers -> 4.0B
        assert!((t[8].billions() - 4.0).abs() < 0.15, "{}", t[8].billions());
        // hidden 5120, 19/31 layers -> 6.2B / 10.0B
        assert!((t[9].billions() - 6.2).abs() < 0.2, "{}", t[9].billions());
        assert!(
            (t[10].billions() - 10.0).abs() < 0.3,
            "{}",
            t[10].billions()
        );
        // MP=8 row: 10 layers h=5120 -> 3.4B ... 1676 layers -> 524.5B
        assert!((t[11].billions() - 3.4).abs() < 0.3, "{}", t[11].billions());
        assert!(
            (t[20].billions() - 524.5).abs() < 4.0,
            "{}",
            t[20].billions()
        );
        // hidden 8192: 24 -> 19.8B, 31 -> 25.4B
        assert!(
            (t[21].billions() - 19.8).abs() < 0.5,
            "{}",
            t[21].billions()
        );
        assert!(
            (t[22].billions() - 25.4).abs() < 0.6,
            "{}",
            t[22].billions()
        );
        // 31 layers at 8704/9216/13312 -> 28.7/32.1/66.7B
        assert!(
            (t[23].billions() - 28.7).abs() < 0.7,
            "{}",
            t[23].billions()
        );
        assert!(
            (t[24].billions() - 32.1).abs() < 0.8,
            "{}",
            t[24].billions()
        );
        assert!(
            (t[25].billions() - 66.7).abs() < 1.5,
            "{}",
            t[25].billions()
        );
    }

    #[test]
    fn table1_has_all_26_configs() {
        assert_eq!(table1().len(), 26);
    }

    #[test]
    fn named_models() {
        assert!((common_1_7b().billions() - 1.7).abs() < 0.1);
        assert!((model_4b().billions() - 4.0).abs() < 0.1);
        assert!((model_39_4b().billions() - 39.4).abs() < 0.3);
    }

    #[test]
    fn shard_params_smaller_under_mp() {
        let c = ModelConfig::new(24, 5120, 16).with_mp(8);
        assert!(c.block_params_per_shard() < c.block_params());
        assert!(c.block_params_per_shard() > c.block_params() / 9);
    }

    #[test]
    fn builders() {
        let c = ModelConfig::new(2, 64, 4)
            .with_batch(8)
            .with_seq(128)
            .with_vocab(100)
            .with_mp(2);
        assert_eq!(c.batch, 8);
        assert_eq!(c.seq, 128);
        assert_eq!(c.vocab, 100);
        assert_eq!(c.mp_degree, 2);
    }
}
