//! Synthetic training data.
//!
//! The paper trains on a Wikipedia dump; training-data *content* never
//! affects any reported metric (trainable size, throughput), so we substitute
//! a seeded generator producing token streams with a Zipfian unigram
//! distribution and a short-range repetition structure that a small model can
//! actually learn (used by the convergence tests and examples).

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use stronghold_tensor::init::seeded_rng;

/// A deterministic synthetic token stream.
pub struct SyntheticCorpus {
    rng: ChaCha8Rng,
    vocab: usize,
    zipf_cdf: Vec<f64>,
}

impl SyntheticCorpus {
    /// Creates a corpus over `vocab` tokens with Zipf exponent ~1.
    pub fn new(vocab: usize, seed: u64) -> Self {
        assert!(vocab >= 2);
        let mut cdf = Vec::with_capacity(vocab);
        let mut acc = 0.0f64;
        for r in 1..=vocab {
            acc += 1.0 / r as f64;
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        SyntheticCorpus {
            rng: seeded_rng(seed),
            vocab,
            zipf_cdf: cdf,
        }
    }

    /// Draws one token from the Zipfian unigram distribution.
    pub fn draw_token(&mut self) -> u32 {
        let u: f64 = self.rng.gen();
        match self
            .zipf_cdf
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) | Err(i) => (i.min(self.vocab - 1)) as u32,
        }
    }

    /// Generates a sequence of `len + 1` tokens and splits it into an
    /// `(inputs, targets)` next-token-prediction pair of length `len`.
    ///
    /// Sequences mix Zipf noise with repeated 4-token motifs so small models
    /// can visibly reduce the loss within a few dozen steps.
    pub fn next_sample(&mut self, len: usize) -> (Vec<u32>, Vec<u32>) {
        let mut seq = Vec::with_capacity(len + 1);
        let motif: Vec<u32> = (0..4).map(|_| self.draw_token()).collect();
        while seq.len() < len + 1 {
            if self.rng.gen_bool(0.7) {
                seq.extend_from_slice(&motif);
            } else {
                seq.push(self.draw_token());
            }
        }
        seq.truncate(len + 1);
        let inputs = seq[..len].to_vec();
        let targets = seq[1..].to_vec();
        (inputs, targets)
    }

    /// Generates a batch of samples.
    pub fn next_batch(&mut self, batch: usize, len: usize) -> Vec<(Vec<u32>, Vec<u32>)> {
        (0..batch).map(|_| self.next_sample(len)).collect()
    }

    /// Draws disjoint train/validation batch sets from the stream (the
    /// validation batches come later in the same deterministic stream, so
    /// they are held out but identically distributed).
    #[allow(clippy::type_complexity)]
    pub fn train_val_split(
        &mut self,
        train_batches: usize,
        val_batches: usize,
        batch: usize,
        len: usize,
    ) -> (
        Vec<Vec<(Vec<u32>, Vec<u32>)>>,
        Vec<Vec<(Vec<u32>, Vec<u32>)>>,
    ) {
        let train = (0..train_batches)
            .map(|_| self.next_batch(batch, len))
            .collect();
        let val = (0..val_batches)
            .map(|_| self.next_batch(batch, len))
            .collect();
        (train, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SyntheticCorpus::new(100, 42);
        let mut b = SyntheticCorpus::new(100, 42);
        assert_eq!(a.next_sample(32), b.next_sample(32));
    }

    #[test]
    fn tokens_in_vocab() {
        let mut c = SyntheticCorpus::new(17, 1);
        for _ in 0..200 {
            let (i, t) = c.next_sample(8);
            assert!(i.iter().all(|&x| (x as usize) < 17));
            assert!(t.iter().all(|&x| (x as usize) < 17));
            assert_eq!(i.len(), 8);
            assert_eq!(t.len(), 8);
        }
    }

    #[test]
    fn targets_are_shifted_inputs() {
        let mut c = SyntheticCorpus::new(50, 2);
        let (i, t) = c.next_sample(16);
        assert_eq!(&i[1..], &t[..15]);
    }

    #[test]
    fn train_val_split_is_disjoint_and_deterministic() {
        let mut a = SyntheticCorpus::new(64, 9);
        let (train, val) = a.train_val_split(3, 2, 2, 10);
        assert_eq!(train.len(), 3);
        assert_eq!(val.len(), 2);
        // Held-out batches differ from every training batch.
        for v in &val {
            for t in &train {
                assert_ne!(v, t);
            }
        }
        // Same seed reproduces the same split.
        let mut b = SyntheticCorpus::new(64, 9);
        let (train2, val2) = b.train_val_split(3, 2, 2, 10);
        assert_eq!(train, train2);
        assert_eq!(val, val2);
    }

    #[test]
    fn zipf_head_is_heavier() {
        let mut c = SyntheticCorpus::new(1000, 3);
        let mut low = 0;
        for _ in 0..5000 {
            if c.draw_token() < 10 {
                low += 1;
            }
        }
        // Top-10 of 1000 Zipf tokens carry ~39% of the mass.
        assert!(low > 1200, "only {low} of 5000 draws in the head");
    }
}
