//! Runtime ISA-tier detection and the multiversioned vector-math core
//! shared by the non-GEMM kernels ([`crate::ops`]) and the blocked GEMM
//! engine ([`crate::matmul`]).
//!
//! # How multiversioning works here
//!
//! Kernel bodies are written **once**, as safe scalar-looking Rust with
//! fixed-width lane-array accumulators (`[f32; LANES]`). The `dispatch!`
//! macro instantiates each body inside `#[target_feature]` wrapper
//! functions — one per ISA tier — so LLVM compiles the *same* source three
//! times with progressively wider vector subtargets (AVX-512, AVX2+FMA,
//! baseline SSE2) and autovectorizes the lane loops into full-width SIMD.
//! One body means one numerical definition: Rust performs no
//! floating-point contraction or reassociation, so all three tiers produce
//! **bit-identical** results and the tier choice (made once per process)
//! affects speed only.
//!
//! # Determinism contract
//!
//! Reductions accumulate into `LANES` independent partial sums in a fixed
//! element-to-lane assignment (`element i → lane i % LANES` within each
//! `LANES`-wide chunk, remainder handled sequentially) and are folded by
//! [`hsum`]/[`hmax`] in a fixed binary tree. The order is a function of
//! the operand shape alone — never of thread count or scheduling — which
//! is the same contract `matmul.rs` established for the GEMM engine.

use std::sync::OnceLock;

/// Vector width (in `f32` lanes) of the lane-array accumulators used by
/// the kernel bodies. Sixteen fills one AVX-512 register; AVX2 and SSE2
/// process the same array as two or four registers, so the summation
/// order — and therefore the bits — never change across tiers.
pub const LANES: usize = 16;

/// ISA tier selected once per process for all vectorized kernels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IsaTier {
    /// AVX-512 (F/BW/DQ/VL — the server-class common subset).
    #[cfg(target_arch = "x86_64")]
    Avx512,
    /// AVX2 with FMA.
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    /// Whatever the compilation baseline provides (SSE2 on x86-64).
    Portable,
}

/// Returns the ISA tier, detecting CPU features on first call.
pub fn tier() -> IsaTier {
    static TIER: OnceLock<IsaTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                return IsaTier::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return IsaTier::Avx2Fma;
            }
        }
        IsaTier::Portable
    })
}

/// Instantiates a `fn(..) -> ()` kernel body once per ISA tier behind
/// `#[target_feature]` wrappers and dispatches on [`tier()`].
///
/// The body must be branch-light straight-line loop code; anything it
/// calls must be `#[inline(always)]` so it is compiled inside the
/// feature-gated wrapper rather than at the crate baseline.
macro_rules! dispatch {
    ($(#[$meta:meta])* $vis:vis fn $name:ident( $($arg:ident : $ty:ty),* $(,)? ) $body:block) => {
        $(#[$meta])*
        #[inline]
        #[allow(clippy::too_many_arguments)]
        $vis fn $name($($arg: $ty),*) {
            #[inline(always)]
            #[allow(clippy::too_many_arguments)]
            fn body($($arg: $ty),*) $body

            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl,avx2,fma")]
            unsafe fn tier_avx512($($arg: $ty),*) { body($($arg),*) }

            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2,fma")]
            unsafe fn tier_avx2($($arg: $ty),*) { body($($arg),*) }

            match $crate::simd::tier() {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: feature presence verified once by `tier()`.
                $crate::simd::IsaTier::Avx512 => unsafe { tier_avx512($($arg),*) },
                #[cfg(target_arch = "x86_64")]
                // SAFETY: as above.
                $crate::simd::IsaTier::Avx2Fma => unsafe { tier_avx2($($arg),*) },
                $crate::simd::IsaTier::Portable => body($($arg),*),
            }
        }
    };
}
pub(crate) use dispatch;

/// Folds lane partial sums in a fixed binary tree (shape-independent
/// order, part of the determinism contract).
#[inline(always)]
pub fn hsum(mut acc: [f32; LANES]) -> f32 {
    let mut w = LANES / 2;
    while w > 0 {
        for j in 0..w {
            acc[j] += acc[j + w];
        }
        w /= 2;
    }
    acc[0]
}

/// Folds lane partial maxima in the same fixed tree as [`hsum`].
#[inline(always)]
pub fn hmax(mut acc: [f32; LANES]) -> f32 {
    let mut w = LANES / 2;
    while w > 0 {
        for j in 0..w {
            acc[j] = acc[j].max(acc[j + w]);
        }
        w /= 2;
    }
    acc[0]
}

// Exponential range clamp: below `EXP_LO` the true result underflows the
// smallest normal f32, and the kernel returns exactly 0.0 — attention
// relies on `exp(-inf) == 0.0` to keep causally masked probabilities
// exact zeros.
const EXP_HI: f32 = 88.376_26;
const EXP_LO: f32 = -87.336_55;
const LOG2E: f32 = std::f32::consts::LOG2_E;
const LN2_HI: f32 = 0.693_359_4;
const LN2_LO: f32 = -2.121_944_4e-4;
/// `1.5 · 2²³`: adding and subtracting this rounds an f32 in
/// `±2²¹` to the nearest integer without a libm call (which would block
/// autovectorization).
const ROUND_MAGIC: f32 = 12_582_912.0;

/// Vectorizable `e^x` (Cephes-style polynomial, ~2 ulp).
///
/// Branch-free except for LLVM-selectable clamps; safe to call inside
/// `dispatch!` bodies. Returns exactly `0.0` for `x < -87.34`
/// (including `-inf`) and saturates near `f32::MAX` at the high end.
#[inline(always)]
pub fn exp_approx(x: f32) -> f32 {
    let xc = if x < EXP_LO { EXP_LO } else { x };
    let xc = if xc > EXP_HI { EXP_HI } else { xc };
    // n = round(x / ln 2) via the magic-number trick.
    let z = xc * LOG2E + ROUND_MAGIC;
    let n = z - ROUND_MAGIC;
    // Cody–Waite reduction: r = x − n·ln2, |r| ≤ ln2/2.
    let r = xc - n * LN2_HI - n * LN2_LO;
    // Degree-6 minimax polynomial for e^r.
    let mut p = 1.987_569_1e-4f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_5e-1;
    p = p * r + 0.5;
    p = p * r * r + r + 1.0;
    // 2^n by direct exponent-field construction (n ∈ [-126, 127] after
    // the clamps, so the result is always a normal number).
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    let y = p * scale;
    if x < EXP_LO {
        0.0
    } else {
        y
    }
}

/// Vectorizable `tanh(x)` via `1 − 2/(e^{2x}+1)` (odd-symmetric form is
/// unnecessary: [`exp_approx`] saturates cleanly at both ends, giving
/// exact ±1.0 for |x| ≳ 44). Absolute error ≲ 2e-7.
#[inline(always)]
pub fn tanh_approx(x: f32) -> f32 {
    let e = exp_approx(2.0 * x);
    1.0 - 2.0 / (e + 1.0)
}

// ---- half-precision convert kernels ----
//
// The f32↔bf16/f16 converters back [`crate::half::PackedHalf`], the packed
// transfer payload of the mixed-precision offload runtime. The bodies are
// pure integer bit manipulation (see `crate::half` for the encodings), so
// bit-identity across ISA tiers is trivial; the `dispatch!` wrappers exist
// so LLVM can autovectorize the packing loops with the widest subtarget.

dispatch! {
    /// `dst[i] = bf16(src[i])` with round-to-nearest-even.
    fn k_f32_to_bf16(src: &[f32], dst: &mut [u16]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = crate::half::f32_to_bf16_bits(*s);
        }
    }
}

dispatch! {
    /// `dst[i] = f32(src[i])` — exact widening from bf16.
    fn k_bf16_to_f32(src: &[u16], dst: &mut [f32]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = crate::half::bf16_bits_to_f32(*s);
        }
    }
}

dispatch! {
    /// `dst[i] = f16(src[i])` with round-to-nearest-even.
    fn k_f32_to_f16(src: &[f32], dst: &mut [u16]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = crate::half::f32_to_f16_bits(*s);
        }
    }
}

dispatch! {
    /// `dst[i] = f32(src[i])` — exact widening from binary16.
    fn k_f16_to_f32(src: &[u16], dst: &mut [f32]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = crate::half::f16_bits_to_f32(*s);
        }
    }
}

macro_rules! cvt_wrapper {
    ($(#[$meta:meta])* $name:ident, $kernel:ident, $stat:ident, $src:ty, $dst:ty) => {
        $(#[$meta])*
        pub fn $name(src: &[$src], dst: &mut [$dst]) {
            assert_eq!(src.len(), dst.len(), "convert length mismatch");
            let t0 = std::time::Instant::now();
            $kernel(src, dst);
            crate::ops::stats::record(
                crate::ops::stats::$stat,
                src.len() as u64,
                t0.elapsed().as_nanos() as u64,
            );
        }
    };
}

cvt_wrapper!(
    /// Packs `src` into bf16 bits (round-to-nearest-even), recording
    /// `op.cvt_f32_bf16.*` telemetry. Lengths must match.
    cvt_f32_to_bf16, k_f32_to_bf16, CVT_F32_BF16, f32, u16
);
cvt_wrapper!(
    /// Unpacks bf16 bits into `dst` (exact), recording
    /// `op.cvt_bf16_f32.*` telemetry. Lengths must match.
    cvt_bf16_to_f32, k_bf16_to_f32, CVT_BF16_F32, u16, f32
);
cvt_wrapper!(
    /// Packs `src` into binary16 bits (round-to-nearest-even, overflow to
    /// ±Inf), recording `op.cvt_f32_f16.*` telemetry. Lengths must match.
    cvt_f32_to_f16, k_f32_to_f16, CVT_F32_F16, f32, u16
);
cvt_wrapper!(
    /// Unpacks binary16 bits into `dst` (exact), recording
    /// `op.cvt_f16_f32.*` telemetry. Lengths must match.
    cvt_f16_to_f32, k_f16_to_f32, CVT_F16_F32, u16, f32
);

/// `*mut f32` wrapper asserting to the compiler that disjoint index
/// ranges are written from different threads. Shared by the GEMM engine's
/// tile grid and the elementwise kernels' chunk grid.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr(pub *mut f32);
// SAFETY: every parallel task derives a slice over a range it exclusively
// owns (disjoint output tiles/chunks), so aliased mutation cannot occur.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// The wrapped pointer. A method taking `self` makes closures capture
    /// the whole `Send + Sync` wrapper; naming the `.0` field directly
    /// would capture only the raw pointer (edition-2021 disjoint capture),
    /// which is neither.
    #[inline(always)]
    pub(crate) fn get(self) -> *mut f32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_is_stable() {
        assert_eq!(tier(), tier());
    }

    #[test]
    fn exp_matches_libm() {
        let mut worst = 0.0f32;
        let mut x = -87.0f32;
        while x < 88.0 {
            let got = exp_approx(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.137;
        }
        assert!(worst < 1e-6, "worst relative error {worst}");
    }

    #[test]
    fn exp_edge_cases_are_exact() {
        assert_eq!(exp_approx(f32::NEG_INFINITY), 0.0);
        assert_eq!(exp_approx(-1.0e4), 0.0);
        assert_eq!(exp_approx(0.0), 1.0);
        assert!(exp_approx(88.0).is_finite());
    }

    #[test]
    fn tanh_matches_libm() {
        let mut x = -12.0f32;
        while x < 12.0 {
            let got = tanh_approx(x);
            let want = x.tanh();
            assert!((got - want).abs() < 5e-7, "tanh({x}): {got} vs libm {want}");
            x += 0.0917;
        }
        assert_eq!(tanh_approx(50.0), 1.0);
        assert_eq!(tanh_approx(-50.0), -1.0);
    }

    #[test]
    fn hsum_and_hmax_fold_all_lanes() {
        let mut acc = [0.0f32; LANES];
        for (i, a) in acc.iter_mut().enumerate() {
            *a = (i + 1) as f32;
        }
        let n = LANES as f32;
        assert_eq!(hsum(acc), n * (n + 1.0) / 2.0);
        assert_eq!(hmax(acc), n);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        // The dispatched convert kernels (whatever ISA tier this host
        // selects) must match a plain scalar loop over the reference
        // encoders bit-for-bit — including NaN payloads, infinities, and
        // subnormals, and including lengths that exercise both full vector
        // chunks and the scalar remainder.
        #[test]
        fn prop_cvt_bf16_matches_scalar(src in proptest::collection::vec(proptest::num::f32::ANY, 0..130)) {
            let mut simd = vec![0u16; src.len()];
            cvt_f32_to_bf16(&src, &mut simd);
            let scalar: Vec<u16> = src.iter().map(|v| crate::half::f32_to_bf16_bits(*v)).collect();
            prop_assert_eq!(&simd, &scalar);

            let mut back = vec![0.0f32; src.len()];
            cvt_bf16_to_f32(&simd, &mut back);
            for (b, h) in back.iter().zip(&scalar) {
                prop_assert_eq!(b.to_bits(), crate::half::bf16_bits_to_f32(*h).to_bits());
            }
        }

        #[test]
        fn prop_cvt_f16_matches_scalar(src in proptest::collection::vec(proptest::num::f32::ANY, 0..130)) {
            let mut simd = vec![0u16; src.len()];
            cvt_f32_to_f16(&src, &mut simd);
            let scalar: Vec<u16> = src.iter().map(|v| crate::half::f32_to_f16_bits(*v)).collect();
            prop_assert_eq!(&simd, &scalar);

            let mut back = vec![0.0f32; src.len()];
            cvt_f16_to_f32(&simd, &mut back);
            for (b, h) in back.iter().zip(&scalar) {
                prop_assert_eq!(b.to_bits(), crate::half::f16_bits_to_f32(*h).to_bits());
            }
        }
    }

    #[test]
    fn cvt_records_stats() {
        let before = crate::ops::stats::snapshot()[crate::ops::stats::CVT_F32_F16];
        let src = vec![1.5f32; 64];
        let mut dst = vec![0u16; 64];
        cvt_f32_to_f16(&src, &mut dst);
        let after = crate::ops::stats::snapshot()[crate::ops::stats::CVT_F32_F16];
        // Delta-based: other tests may run concurrently and also record.
        assert!(after.calls > before.calls);
        assert!(after.flops >= before.flops + 64);
    }
}
