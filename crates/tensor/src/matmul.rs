//! Parallel matrix multiplication kernels.
//!
//! Three layouts cover every product a transformer's forward and backward
//! passes need without materializing transposes:
//!
//! * [`matmul`]    — `C[M,N]  = A[M,K] · B[K,N]`
//! * [`matmul_nt`] — `C[M,N]  = A[M,K] · B[N,K]ᵀ` (weights stored `[out,in]`)
//! * [`matmul_tn`] — `C[M,N]  = A[K,M]ᵀ · B[K,N]` (gradient w.r.t. weights)
//!
//! Parallelism is over independent output rows via rayon, so the summation
//! order within each output element is fixed and results are bit-identical
//! for any thread count.

use rayon::prelude::*;

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Below this many output elements the kernels run sequentially; the rayon
/// dispatch overhead dominates for tiny matrices.
const PAR_THRESHOLD: usize = 8 * 1024;

fn dims2(t: &Tensor, op: &'static str) -> (usize, usize) {
    assert!(
        t.shape().rank() == 2,
        "{op}: expected rank-2 tensor, got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

/// `C[M,N] = A[M,K] · B[K,N]`.
///
/// # Examples
///
/// ```
/// use stronghold_tensor::Tensor;
/// use stronghold_tensor::matmul::matmul;
///
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let eye = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]);
/// assert_eq!(matmul(&a, &eye), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul");
    let (kb, n) = dims2(b, "matmul");
    assert_eq!(k, kb, "matmul: inner dims {k} vs {kb}");
    let mut c = Tensor::zeros([m, n]);
    matmul_into(a.data(), b.data(), c.data_mut(), m, k, n, false);
    c
}

/// `C[M,N] = A[M,K] · B[N,K]ᵀ` — `B` holds one row per *output* feature.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nt");
    let (n, kb) = dims2(b, "matmul_nt");
    assert_eq!(k, kb, "matmul_nt: inner dims {k} vs {kb}");
    let mut c = Tensor::zeros([m, n]);
    matmul_nt_into(a.data(), b.data(), c.data_mut(), m, k, n);
    c
}

/// `C[M,N] = A[K,M]ᵀ · B[K,N]`, optionally accumulating into `c_acc`.
///
/// Used for weight gradients: `dW[out,in] = dY[T,out]ᵀ · X[T,in]`.
pub fn matmul_tn_acc(a: &Tensor, b: &Tensor, c_acc: &mut Tensor) {
    let (k, m) = dims2(a, "matmul_tn");
    let (kb, n) = dims2(b, "matmul_tn");
    assert_eq!(k, kb, "matmul_tn: inner dims {k} vs {kb}");
    assert_eq!(
        c_acc.shape(),
        &Shape::new(&[m, n]),
        "matmul_tn: output shape"
    );
    let a = a.data();
    let b = b.data();
    let cm = c_acc.data_mut();
    let body = |i: usize, row: &mut [f32]| {
        for kk in 0..k {
            let av = a[kk * m + i];
            if av != 0.0 {
                let brow = &b[kk * n..kk * n + n];
                for (cj, bj) in row.iter_mut().zip(brow.iter()) {
                    *cj += av * bj;
                }
            }
        }
    };
    if m * n >= PAR_THRESHOLD {
        cm.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| body(i, row));
    } else {
        cm.chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| body(i, row));
    }
}

/// `C[M,N] = A[K,M]ᵀ · B[K,N]` into a fresh tensor.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let m = a.shape().dim(1);
    let n = b.shape().dim(1);
    let mut c = Tensor::zeros([m, n]);
    matmul_tn_acc(a, b, &mut c);
    c
}

fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, acc: bool) {
    let body = |i: usize, row: &mut [f32]| {
        if !acc {
            row.iter_mut().for_each(|x| *x = 0.0);
        }
        let arow = &a[i * k..i * k + k];
        for (kk, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let brow = &b[kk * n..kk * n + n];
                for (cj, bj) in row.iter_mut().zip(brow.iter()) {
                    *cj += av * bj;
                }
            }
        }
    };
    if m * n >= PAR_THRESHOLD {
        c.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| body(i, row));
    } else {
        c.chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| body(i, row));
    }
}

fn matmul_nt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let body = |i: usize, row: &mut [f32]| {
        let arow = &a[i * k..i * k + k];
        for (j, cj) in row.iter_mut().enumerate() {
            let brow = &b[j * k..j * k + k];
            let mut sum = 0.0f32;
            for (x, y) in arow.iter().zip(brow.iter()) {
                sum += x * y;
            }
            *cj = sum;
        }
    };
    if m * n >= PAR_THRESHOLD {
        c.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| body(i, row));
    } else {
        c.chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| body(i, row));
    }
}

/// Reference (naive triple-loop) matmul, used by tests and property checks.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_naive");
    let (_, n) = dims2(b, "matmul_naive");
    let mut c = Tensor::zeros([m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for kk in 0..k {
                s += a.data()[i * k + kk] * b.data()[kk * n + j];
            }
            c.data_mut()[i * n + j] = s;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};
    use proptest::prelude::*;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let mut rng = seeded_rng(11);
        let a = normal([5, 7], 1.0, &mut rng);
        let bt = normal([4, 7], 1.0, &mut rng); // [N,K]
                                                // Build B = btᵀ as [7,4].
        let mut b = Tensor::zeros([7, 4]);
        for i in 0..4 {
            for j in 0..7 {
                *b.at_mut(&[j, i]) = bt.at(&[i, j]);
            }
        }
        let c1 = matmul_nt(&a, &bt);
        let c2 = matmul(&a, &b);
        assert!(c1.max_abs_diff(&c2) < 1e-5);
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let mut rng = seeded_rng(12);
        let at = normal([6, 3], 1.0, &mut rng); // [K,M]
        let b = normal([6, 5], 1.0, &mut rng);
        let mut a = Tensor::zeros([3, 6]);
        for i in 0..6 {
            for j in 0..3 {
                *a.at_mut(&[j, i]) = at.at(&[i, j]);
            }
        }
        let c1 = matmul_tn(&at, &b);
        let c2 = matmul(&a, &b);
        assert!(c1.max_abs_diff(&c2) < 1e-5);
    }

    #[test]
    fn tn_acc_accumulates() {
        let mut rng = seeded_rng(13);
        let a = normal([4, 3], 1.0, &mut rng);
        let b = normal([4, 2], 1.0, &mut rng);
        let once = matmul_tn(&a, &b);
        let mut twice = matmul_tn(&a, &b);
        matmul_tn_acc(&a, &b, &mut twice);
        for (x, y) in twice.data().iter().zip(once.data().iter()) {
            assert!((x - 2.0 * y).abs() < 1e-5);
        }
    }

    #[test]
    fn large_parallel_matches_naive() {
        let mut rng = seeded_rng(14);
        let a = normal([130, 70], 1.0, &mut rng);
        let b = normal([70, 90], 1.0, &mut rng);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_matmul_matches_naive(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000) {
            let mut rng = seeded_rng(seed);
            let a = normal([m, k], 1.0, &mut rng);
            let b = normal([k, n], 1.0, &mut rng);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
        }

        #[test]
        fn prop_identity_is_noop(m in 1usize..16, n in 1usize..16, seed in 0u64..1000) {
            let mut rng = seeded_rng(seed);
            let a = normal([m, n], 1.0, &mut rng);
            let mut eye = Tensor::zeros([n, n]);
            for i in 0..n { *eye.at_mut(&[i, i]) = 1.0; }
            let c = matmul(&a, &eye);
            prop_assert!(c.max_abs_diff(&a) < 1e-6);
        }
    }
}
