//! Blocked, packed, register-tiled matrix multiplication kernels.
//!
//! Three layouts cover every product a transformer's forward and backward
//! passes need without materializing transposes:
//!
//! * [`matmul`]    — `C[M,N]  = A[M,K] · B[K,N]`
//! * [`matmul_nt`] — `C[M,N]  = A[M,K] · B[N,K]ᵀ` (weights stored `[out,in]`)
//! * [`matmul_tn`] — `C[M,N]  = A[K,M]ᵀ · B[K,N]` (gradient w.r.t. weights)
//!
//! All three share one blocked GEMM engine (`gemm`) built the classical
//! BLIS way:
//!
//! * **Packing.** For each `KC`-deep slice of the reduction dimension, the
//!   engine packs `A` into `MR`-row strips (`pa[kk·MR + r]`) and `B` into
//!   `NR`-column panels (`pb[kk·NR + j]`) inside per-thread scratch
//!   buffers reused across calls via `thread_local`. Packing absorbs the
//!   layout differences — `nt` and `tn` read their transposed operand
//!   contiguously while packing — so the micro-kernel only ever sees one
//!   canonical format and no transpose is ever materialized as a tensor.
//! * **Register tiling.** An `MR×NR` micro-kernel accumulates into a
//!   fixed-size local array that LLVM keeps in vector registers and
//!   autovectorizes. The micro-kernel is instantiated per ISA tier
//!   (AVX-512, AVX2+FMA, portable) behind one-time runtime detection;
//!   tile shapes per tier are chosen to fill the register file.
//! * **Cache blocking.** The reduction dimension is processed in `KC`
//!   blocks so one packed `A` strip (`MR·KC` floats) stays L1-resident
//!   and one packed `B` panel block (`NR·KC`) streams from L2.
//! * **2D parallelism.** Work is split over an (M-tile × N-tile) grid —
//!   disjoint output tiles — and fanned out with rayon when the
//!   estimated FLOP count (`2·M·N·K`, see [`PAR_FLOPS_THRESHOLD`])
//!   justifies the dispatch overhead.
//!
//! # Determinism contract
//!
//! The summation order for every output element is a fixed function of
//! the operand shapes (and the ISA tier detected once per process): `k`
//! is accumulated in ascending order inside each `KC` block, and block
//! partial sums are added to the output in ascending block order. Each
//! output tile is owned by exactly one parallel task, so scheduling
//! affects only *which thread* computes a tile, never the arithmetic —
//! results are bit-identical for any thread count. (Tiny products below
//! [`SMALL_FLOPS_THRESHOLD`] take a simple sequential path; the path
//! choice is also a function of shape only.)
//!
//! The pre-blocking row-parallel kernels are preserved verbatim in
//! [`seed`] so the benchmark suite can report speedups against a frozen
//! baseline, and [`matmul_naive`] remains the oracle for property tests.

use std::cell::RefCell;

use rayon::prelude::*;

use crate::shape::Shape;
use crate::simd::{self, SendPtr};
use crate::tensor::Tensor;

/// Below this many estimated FLOPs (`2·M·N·K`) the engine runs
/// sequentially: fanning out scoped threads costs tens of microseconds,
/// which only amortizes once a product is several hundred microseconds of
/// arithmetic (~8 MFLOP at the >30 GFLOP/s the blocked kernels sustain).
/// Using FLOPs rather than `M·N` means tall-skinny gradient GEMMs (large
/// K, small M·N) parallelize too.
pub const PAR_FLOPS_THRESHOLD: usize = 1 << 23;

/// Below this many estimated FLOPs the packed engine is skipped entirely
/// in favor of simple sequential loops — for tiny operands the packing
/// traffic would exceed the arithmetic.
pub const SMALL_FLOPS_THRESHOLD: usize = 8 * 1024;

/// Depth of one packed reduction block (`KC` in BLIS terminology).
const KC: usize = 256;

/// `MR` strips per M-side macro tile (macro tile height = `MR · MC_STRIPS`).
const MC_STRIPS: usize = 16;

/// Approximate N-side macro tile width; rounded to a multiple of `NR`.
const NC_TARGET: usize = 256;

fn dims2(t: &Tensor, op: &'static str) -> (usize, usize) {
    assert!(
        t.shape().rank() == 2,
        "{op}: expected rank-2 tensor, got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

/// `C[M,N] = A[M,K] · B[K,N]`.
///
/// # Examples
///
/// ```
/// use stronghold_tensor::Tensor;
/// use stronghold_tensor::matmul::matmul;
///
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let eye = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]);
/// assert_eq!(matmul(&a, &eye), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut c = crate::scratch::empty();
    matmul_into(a, b, &mut c);
    c
}

/// [`matmul`] writing into a reusable output tensor (resized in place;
/// prior contents are fully overwritten).
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k) = dims2(a, "matmul");
    let (kb, n) = dims2(b, "matmul");
    assert_eq!(k, kb, "matmul: inner dims {k} vs {kb}");
    c.reset_for([m, n]);
    gemm(Layout::NN, a.data(), b.data(), c.data_mut(), m, k, n, false);
}

/// `C[M,N] = A[M,K] · B[N,K]ᵀ` — `B` holds one row per *output* feature.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let mut c = crate::scratch::empty();
    matmul_nt_into(a, b, &mut c);
    c
}

/// [`matmul_nt`] writing into a reusable output tensor.
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k) = dims2(a, "matmul_nt");
    let (n, kb) = dims2(b, "matmul_nt");
    assert_eq!(k, kb, "matmul_nt: inner dims {k} vs {kb}");
    c.reset_for([m, n]);
    gemm(Layout::NT, a.data(), b.data(), c.data_mut(), m, k, n, false);
}

/// `C[M,N] = A[K,M]ᵀ · B[K,N]`, accumulating into `c_acc`.
///
/// Used for weight gradients: `dW[out,in] += dY[T,out]ᵀ · X[T,in]`.
pub fn matmul_tn_acc(a: &Tensor, b: &Tensor, c_acc: &mut Tensor) {
    let (k, m) = dims2(a, "matmul_tn");
    let (kb, n) = dims2(b, "matmul_tn");
    assert_eq!(k, kb, "matmul_tn: inner dims {k} vs {kb}");
    assert_eq!(
        c_acc.shape(),
        &Shape::new(&[m, n]),
        "matmul_tn: output shape"
    );
    gemm(
        Layout::TN,
        a.data(),
        b.data(),
        c_acc.data_mut(),
        m,
        k,
        n,
        true,
    );
}

/// `C[M,N] = A[K,M]ᵀ · B[K,N]` into a fresh tensor.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let mut c = crate::scratch::empty();
    matmul_tn_into(a, b, &mut c);
    c
}

/// [`matmul_tn`] writing into a reusable output tensor (overwriting, not
/// accumulating — see [`matmul_tn_acc`] for the accumulating form).
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (k, m) = dims2(a, "matmul_tn");
    let (kb, n) = dims2(b, "matmul_tn");
    assert_eq!(k, kb, "matmul_tn: inner dims {k} vs {kb}");
    c.reset_for([m, n]);
    gemm(Layout::TN, a.data(), b.data(), c.data_mut(), m, k, n, false);
}

/// Reference (naive triple-loop) matmul, used by tests and property checks.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_naive");
    let (_, n) = dims2(b, "matmul_naive");
    let mut c = Tensor::zeros([m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for kk in 0..k {
                s += a.data()[i * k + kk] * b.data()[kk * n + j];
            }
            c.data_mut()[i * n + j] = s;
        }
    }
    c
}

// ---------------------------------------------------------------------------
// Batch-stable entries (the serving decode path).
// ---------------------------------------------------------------------------
//
// The public kernels above dispatch on operand size: products below
// `SMALL_FLOPS_THRESHOLD` take a two-rounding `sum += x*y` loop, larger
// ones the single-rounding FMA engine — so the *bits* of one output
// element depend on the shape of the product it was computed in. Training
// never mixes shapes for the same logical row, but incremental decode
// does: a prefill computes a token's row inside an `[T, n]` product while
// the decode replay computes it as a `[1, n]` product. The `_stable`
// entries below pin every product to the blocked engine, whose per-element
// accumulation order depends only on `k` and the ISA tier (KC-block
// partials in ascending order, lanes independent) — so row bits are
// invariant to `m`/`n`, and prefill == decode bit-for-bit.

/// `C[m,n] = A[m,k] · B[n,k]ᵀ` over raw row-major slices, batch-stable:
/// always the blocked engine regardless of product size.
pub fn matmul_nt_stable(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
    gemm_stable(Layout::NT, a, b, c, m, k, n);
}

/// `C[m,n] = A[m,k] · B[k,n]` over raw row-major slices, batch-stable:
/// always the blocked engine regardless of product size.
pub fn matmul_nn_stable(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
    gemm_stable(Layout::NN, a, b, c, m, k, n);
}

/// The `gemm` dispatch minus the small-product path: the blocked engine at
/// the detected ISA tier, unconditionally.
fn gemm_stable(layout: Layout, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let start = std::time::Instant::now();
    if k == 0 || m == 0 || n == 0 {
        c[..m * n].iter_mut().for_each(|x| *x = 0.0);
        return;
    }
    match simd::tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: feature presence verified by `tier()` at detection time.
        simd::IsaTier::Avx512 => gemm_blocked::<8, 32>(layout, a, b, c, m, k, n, false, mk_avx512),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        simd::IsaTier::Avx2Fma => gemm_blocked::<6, 16>(layout, a, b, c, m, k, n, false, mk_avx2),
        simd::IsaTier::Portable => {
            gemm_blocked::<4, 16>(layout, a, b, c, m, k, n, false, mk_portable)
        }
    }
    stats::record(
        layout.index(),
        (2 * m * n * k) as u64,
        start.elapsed().as_nanos() as u64,
    );
}

// ---------------------------------------------------------------------------
// The blocked engine.
// ---------------------------------------------------------------------------

/// Operand layout of a GEMM. `NN`: both row-major; `NT`: `B` stored
/// `[N,K]`; `TN`: `A` stored `[K,M]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Layout {
    NN,
    NT,
    TN,
}

impl Layout {
    fn index(self) -> usize {
        match self {
            Layout::NN => 0,
            Layout::NT => 1,
            Layout::TN => 2,
        }
    }
}

// The per-process ISA tier is shared with the non-GEMM kernels; see
// `crate::simd::tier()`.

/// Unified entry point behind the public kernels: dispatches on operand
/// size and ISA tier, and records kernel statistics.
#[allow(clippy::too_many_arguments)]
fn gemm(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    let start = std::time::Instant::now();
    if k == 0 || m == 0 || n == 0 {
        if !accumulate {
            c.iter_mut().for_each(|x| *x = 0.0);
        }
        return;
    }
    let flops = 2 * m * n * k;
    if flops < SMALL_FLOPS_THRESHOLD {
        gemm_small(layout, a, b, c, m, k, n, accumulate);
    } else {
        match simd::tier() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: feature presence verified by `tier()` at detection time.
            simd::IsaTier::Avx512 => {
                gemm_blocked::<8, 32>(layout, a, b, c, m, k, n, accumulate, mk_avx512)
            }
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            simd::IsaTier::Avx2Fma => {
                gemm_blocked::<6, 16>(layout, a, b, c, m, k, n, accumulate, mk_avx2)
            }
            simd::IsaTier::Portable => {
                gemm_blocked::<4, 16>(layout, a, b, c, m, k, n, accumulate, mk_portable)
            }
        }
    }
    stats::record(
        layout.index(),
        flops as u64,
        start.elapsed().as_nanos() as u64,
    );
}

/// Simple sequential loops for products too small to amortize packing.
#[allow(clippy::too_many_arguments)]
fn gemm_small(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    match layout {
        Layout::NN => {
            for (i, row) in c.chunks_mut(n).enumerate() {
                if !accumulate {
                    row.iter_mut().for_each(|x| *x = 0.0);
                }
                for (kk, &av) in a[i * k..i * k + k].iter().enumerate() {
                    let brow = &b[kk * n..kk * n + n];
                    for (cj, bj) in row.iter_mut().zip(brow.iter()) {
                        *cj += av * bj;
                    }
                }
            }
        }
        Layout::NT => {
            for (i, row) in c.chunks_mut(n).enumerate() {
                let arow = &a[i * k..i * k + k];
                for (j, cj) in row.iter_mut().enumerate() {
                    let brow = &b[j * k..j * k + k];
                    let mut sum = 0.0f32;
                    for (x, y) in arow.iter().zip(brow.iter()) {
                        sum += x * y;
                    }
                    if accumulate {
                        *cj += sum;
                    } else {
                        *cj = sum;
                    }
                }
            }
        }
        Layout::TN => {
            for (i, row) in c.chunks_mut(n).enumerate() {
                if !accumulate {
                    row.iter_mut().for_each(|x| *x = 0.0);
                }
                for kk in 0..k {
                    let av = a[kk * m + i];
                    let brow = &b[kk * n..kk * n + n];
                    for (cj, bj) in row.iter_mut().zip(brow.iter()) {
                        *cj += av * bj;
                    }
                }
            }
        }
    }
}

/// Micro-kernel signature: `acc += pa_strip ⊗ pb_panel` over `kc` steps.
type MicroKernel<const MR: usize, const NR: usize> =
    unsafe fn(&[f32], &[f32], usize, &mut [[f32; NR]; MR]);

/// Portable inner loop: for each `kk`, broadcast `MR` packed `A` values
/// against an `NR`-wide packed `B` row. Plain multiply-add (no
/// `mul_add`: without hardware FMA it falls back to slow libm emulation
/// of the single-rounding semantics) in a shape the autovectorizer
/// handles on baseline targets.
#[inline(always)]
fn microkernel_body<const MR: usize, const NR: usize>(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
    for (aa, bb) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)) {
        for r in 0..MR {
            let ar = aa[r];
            let row = &mut acc[r];
            for j in 0..NR {
                row[j] += ar * bb[j];
            }
        }
    }
}

/// AVX-512 instantiation: 8×32 tile = 16 zmm accumulators (plus two
/// B-panel vectors and one broadcast, well inside the 32-register file).
/// Written with explicit intrinsics: the autovectorizer picks strided
/// gathers for this loop nest, so the vector shape is spelled out.
///
/// # Safety
/// Caller must ensure `avx512f` is available; `pa`/`pb` must hold at
/// least `kc` packed steps.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mk_avx512(pa: &[f32], pb: &[f32], kc: usize, out: &mut [[f32; 32]; 8]) {
    use core::arch::x86_64::*;
    debug_assert!(pa.len() >= kc * 8 && pb.len() >= kc * 32);
    let mut acc = [[_mm512_setzero_ps(); 2]; 8];
    let pa = pa.as_ptr();
    let pb = pb.as_ptr();
    for kk in 0..kc {
        let b0 = _mm512_loadu_ps(pb.add(kk * 32));
        let b1 = _mm512_loadu_ps(pb.add(kk * 32 + 16));
        for (r, row) in acc.iter_mut().enumerate() {
            let ar = _mm512_set1_ps(*pa.add(kk * 8 + r));
            row[0] = _mm512_fmadd_ps(ar, b0, row[0]);
            row[1] = _mm512_fmadd_ps(ar, b1, row[1]);
        }
    }
    for r in 0..8 {
        _mm512_storeu_ps(out[r].as_mut_ptr(), acc[r][0]);
        _mm512_storeu_ps(out[r].as_mut_ptr().add(16), acc[r][1]);
    }
}

/// AVX2+FMA instantiation: 6×16 tile = 12 ymm accumulators (plus two
/// B-panel vectors and one broadcast, filling the 16-register file).
///
/// # Safety
/// Caller must ensure `avx2` and `fma` are available; `pa`/`pb` must
/// hold at least `kc` packed steps.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mk_avx2(pa: &[f32], pb: &[f32], kc: usize, out: &mut [[f32; 16]; 6]) {
    use core::arch::x86_64::*;
    debug_assert!(pa.len() >= kc * 6 && pb.len() >= kc * 16);
    let mut acc = [[_mm256_setzero_ps(); 2]; 6];
    let pa = pa.as_ptr();
    let pb = pb.as_ptr();
    for kk in 0..kc {
        let b0 = _mm256_loadu_ps(pb.add(kk * 16));
        let b1 = _mm256_loadu_ps(pb.add(kk * 16 + 8));
        for (r, row) in acc.iter_mut().enumerate() {
            let ar = _mm256_set1_ps(*pa.add(kk * 6 + r));
            row[0] = _mm256_fmadd_ps(ar, b0, row[0]);
            row[1] = _mm256_fmadd_ps(ar, b1, row[1]);
        }
    }
    for r in 0..6 {
        _mm256_storeu_ps(out[r].as_mut_ptr(), acc[r][0]);
        _mm256_storeu_ps(out[r].as_mut_ptr().add(8), acc[r][1]);
    }
}

/// Baseline instantiation for CPUs (or targets) without the above.
///
/// # Safety
/// None required; `unsafe fn` only to share the [`MicroKernel`] type.
unsafe fn mk_portable(pa: &[f32], pb: &[f32], kc: usize, acc: &mut [[f32; 16]; 4]) {
    microkernel_body::<4, 16>(pa, pb, kc, acc);
}

thread_local! {
    /// Per-thread packing scratch `(A strips, B panels)`, grown on demand
    /// and reused across GEMM calls to avoid per-call allocation.
    static PACK_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The blocked engine proper. Generic over the micro-tile so each ISA
/// tier gets register-file-matched shapes; `mk` is the ISA-specific
/// micro-kernel instantiation.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked<const MR: usize, const NR: usize>(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
    mk: MicroKernel<MR, NR>,
) {
    let mc_max = MR * MC_STRIPS;
    let nc_max = NR * (NC_TARGET / NR).max(1);
    let tiles_m = m.div_ceil(mc_max);
    let tiles_n = n.div_ceil(nc_max);
    let tasks = tiles_m * tiles_n;
    let cptr = SendPtr(c.as_mut_ptr());

    let run_tile = |t: usize| {
        let ti = t / tiles_n;
        let tj = t % tiles_n;
        let i0 = ti * mc_max;
        let mc = (m - i0).min(mc_max);
        let j0 = tj * nc_max;
        let nc = (n - j0).min(nc_max);
        let m_strips = mc.div_ceil(MR);
        let n_panels = nc.div_ceil(NR);
        PACK_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (pa, pb) = &mut *scratch;
            if pa.len() < m_strips * MR * KC {
                pa.resize(m_strips * MR * KC, 0.0);
            }
            if pb.len() < n_panels * NR * KC {
                pb.resize(n_panels * NR * KC, 0.0);
            }
            // Ascending KC blocks: the only reduction order over k.
            for (kb, k0) in (0..k).step_by(KC).enumerate() {
                let kc = (k - k0).min(KC);
                pack_a::<MR>(layout == Layout::TN, a, pa, i0, mc, k0, kc, m, k);
                pack_b::<NR>(layout == Layout::NT, b, pb, j0, nc, k0, kc, n, k);
                let add = accumulate || kb > 0;
                for p in 0..n_panels {
                    let jr = p * NR;
                    let nr_eff = (nc - jr).min(NR);
                    let pbp = &pb[p * NR * kc..(p + 1) * NR * kc];
                    for s in 0..m_strips {
                        let ir = s * MR;
                        let mr_eff = (mc - ir).min(MR);
                        let pas = &pa[s * MR * kc..(s + 1) * MR * kc];
                        let mut acc = [[0.0f32; NR]; MR];
                        // SAFETY: `gemm` selected `mk` to match the
                        // detected ISA; slices hold kc full steps.
                        unsafe { mk(pas, pbp, kc, &mut acc) };
                        // SAFETY: the (i0+ir, j0+jr) tile clipped to
                        // (mr_eff, nr_eff) lies inside C, and no other
                        // task touches it.
                        unsafe {
                            writeback::<MR, NR>(
                                cptr,
                                n,
                                i0 + ir,
                                j0 + jr,
                                &acc,
                                mr_eff,
                                nr_eff,
                                add,
                            )
                        };
                    }
                }
            }
        });
    };

    if 2 * m * n * k >= PAR_FLOPS_THRESHOLD && tasks > 1 && rayon::current_num_threads() > 1 {
        (0..tasks).into_par_iter().for_each(run_tile);
    } else {
        for t in 0..tasks {
            run_tile(t);
        }
    }
}

/// Packs an `mc × kc` block of `A` into `MR`-row strips: strip `s` holds
/// `pa[s·MR·kc + kk·MR + r] = A[i0 + s·MR + r][k0 + kk]`, zero-padded in
/// `r` past `mc`. `a_t` selects the `[K,M]`-stored (`tn`) reading, which
/// is contiguous in `r`.
#[allow(clippy::too_many_arguments)]
fn pack_a<const MR: usize>(
    a_t: bool,
    a: &[f32],
    pa: &mut [f32],
    i0: usize,
    mc: usize,
    k0: usize,
    kc: usize,
    m: usize,
    k: usize,
) {
    let strips = mc.div_ceil(MR);
    for s in 0..strips {
        let base = s * MR * kc;
        let row0 = i0 + s * MR;
        let rows = (mc - s * MR).min(MR);
        let dst = &mut pa[base..base + MR * kc];
        if a_t {
            // A stored [K,M]: MR consecutive columns are contiguous.
            for kk in 0..kc {
                let src = &a[(k0 + kk) * m + row0..(k0 + kk) * m + row0 + rows];
                let d = &mut dst[kk * MR..kk * MR + MR];
                d[..rows].copy_from_slice(src);
                d[rows..].iter_mut().for_each(|x| *x = 0.0);
            }
        } else {
            // A stored [M,K]: read each row contiguously, scatter into
            // the strip interleave (writes stay inside the L1-resident
            // scratch).
            for r in 0..rows {
                let src = &a[(row0 + r) * k + k0..(row0 + r) * k + k0 + kc];
                for (kk, &v) in src.iter().enumerate() {
                    dst[kk * MR + r] = v;
                }
            }
            for r in rows..MR {
                for kk in 0..kc {
                    dst[kk * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Packs a `kc × nc` block of `B` into `NR`-column panels: panel `p`
/// holds `pb[p·NR·kc + kk·NR + j] = B[k0 + kk][j0 + p·NR + j]`,
/// zero-padded in `j` past `nc`. `b_t` selects the `[N,K]`-stored (`nt`)
/// reading, which is contiguous in `kk`.
#[allow(clippy::too_many_arguments)]
fn pack_b<const NR: usize>(
    b_t: bool,
    b: &[f32],
    pb: &mut [f32],
    j0: usize,
    nc: usize,
    k0: usize,
    kc: usize,
    n: usize,
    k: usize,
) {
    let panels = nc.div_ceil(NR);
    for p in 0..panels {
        let base = p * NR * kc;
        let col0 = j0 + p * NR;
        let cols = (nc - p * NR).min(NR);
        let dst = &mut pb[base..base + NR * kc];
        if b_t {
            // B stored [N,K]: each output column is a contiguous B row.
            for j in 0..cols {
                let src = &b[(col0 + j) * k + k0..(col0 + j) * k + k0 + kc];
                for (kk, &v) in src.iter().enumerate() {
                    dst[kk * NR + j] = v;
                }
            }
            for j in cols..NR {
                for kk in 0..kc {
                    dst[kk * NR + j] = 0.0;
                }
            }
        } else {
            // B stored [K,N]: NR consecutive columns are contiguous.
            for kk in 0..kc {
                let src = &b[(k0 + kk) * n + col0..(k0 + kk) * n + col0 + cols];
                let d = &mut dst[kk * NR..kk * NR + NR];
                d[..cols].copy_from_slice(src);
                d[cols..].iter_mut().for_each(|x| *x = 0.0);
            }
        }
    }
}

/// Writes the valid `mr × nr` corner of an accumulator tile into `C`.
///
/// # Safety
/// `(row0..row0+mr) × (col0..col0+nr)` must lie inside the `C` matrix
/// behind `c`, and no other thread may access that region concurrently.
#[allow(clippy::too_many_arguments)]
unsafe fn writeback<const MR: usize, const NR: usize>(
    c: SendPtr,
    n: usize,
    row0: usize,
    col0: usize,
    acc: &[[f32; NR]; MR],
    mr: usize,
    nr: usize,
    add: bool,
) {
    for (r, arow) in acc.iter().enumerate().take(mr) {
        let dst = c.0.add((row0 + r) * n + col0);
        if add {
            for (j, &v) in arow.iter().enumerate().take(nr) {
                *dst.add(j) += v;
            }
        } else {
            for (j, &v) in arow.iter().enumerate().take(nr) {
                *dst.add(j) = v;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel statistics (consumed by `stronghold-core`'s telemetry bridge).
// ---------------------------------------------------------------------------

/// Global per-layout kernel statistics: FLOPs, wall nanoseconds, and call
/// counts, accumulated by every GEMM dispatch.
///
/// This crate sits below the telemetry layer, so it exposes raw atomics
/// here and `stronghold-core` bridges them into `Telemetry` gauges
/// (including a derived GFLOP/s rate). Recording is always-on plain
/// atomic adds — it observes the kernels without perturbing their
/// results.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Layout names, indexed like the snapshot arrays.
    pub const LAYOUT_NAMES: [&str; 3] = ["nn", "nt", "tn"];

    static FLOPS: [AtomicU64; 3] = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
    static NANOS: [AtomicU64; 3] = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
    static CALLS: [AtomicU64; 3] = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

    pub(super) fn record(layout: usize, flops: u64, nanos: u64) {
        FLOPS[layout].fetch_add(flops, Ordering::Relaxed);
        NANOS[layout].fetch_add(nanos, Ordering::Relaxed);
        CALLS[layout].fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative statistics for one GEMM layout.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct LayoutStats {
        /// Total floating-point operations (`2·M·N·K` per call).
        pub flops: u64,
        /// Total wall nanoseconds spent inside the kernel.
        pub nanos: u64,
        /// Number of kernel invocations.
        pub calls: u64,
    }

    impl LayoutStats {
        /// Mean throughput in GFLOP/s over the recorded interval.
        pub fn gflops(&self) -> f64 {
            if self.nanos == 0 {
                0.0
            } else {
                self.flops as f64 / self.nanos as f64
            }
        }
    }

    /// Snapshot of all three layouts, indexed `[nn, nt, tn]`.
    pub fn snapshot() -> [LayoutStats; 3] {
        std::array::from_fn(|i| LayoutStats {
            flops: FLOPS[i].load(Ordering::Relaxed),
            nanos: NANOS[i].load(Ordering::Relaxed),
            calls: CALLS[i].load(Ordering::Relaxed),
        })
    }

    /// Resets all statistics to zero (tests and bench isolation).
    pub fn reset() {
        for i in 0..3 {
            FLOPS[i].store(0, Ordering::Relaxed);
            NANOS[i].store(0, Ordering::Relaxed);
            CALLS[i].store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Frozen pre-blocking baselines.
// ---------------------------------------------------------------------------

/// The seed (pre-blocking) kernels, frozen verbatim: row-parallel loops
/// with no packing, register tiling, or cache blocking, and the old
/// `M·N` parallel threshold. Kept **only** as the baseline the kernel
/// benchmark sweep reports speedups against — production paths always go
/// through the blocked engine.
pub mod seed {
    use super::dims2;
    use crate::tensor::Tensor;
    use rayon::prelude::*;

    /// The seed kernels' output-element parallel threshold.
    const PAR_THRESHOLD: usize = 8 * 1024;

    /// Seed `C = A·B`.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = dims2(a, "seed::matmul");
        let (kb, n) = dims2(b, "seed::matmul");
        assert_eq!(k, kb, "seed::matmul: inner dims {k} vs {kb}");
        let mut c = Tensor::zeros([m, n]);
        let (a, b) = (a.data(), b.data());
        let body = |i: usize, row: &mut [f32]| {
            let arow = &a[i * k..i * k + k];
            for (kk, &av) in arow.iter().enumerate() {
                if av != 0.0 {
                    let brow = &b[kk * n..kk * n + n];
                    for (cj, bj) in row.iter_mut().zip(brow.iter()) {
                        *cj += av * bj;
                    }
                }
            }
        };
        let cm = c.data_mut();
        if m * n >= PAR_THRESHOLD {
            cm.par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, r)| body(i, r));
        } else {
            cm.chunks_mut(n).enumerate().for_each(|(i, r)| body(i, r));
        }
        c
    }

    /// Seed `C = A·Bᵀ`.
    pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = dims2(a, "seed::matmul_nt");
        let (n, kb) = dims2(b, "seed::matmul_nt");
        assert_eq!(k, kb, "seed::matmul_nt: inner dims {k} vs {kb}");
        let mut c = Tensor::zeros([m, n]);
        let (a, b) = (a.data(), b.data());
        let body = |i: usize, row: &mut [f32]| {
            let arow = &a[i * k..i * k + k];
            for (j, cj) in row.iter_mut().enumerate() {
                let brow = &b[j * k..j * k + k];
                let mut sum = 0.0f32;
                for (x, y) in arow.iter().zip(brow.iter()) {
                    sum += x * y;
                }
                *cj = sum;
            }
        };
        let cm = c.data_mut();
        if m * n >= PAR_THRESHOLD {
            cm.par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, r)| body(i, r));
        } else {
            cm.chunks_mut(n).enumerate().for_each(|(i, r)| body(i, r));
        }
        c
    }

    /// Seed `C = Aᵀ·B`.
    pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
        let (k, m) = dims2(a, "seed::matmul_tn");
        let (kb, n) = dims2(b, "seed::matmul_tn");
        assert_eq!(k, kb, "seed::matmul_tn: inner dims {k} vs {kb}");
        let mut c = Tensor::zeros([m, n]);
        let (a, b) = (a.data(), b.data());
        let body = |i: usize, row: &mut [f32]| {
            for kk in 0..k {
                let av = a[kk * m + i];
                if av != 0.0 {
                    let brow = &b[kk * n..kk * n + n];
                    for (cj, bj) in row.iter_mut().zip(brow.iter()) {
                        *cj += av * bj;
                    }
                }
            }
        };
        let cm = c.data_mut();
        if m * n >= PAR_THRESHOLD {
            cm.par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, r)| body(i, r));
        } else {
            cm.chunks_mut(n).enumerate().for_each(|(i, r)| body(i, r));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};
    use proptest::prelude::*;

    fn transpose(t: &Tensor) -> Tensor {
        let (r, c) = (t.shape().dim(0), t.shape().dim(1));
        let mut out = Tensor::zeros([c, r]);
        for i in 0..r {
            for j in 0..c {
                *out.at_mut(&[j, i]) = t.at(&[i, j]);
            }
        }
        out
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let mut rng = seeded_rng(11);
        let a = normal([5, 7], 1.0, &mut rng);
        let bt = normal([4, 7], 1.0, &mut rng); // [N,K]
        let c1 = matmul_nt(&a, &bt);
        let c2 = matmul(&a, &transpose(&bt));
        assert!(c1.max_abs_diff(&c2) < 1e-5);
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let mut rng = seeded_rng(12);
        let at = normal([6, 3], 1.0, &mut rng); // [K,M]
        let b = normal([6, 5], 1.0, &mut rng);
        let c1 = matmul_tn(&at, &b);
        let c2 = matmul(&transpose(&at), &b);
        assert!(c1.max_abs_diff(&c2) < 1e-5);
    }

    #[test]
    fn tn_acc_accumulates() {
        let mut rng = seeded_rng(13);
        let a = normal([4, 3], 1.0, &mut rng);
        let b = normal([4, 2], 1.0, &mut rng);
        let once = matmul_tn(&a, &b);
        let mut twice = matmul_tn(&a, &b);
        matmul_tn_acc(&a, &b, &mut twice);
        for (x, y) in twice.data().iter().zip(once.data().iter()) {
            assert!((x - 2.0 * y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "matmul_tn: expected rank-2 tensor")]
    fn tn_rejects_rank_one_input() {
        let a = Tensor::from_vec([4], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec([2, 2], vec![1., 0., 0., 1.]);
        let _ = matmul_tn(&a, &b);
    }

    #[test]
    #[should_panic(expected = "matmul_tn: inner dims")]
    fn tn_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros([3, 4]);
        let b = Tensor::zeros([5, 2]);
        let _ = matmul_tn(&a, &b);
    }

    #[test]
    fn large_parallel_matches_naive() {
        let mut rng = seeded_rng(14);
        let a = normal([130, 70], 1.0, &mut rng);
        let b = normal([70, 90], 1.0, &mut rng);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn multi_kc_block_shapes_match_naive() {
        // k crosses the KC=256 boundary so tile partials accumulate into C
        // across blocks; m/n are deliberate non-multiples of every tile
        // shape in use.
        let mut rng = seeded_rng(15);
        let k = KC + 37;
        let a = normal([45, k], 1.0, &mut rng);
        let b = normal([k, 29], 1.0, &mut rng);
        let slow = matmul_naive(&a, &b);
        assert!(matmul(&a, &b).max_abs_diff(&slow) < 2e-4);
        assert!(matmul_nt(&a, &transpose(&b)).max_abs_diff(&slow) < 2e-4);
        assert!(matmul_tn(&transpose(&a), &b).max_abs_diff(&slow) < 2e-4);
    }

    #[test]
    fn degenerate_edges_match_naive() {
        // K=1, single-row, and single-column products exercise the
        // zero-padded partial tiles of every layout.
        let mut rng = seeded_rng(16);
        for (m, k, n) in [(7, 1, 9), (1, 13, 11), (12, 9, 1), (1, 1, 1)] {
            let a = normal([m, k], 1.0, &mut rng);
            let b = normal([k, n], 1.0, &mut rng);
            let slow = matmul_naive(&a, &b);
            assert!(matmul(&a, &b).max_abs_diff(&slow) < 1e-4, "nn {m}x{k}x{n}");
            assert!(
                matmul_nt(&a, &transpose(&b)).max_abs_diff(&slow) < 1e-4,
                "nt {m}x{k}x{n}"
            );
            assert!(
                matmul_tn(&transpose(&a), &b).max_abs_diff(&slow) < 1e-4,
                "tn {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        // The determinism contract: identical bits under pools of 1, 2,
        // and 8 threads. The shape exceeds PAR_FLOPS_THRESHOLD so the
        // parallel tile path actually engages.
        let mut rng = seeded_rng(17);
        let (m, k, n) = (193, 129, 187);
        assert!(2 * m * k * n >= PAR_FLOPS_THRESHOLD);
        let a = normal([m, k], 1.0, &mut rng);
        let bt = normal([n, k], 1.0, &mut rng);
        let at = normal([k, m], 1.0, &mut rng);
        let b = normal([k, n], 1.0, &mut rng);
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let bits =
                    |t: &Tensor| -> Vec<u32> { t.data().iter().map(|v| v.to_bits()).collect() };
                (
                    bits(&matmul(&a, &b)),
                    bits(&matmul_nt(&a, &bt)),
                    bits(&matmul_tn(&at, &b)),
                )
            })
        };
        let base = run(1);
        assert_eq!(base, run(2), "2-thread pool changed kernel bits");
        assert_eq!(base, run(8), "8-thread pool changed kernel bits");
    }

    #[test]
    fn seed_kernels_match_naive() {
        let mut rng = seeded_rng(18);
        let a = normal([33, 21], 1.0, &mut rng);
        let b = normal([21, 17], 1.0, &mut rng);
        let slow = matmul_naive(&a, &b);
        assert!(seed::matmul(&a, &b).max_abs_diff(&slow) < 1e-4);
        assert!(seed::matmul_nt(&a, &transpose(&b)).max_abs_diff(&slow) < 1e-4);
        assert!(seed::matmul_tn(&transpose(&a), &b).max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn stable_entries_match_naive() {
        let mut rng = seeded_rng(19);
        for (m, k, n) in [(1, 8, 8), (1, 1, 1), (3, 16, 5), (40, 33, 17)] {
            let a = normal([m, k], 1.0, &mut rng);
            let b = normal([k, n], 1.0, &mut rng);
            let bt = transpose(&b);
            let slow = matmul_naive(&a, &b);
            let mut c = vec![0.0f32; m * n];
            matmul_nn_stable(a.data(), b.data(), &mut c, m, k, n);
            let nn = Tensor::from_vec([m, n], c.clone());
            assert!(nn.max_abs_diff(&slow) < 1e-4, "nn {m}x{k}x{n}");
            matmul_nt_stable(a.data(), bt.data(), &mut c, m, k, n);
            let nt = Tensor::from_vec([m, n], c);
            assert!(nt.max_abs_diff(&slow) < 1e-4, "nt {m}x{k}x{n}");
        }
    }

    #[test]
    fn stable_row_bits_invariant_to_batch_shape() {
        // The serving contract: a row's output bits may not depend on how
        // many other rows (m) or columns (n) ride the same product. Compute
        // row r of an [M,K]x[N,K]^T product alone ([1,K] against the full B,
        // and against a single column of B) and inside the full batch; the
        // bits must agree. The shapes straddle SMALL_FLOPS_THRESHOLD, where
        // the size-dispatched kernels would change accumulation order.
        let mut rng = seeded_rng(20);
        for (mm, k, n) in [(5, 8, 12), (7, 32, 96), (3, 300, 11)] {
            let a = normal([mm, k], 1.0, &mut rng);
            let bt = normal([n, k], 1.0, &mut rng);
            let mut full = vec![0.0f32; mm * n];
            matmul_nt_stable(a.data(), bt.data(), &mut full, mm, k, n);
            for r in 0..mm {
                let arow = &a.data()[r * k..(r + 1) * k];
                let mut solo = vec![0.0f32; n];
                matmul_nt_stable(arow, bt.data(), &mut solo, 1, k, n);
                for j in 0..n {
                    assert_eq!(
                        solo[j].to_bits(),
                        full[r * n + j].to_bits(),
                        "row bits depend on m: {mm}x{k}x{n} row {r} col {j}"
                    );
                    let mut one = [0.0f32];
                    matmul_nt_stable(arow, &bt.data()[j * k..(j + 1) * k], &mut one, 1, k, 1);
                    assert_eq!(
                        one[0].to_bits(),
                        full[r * n + j].to_bits(),
                        "element bits depend on n: {mm}x{k}x{n} row {r} col {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_accumulate_flops_and_calls() {
        let before = stats::snapshot();
        let a = Tensor::zeros([8, 8]);
        let b = Tensor::zeros([8, 8]);
        let _ = matmul(&a, &b);
        let after = stats::snapshot();
        assert_eq!(after[0].calls, before[0].calls + 1);
        assert_eq!(after[0].flops, before[0].flops + 2 * 8 * 8 * 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_matmul_matches_naive(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000) {
            let mut rng = seeded_rng(seed);
            let a = normal([m, k], 1.0, &mut rng);
            let b = normal([k, n], 1.0, &mut rng);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
        }

        #[test]
        fn prop_matmul_nt_matches_naive(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000) {
            let mut rng = seeded_rng(seed);
            let a = normal([m, k], 1.0, &mut rng);
            let bt = normal([n, k], 1.0, &mut rng);
            let fast = matmul_nt(&a, &bt);
            let slow = matmul_naive(&a, &transpose(&bt));
            prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
        }

        #[test]
        fn prop_matmul_tn_matches_naive(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000) {
            let mut rng = seeded_rng(seed);
            let at = normal([k, m], 1.0, &mut rng);
            let b = normal([k, n], 1.0, &mut rng);
            let fast = matmul_tn(&at, &b);
            let slow = matmul_naive(&transpose(&at), &b);
            prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
        }

        #[test]
        fn prop_identity_is_noop(m in 1usize..16, n in 1usize..16, seed in 0u64..1000) {
            let mut rng = seeded_rng(seed);
            let a = normal([m, n], 1.0, &mut rng);
            let mut eye = Tensor::zeros([n, n]);
            for i in 0..n { *eye.at_mut(&[i, i]) = 1.0; }
            let c = matmul(&a, &eye);
            prop_assert!(c.max_abs_diff(&a) < 1e-6);
        }
    }
}
