//! Dense `f32` tensors.

use crate::shape::Shape;
use crate::{Result, TensorError};

/// A dense, contiguous, row-major `f32` tensor.
///
/// Storage is a plain `Vec<f32>`; cloning copies the data. The STRONGHOLD
/// runtime moves tensors between simulated memory spaces by copying their
/// backing slices, mirroring `tensor.copy_()` in the original implementation
/// (Section III-E3).
///
/// # Examples
///
/// ```
/// use stronghold_tensor::Tensor;
///
/// let mut t = Tensor::zeros([2, 3]);
/// *t.at_mut(&[1, 2]) = 7.0;
/// assert_eq!(t.at(&[1, 2]), 7.0);
/// assert_eq!(t.numel(), 6);
/// assert_eq!(t.nbytes(), 24);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Size of the backing storage in bytes.
    #[inline]
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Immutable view of the backing data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Mutable element at a multi-dimensional index.
    #[inline]
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.shape.offset(idx);
        &mut self.data[off]
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != self.shape.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "reshape",
                detail: format!("{} -> {}", self.shape, shape),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Copies `src`'s contents into this tensor (shapes must match).
    ///
    /// This is the analogue of PyTorch's `tensor.copy_()`, used by the
    /// buffer pool when recycling device buffers.
    pub fn copy_from(&mut self, src: &Tensor) -> Result<()> {
        if !self.shape.same(src.shape()) {
            return Err(TensorError::ShapeMismatch {
                op: "copy_from",
                detail: format!("{} <- {}", self.shape, src.shape),
            });
        }
        self.data.copy_from_slice(&src.data);
        Ok(())
    }

    /// Reshapes in place to `shape`, reusing the backing allocation
    /// (growing it only when needed). Retained elements keep their old
    /// values and grown elements are zero; callers are expected to
    /// overwrite the contents. This is the workhorse of the scratch
    /// buffer pool — steady-state reuse performs no allocation.
    pub fn reset_for(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        self.data.resize(shape.numel(), 0.0);
        self.shape = shape;
    }

    /// Fills the tensor with zeros in place.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Returns the maximum absolute difference to another tensor.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert!(self.shape.same(other.shape()));
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Sum of all elements (sequential, deterministic order).
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L2 norm of the tensor viewed as a flat vector.
    pub fn l2_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|x| (*x as f64).powi(2))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// True if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor({}, {} elems", self.shape, self.numel())?;
        if self.numel() <= 8 {
            write!(f, ", {:?}", self.data)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full([2, 2], 3.5);
        assert!(f.data().iter().all(|&x| x == 3.5));
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros([2, 3]);
        *t.at_mut(&[1, 2]) = 7.0;
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.data()[5], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.at(&[2, 1]), 6.0);
    }

    #[test]
    fn reshape_bad_numel_fails() {
        let t = Tensor::zeros([2, 3]);
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn copy_from_matches() {
        let src = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let mut dst = Tensor::zeros([2, 2]);
        dst.copy_from(&src).unwrap();
        assert_eq!(dst, src);
    }

    #[test]
    fn copy_from_shape_mismatch() {
        let src = Tensor::zeros([2, 2]);
        let mut dst = Tensor::zeros([4]);
        assert!(dst.copy_from(&src).is_err());
    }

    #[test]
    fn norms_and_stats() {
        let t = Tensor::from_vec([4], vec![3., 4., 0., 0.]);
        assert!((t.l2_norm() - 5.0).abs() < 1e-6);
        assert_eq!(t.sum(), 7.0);
        assert_eq!(t.mean(), 1.75);
        assert!(t.all_finite());
        let bad = Tensor::from_vec([1], vec![f32::NAN]);
        assert!(!bad.all_finite());
    }

    #[test]
    fn nbytes() {
        assert_eq!(Tensor::zeros([10]).nbytes(), 40);
    }
}
