//! Token + positional embedding with scatter-add backward.

use rand_chacha::ChaCha8Rng;

use crate::init;
use crate::tensor::Tensor;

/// Token and learned positional embedding table.
#[derive(Clone, Debug)]
pub struct Embedding {
    /// Token embedding `[vocab, hidden]`.
    pub token: Tensor,
    /// Positional embedding `[max_seq, hidden]`.
    pub position: Tensor,
}

/// Gradients of an [`Embedding`].
#[derive(Clone, Debug)]
pub struct EmbeddingGrads {
    /// Token table gradient.
    pub token: Tensor,
    /// Position table gradient.
    pub position: Tensor,
}

impl Embedding {
    /// Creates an embedding for `vocab` tokens, sequences up to `max_seq`,
    /// hidden size `hidden`.
    pub fn new(vocab: usize, max_seq: usize, hidden: usize, rng: &mut ChaCha8Rng) -> Self {
        Embedding {
            token: init::gpt2_normal([vocab, hidden], rng),
            position: init::gpt2_normal([max_seq, hidden], rng),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.token.shape().dim(0)
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.token.shape().dim(1)
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.token.numel() + self.position.numel()
    }

    /// Embeds a token sequence: `tokens: [T] -> [T, H]`.
    ///
    /// # Panics
    /// Panics if any token id is out of vocabulary or `T` exceeds the
    /// positional table.
    pub fn forward(&self, tokens: &[u32]) -> Tensor {
        let h = self.hidden();
        let t = tokens.len();
        assert!(
            t <= self.position.shape().dim(0),
            "sequence longer than positional table"
        );
        let mut out = Tensor::zeros([t, h]);
        for (i, &tok) in tokens.iter().enumerate() {
            let tok = tok as usize;
            assert!(
                tok < self.vocab(),
                "token {tok} out of vocab {}",
                self.vocab()
            );
            let te = &self.token.data()[tok * h..(tok + 1) * h];
            let pe = &self.position.data()[i * h..(i + 1) * h];
            let row = &mut out.data_mut()[i * h..(i + 1) * h];
            for ((r, a), b) in row.iter_mut().zip(te.iter()).zip(pe.iter()) {
                *r = a + b;
            }
        }
        out
    }

    /// Embeds a token run starting at absolute position `pos0` into a
    /// reusable output: row `i` is `token[tokens[i]] + position[pos0 + i]`.
    /// The serving decode path feeds mid-sequence token runs (a single
    /// decoded token, or a freshly admitted prompt) whose positions don't
    /// start at zero.
    ///
    /// # Panics
    /// Panics if any token id is out of vocabulary or `pos0 + T` exceeds
    /// the positional table.
    pub fn forward_at_into(&self, tokens: &[u32], pos0: usize, out: &mut Tensor) {
        let h = self.hidden();
        let t = tokens.len();
        assert!(
            pos0 + t <= self.position.shape().dim(0),
            "sequence longer than positional table"
        );
        out.reset_for([t, h]);
        for (i, &tok) in tokens.iter().enumerate() {
            let tok = tok as usize;
            assert!(
                tok < self.vocab(),
                "token {tok} out of vocab {}",
                self.vocab()
            );
            let te = &self.token.data()[tok * h..(tok + 1) * h];
            let pe = &self.position.data()[(pos0 + i) * h..(pos0 + i + 1) * h];
            let row = &mut out.data_mut()[i * h..(i + 1) * h];
            for ((r, a), b) in row.iter_mut().zip(te.iter()).zip(pe.iter()) {
                *r = a + b;
            }
        }
    }

    /// Backward: scatter-adds `dy [T, H]` into the token/position tables.
    pub fn backward(&self, dy: &Tensor, tokens: &[u32], grads: &mut EmbeddingGrads) {
        let h = self.hidden();
        for (i, &tok) in tokens.iter().enumerate() {
            let tok = tok as usize;
            let dyr = &dy.data()[i * h..(i + 1) * h];
            let tg = &mut grads.token.data_mut()[tok * h..(tok + 1) * h];
            for (g, d) in tg.iter_mut().zip(dyr.iter()) {
                *g += d;
            }
            let pg = &mut grads.position.data_mut()[i * h..(i + 1) * h];
            for (g, d) in pg.iter_mut().zip(dyr.iter()) {
                *g += d;
            }
        }
    }

    /// Allocates zeroed gradients.
    pub fn zero_grads(&self) -> EmbeddingGrads {
        EmbeddingGrads {
            token: Tensor::zeros(*self.token.shape()),
            position: Tensor::zeros(*self.position.shape()),
        }
    }
}

impl EmbeddingGrads {
    /// Resets gradients to zero.
    pub fn zero_(&mut self) {
        self.token.zero_();
        self.position.zero_();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn forward_is_token_plus_position() {
        let emb = Embedding::new(10, 4, 3, &mut seeded_rng(50));
        let y = emb.forward(&[2, 7]);
        for j in 0..3 {
            assert_eq!(
                y.at(&[0, j]),
                emb.token.at(&[2, j]) + emb.position.at(&[0, j])
            );
            assert_eq!(
                y.at(&[1, j]),
                emb.token.at(&[7, j]) + emb.position.at(&[1, j])
            );
        }
    }

    #[test]
    fn backward_scatter_adds() {
        let emb = Embedding::new(6, 4, 2, &mut seeded_rng(51));
        let mut grads = emb.zero_grads();
        let dy = Tensor::from_vec([3, 2], vec![1., 2., 3., 4., 5., 6.]);
        // Token 1 appears at positions 0 and 2.
        emb.backward(&dy, &[1, 4, 1], &mut grads);
        assert_eq!(grads.token.at(&[1, 0]), 1.0 + 5.0);
        assert_eq!(grads.token.at(&[1, 1]), 2.0 + 6.0);
        assert_eq!(grads.token.at(&[4, 0]), 3.0);
        assert_eq!(grads.position.at(&[2, 1]), 6.0);
        assert_eq!(grads.position.at(&[3, 0]), 0.0);
    }

    #[test]
    fn forward_at_matches_offset_rows() {
        let emb = Embedding::new(10, 6, 3, &mut seeded_rng(53));
        let full = emb.forward(&[2, 7, 1, 4]);
        let mut out = Tensor::zeros([1]);
        emb.forward_at_into(&[1, 4], 2, &mut out);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(out.at(&[i, j]).to_bits(), full.at(&[2 + i, j]).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "longer than positional table")]
    fn forward_at_rejects_position_overflow() {
        let emb = Embedding::new(4, 4, 2, &mut seeded_rng(54));
        let mut out = Tensor::zeros([1]);
        emb.forward_at_into(&[1, 2], 3, &mut out);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn oov_panics() {
        let emb = Embedding::new(4, 4, 2, &mut seeded_rng(52));
        let _ = emb.forward(&[9]);
    }
}
