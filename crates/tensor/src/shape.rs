//! Tensor shapes and index arithmetic.
//!
//! Tensors in this crate are dense, contiguous and row-major. A [`Shape`] is
//! a small inline list of dimension extents (rank ≤ 4 covers everything a
//! transformer needs: `[tokens, hidden]`, `[batch, tokens, hidden]`,
//! `[heads, tokens, tokens]`, ...).

/// Maximum tensor rank supported by this crate.
pub const MAX_RANK: usize = 4;

/// A dense row-major tensor shape (rank ≤ [`MAX_RANK`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Creates a shape from a slice of extents.
    ///
    /// # Panics
    /// Panics if `dims.len() > MAX_RANK`.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds MAX_RANK {}",
            dims.len(),
            MAX_RANK
        );
        let mut d = [1usize; MAX_RANK];
        d[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: d,
            rank: dims.len() as u8,
        }
    }

    /// Shape of a scalar (rank 0, one element).
    pub fn scalar() -> Self {
        Shape::new(&[])
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Extent of dimension `i`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        assert!(i < self.rank(), "dim {} out of rank {}", i, self.rank());
        self.dims[i]
    }

    /// The extents as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank()]
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> [usize; MAX_RANK] {
        let mut s = [1usize; MAX_RANK];
        let r = self.rank();
        if r > 0 {
            for i in (0..r - 1).rev() {
                s[i] = s[i + 1] * self.dims[i + 1];
            }
        }
        s
    }

    /// Linear offset of a multi-dimensional index.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.rank());
        let strides = self.strides();
        idx.iter().zip(strides.iter()).map(|(i, s)| i * s).sum()
    }

    /// True if both shapes have identical rank and extents.
    #[inline]
    pub fn same(&self, other: &Shape) -> bool {
        self == other
    }

    /// Interprets the shape as 2-D `[rows, cols]`, folding any leading
    /// dimensions into `rows`. A rank-1 shape becomes `[1, n]`.
    pub fn as_2d(&self) -> (usize, usize) {
        match self.rank() {
            0 => (1, 1),
            1 => (1, self.dims[0]),
            r => {
                let cols = self.dims[r - 1];
                (self.numel() / cols, cols)
            }
        }
    }
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_dims() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.dims(), &[2, 3, 4]);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(&s.strides()[..3], &[12, 4, 1]);
    }

    #[test]
    fn offset_matches_manual() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.as_2d(), (1, 1));
    }

    #[test]
    fn as_2d_folds_leading() {
        assert_eq!(Shape::new(&[2, 3, 4]).as_2d(), (6, 4));
        assert_eq!(Shape::new(&[5]).as_2d(), (1, 5));
        assert_eq!(Shape::new(&[7, 9]).as_2d(), (7, 9));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_RANK")]
    fn rank_limit_enforced() {
        let _ = Shape::new(&[1, 2, 3, 4, 5]);
    }
}
