//! Cross-entropy loss over logits with fused softmax backward.

use crate::ops::{scale_assign, softmax_rows};
use crate::tensor::Tensor;

/// Computes mean cross-entropy of `logits [T, V]` against `targets [T]` and
/// the gradient w.r.t. the logits.
///
/// The gradient of mean CE through the softmax is `(softmax(z) - onehot)/T`,
/// computed in closed form (numerically stable, no explicit log of small
/// probabilities beyond the selected class).
pub fn cross_entropy(logits: &Tensor, targets: &[u32]) -> (f32, Tensor) {
    let (t, v) = logits.shape().as_2d();
    assert_eq!(
        t,
        targets.len(),
        "cross_entropy: {t} rows vs {} targets",
        targets.len()
    );
    // The probabilities double as the gradient buffer: the loss reads the
    // target-class probability before the in-place `p - onehot` update, so
    // no second [T, V] tensor is ever materialized.
    let mut dlogits = softmax_rows(logits);
    let mut loss = 0.0f64;
    let inv_t = 1.0 / t as f32;
    for (i, &tgt) in targets.iter().enumerate() {
        let tgt = tgt as usize;
        assert!(tgt < v, "target {tgt} out of vocab {v}");
        let p = dlogits.data()[i * v + tgt].max(1e-30);
        loss -= (p as f64).ln();
        dlogits.data_mut()[i * v + tgt] -= 1.0;
    }
    scale_assign(&mut dlogits, inv_t);
    ((loss / t as f64) as f32, dlogits)
}

/// Perplexity corresponding to a mean cross-entropy value.
pub fn perplexity(mean_ce: f32) -> f32 {
    mean_ce.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};

    #[test]
    fn uniform_logits_give_log_v() {
        let logits = Tensor::zeros([4, 8]);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_low_loss() {
        let mut logits = Tensor::zeros([1, 4]);
        *logits.at_mut(&[0, 2]) = 20.0;
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = normal([3, 5], 1.0, &mut seeded_rng(60));
        let targets = [1u32, 4, 0];
        let (_, grad) = cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (lossp, _) = cross_entropy(&lp, &targets);
            let (lossm, _) = cross_entropy(&lm, &targets);
            let num = (lossp - lossm) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "dlogits[{i}]");
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = normal([4, 7], 2.0, &mut seeded_rng(61));
        let (_, grad) = cross_entropy(&logits, &[0, 1, 2, 3]);
        for r in 0..4 {
            let s: f32 = grad.data()[r * 7..(r + 1) * 7].iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn perplexity_of_zero_loss_is_one() {
        assert!((perplexity(0.0) - 1.0).abs() < 1e-6);
    }
}
