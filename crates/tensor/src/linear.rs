//! Fully-connected (linear) layer with explicit forward/backward.

use rand_chacha::ChaCha8Rng;

use crate::init;
use crate::matmul::{matmul_into, matmul_nt_into, matmul_nt_stable, matmul_tn_acc};
use crate::ops::{add_bias, bias_grad_acc};
use crate::scratch;
use crate::tensor::Tensor;

/// A linear layer `y = x · Wᵀ + b` with `W: [out, in]`, `b: [out]`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight matrix, one row per output feature.
    pub weight: Tensor,
    /// Bias vector.
    pub bias: Tensor,
}

/// Gradients of a [`Linear`] layer.
#[derive(Clone, Debug)]
pub struct LinearGrads {
    /// Gradient of the weight.
    pub weight: Tensor,
    /// Gradient of the bias.
    pub bias: Tensor,
}

impl Linear {
    /// Creates a layer with GPT-2 style N(0, 0.02²) weights and zero bias.
    pub fn new(out_features: usize, in_features: usize, rng: &mut ChaCha8Rng) -> Self {
        Linear {
            weight: init::gpt2_normal([out_features, in_features], rng),
            bias: Tensor::zeros([out_features]),
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.shape().dim(0)
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.shape().dim(1)
    }

    /// Number of parameters (weights + bias).
    pub fn param_count(&self) -> usize {
        self.weight.numel() + self.bias.numel()
    }

    /// Forward pass: `x [T, in] -> y [T, out]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut y = scratch::empty();
        self.forward_into(x, &mut y);
        y
    }

    /// [`Linear::forward`] writing into a reusable output tensor.
    pub fn forward_into(&self, x: &Tensor, y: &mut Tensor) {
        matmul_nt_into(x, &self.weight, y);
        add_bias(y, &self.bias);
    }

    /// [`Linear::forward_into`] with batch-stable bits: the product goes
    /// through [`matmul_nt_stable`], so one row's output bits do not depend
    /// on how many rows ride the same call — the serving contract that lets
    /// a single-token decode reproduce a prefill row exactly.
    pub fn forward_stable_into(&self, x: &Tensor, y: &mut Tensor) {
        let (t, k) = x.shape().as_2d();
        assert_eq!(k, self.in_features(), "forward_stable: in dim");
        y.reset_for([t, self.out_features()]);
        matmul_nt_stable(
            x.data(),
            self.weight.data(),
            y.data_mut(),
            t,
            k,
            self.out_features(),
        );
        add_bias(y, &self.bias);
    }

    /// Backward pass.
    ///
    /// Given upstream `dy [T, out]` and saved input `x [T, in]`, returns
    /// `dx [T, in]` and accumulates weight/bias gradients into `grads`.
    pub fn backward(&self, dy: &Tensor, x: &Tensor, grads: &mut LinearGrads) -> Tensor {
        let mut dx = scratch::empty();
        self.backward_into(dy, x, grads, &mut dx);
        dx
    }

    /// [`Linear::backward`] writing `dx` into a reusable output tensor.
    pub fn backward_into(&self, dy: &Tensor, x: &Tensor, grads: &mut LinearGrads, dx: &mut Tensor) {
        // dx = dy · W          ([T,out] · [out,in])
        matmul_into(dy, &self.weight, dx);
        // dW += dyᵀ · x        ([out,T] · [T,in])
        matmul_tn_acc(dy, x, &mut grads.weight);
        bias_grad_acc(dy, &mut grads.bias);
    }

    /// Allocates a zeroed gradient buffer matching this layer.
    pub fn zero_grads(&self) -> LinearGrads {
        LinearGrads {
            weight: Tensor::zeros(*self.weight.shape()),
            bias: Tensor::zeros(*self.bias.shape()),
        }
    }
}

impl LinearGrads {
    /// Resets gradients to zero in place.
    pub fn zero_(&mut self) {
        self.weight.zero_();
        self.bias.zero_();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};

    #[test]
    fn forward_known_values() {
        let mut l = Linear::new(2, 3, &mut seeded_rng(0));
        l.weight = Tensor::from_vec([2, 3], vec![1., 0., 0., 0., 1., 0.]);
        l.bias = Tensor::from_vec([2], vec![10., 20.]);
        let x = Tensor::from_vec([1, 3], vec![1., 2., 3.]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[11., 22.]);
    }

    #[test]
    fn gradient_check_weights_and_input() {
        let mut rng = seeded_rng(31);
        let l = Linear::new(5, 4, &mut rng);
        let x = normal([3, 4], 1.0, &mut rng);
        let w = normal([3, 5], 1.0, &mut rng); // loss weights

        let loss = |layer: &Linear, xin: &Tensor| -> f32 {
            let y = layer.forward(xin);
            y.data()
                .iter()
                .zip(w.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };

        let mut grads = l.zero_grads();
        let dx = l.backward(&w, &x, &mut grads);

        // Input gradient by finite differences.
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-2, "dx[{i}]");
        }
        // Weight gradient by finite differences (sampled).
        for i in (0..l.weight.numel()).step_by(3) {
            let mut lp = l.clone();
            lp.weight.data_mut()[i] += eps;
            let mut lm = l.clone();
            lm.weight.data_mut()[i] -= eps;
            let num = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            assert!((num - grads.weight.data()[i]).abs() < 1e-2, "dW[{i}]");
        }
        // Bias gradient: db = Σ_rows w.
        for j in 0..5 {
            let expect: f32 = (0..3).map(|r| w.data()[r * 5 + j]).sum();
            assert!((grads.bias.data()[j] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_accumulates() {
        let mut rng = seeded_rng(32);
        let l = Linear::new(3, 3, &mut rng);
        let x = normal([2, 3], 1.0, &mut rng);
        let dy = normal([2, 3], 1.0, &mut rng);
        let mut g1 = l.zero_grads();
        l.backward(&dy, &x, &mut g1);
        let mut g2 = l.zero_grads();
        l.backward(&dy, &x, &mut g2);
        l.backward(&dy, &x, &mut g2);
        for (a, b) in g2.weight.data().iter().zip(g1.weight.data().iter()) {
            assert!((a - 2.0 * b).abs() < 1e-5);
        }
    }

    #[test]
    fn param_count() {
        let l = Linear::new(7, 5, &mut seeded_rng(33));
        assert_eq!(l.param_count(), 7 * 5 + 7);
    }
}
