//! Software IEEE 754 binary16 (fp16).
//!
//! The paper's baselines lean on half precision — L2L keeps optimizer state
//! in fp16 on-device, ZeRO keeps fp16 parameter/gradient shards — and the
//! related-work discussion covers low-precision model states (§II, §VII).
//! This module provides a dependency-free binary16 with round-to-nearest-
//! even conversion and a compact tensor storage type, so the repository can
//! express those storage formats and quantify their rounding behaviour.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Encodes an `f32` as IEEE binary16 bits (round-to-nearest-even, IEEE
/// overflow to infinity, subnormal support).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Inf / NaN.
        return if mant == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00 // quiet NaN
        };
    }
    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        return sign | 0x7C00; // overflow -> inf
    }
    if e >= -14 {
        // Normal half.
        let half_exp = (e + 15) as u16;
        let half_mant = (mant >> 13) as u16;
        let mut h = sign | (half_exp << 10) | half_mant;
        // Round to nearest even on the truncated 13 bits.
        let rem = mant & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && (half_mant & 1) == 1) {
            h = h.wrapping_add(1); // may carry into exponent: IEEE-correct
        }
        return h;
    }
    if e >= -24 {
        // Subnormal half.
        let full_mant = mant | 0x80_0000; // implicit leading 1
        let shift = (-14 - e + 13) as u32; // bits dropped
        let half_mant = (full_mant >> shift) as u16;
        let rem = full_mant & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut h = sign | half_mant;
        if rem > halfway || (rem == halfway && (half_mant & 1) == 1) {
            h = h.wrapping_add(1);
        }
        return h;
    }
    sign // underflow to signed zero
}

/// Decodes IEEE binary16 bits to `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x3FF) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value = m × 2⁻²⁴ = 0.m × 2⁻¹⁴; normalize.
            let mut e = -14i32;
            let mut m = m;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x3FF;
            sign | (((e + 127) as u32) << 23) | (m << 13)
        }
        (0x1F, 0) => sign | 0x7F80_0000,
        (0x1F, m) => sign | 0x7F80_0000 | (m << 13),
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Rounds an `f32` through fp16 (the rounding a half-precision store/load
/// pair applies).
pub fn round_through_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// A tensor stored as packed fp16, half the bytes of [`Tensor`].
#[derive(Clone, Debug, PartialEq)]
pub struct F16Tensor {
    shape: Shape,
    data: Vec<u16>,
}

impl F16Tensor {
    /// Quantizes an `f32` tensor to fp16 storage.
    pub fn from_tensor(t: &Tensor) -> Self {
        F16Tensor {
            shape: *t.shape(),
            data: t.data().iter().map(|v| f32_to_f16_bits(*v)).collect(),
        }
    }

    /// Dequantizes back to `f32`.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(
            self.shape,
            self.data.iter().map(|h| f16_bits_to_f32(*h)).collect(),
        )
    }

    /// Shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Storage bytes (2 per element).
    pub fn nbytes(&self) -> usize {
        self.data.len() * 2
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};
    use proptest::prelude::*;

    #[test]
    fn exact_values_round_trip() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25] {
            assert_eq!(round_through_f16(v), v, "{v}");
        }
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
    }

    #[test]
    fn known_encodings() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // max finite half
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(1e9), 0x7C00, "overflow to inf");
        assert_eq!(f32_to_f16_bits(5.960_464_5e-8), 0x0001, "min subnormal");
    }

    #[test]
    fn nan_stays_nan() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between two halves around 1.0;
        // nearest-even keeps 1.0.
        let halfway = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(round_through_f16(halfway), 1.0);
        // Just above halfway rounds up to 1 + 2^-10.
        let above = 1.0 + 2.0_f32.powi(-11) + 2.0_f32.powi(-13);
        assert_eq!(round_through_f16(above), 1.0 + 2.0_f32.powi(-10));
    }

    #[test]
    fn tensor_storage_halves_bytes() {
        let t = normal([32, 16], 1.0, &mut seeded_rng(8));
        let h = F16Tensor::from_tensor(&t);
        assert_eq!(h.nbytes() * 2, t.nbytes());
        let back = h.to_tensor();
        // Relative error bounded by the fp16 epsilon (2^-11 ≈ 4.9e-4).
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= a.abs() * 6e-4 + 1e-7, "{a} vs {b}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn prop_round_trip_error_bounded(x in -60000.0f32..60000.0) {
            let y = round_through_f16(x);
            // Max relative error of binary16 in the normal range is 2^-11;
            // near zero values flush toward the subnormal grid.
            prop_assert!((x - y).abs() <= x.abs() / 2048.0 + 6e-8, "{x} -> {y}");
        }

        #[test]
        fn prop_idempotent(x in proptest::num::f32::NORMAL) {
            let once = round_through_f16(x);
            let twice = round_through_f16(once);
            prop_assert!(once.to_bits() == twice.to_bits() || (once.is_infinite() && twice.is_infinite()));
        }

        #[test]
        fn prop_monotone(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(round_through_f16(lo) <= round_through_f16(hi));
        }
    }
}
