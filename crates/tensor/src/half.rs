//! Software half-precision storage formats: IEEE 754 binary16 (fp16) and
//! bfloat16, plus the packed buffers the mixed-precision runtime streams.
//!
//! The paper's baselines lean on half precision — L2L keeps optimizer state
//! in fp16 on-device, ZeRO keeps fp16 parameter/gradient shards — and the
//! related-work discussion covers low-precision model states (§II, §VII).
//! This module provides dependency-free binary16 and bfloat16 with
//! round-to-nearest-even conversion, compact tensor storage types, and
//! [`PackedHalf`], the flat packed transfer buffer the offload runtime uses
//! to halve H2D/D2H traffic while FP32 master weights stay CPU-side.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Storage precision of streamed (device-resident) parameters and
/// gradients. FP32 master weights and Adam moments always stay full
/// precision CPU-side; this selects the on-the-wire / on-device format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full f32 residency and transfers (the bit-identical reference mode).
    #[default]
    F32,
    /// bfloat16: f32's 8-bit exponent with an 8-bit mantissa — same dynamic
    /// range, coarser grid. The default half mode for training.
    Bf16,
    /// IEEE binary16: 5-bit exponent, 11-bit mantissa — finer grid, narrow
    /// range (overflows above 65504).
    F16,
}

impl Precision {
    /// Bytes per streamed parameter/gradient element.
    pub const fn param_bytes(self) -> u64 {
        match self {
            Precision::F32 => 4,
            Precision::Bf16 | Precision::F16 => 2,
        }
    }

    /// Whether this mode stores streamed data in 16 bits.
    pub const fn is_half(self) -> bool {
        !matches!(self, Precision::F32)
    }

    /// Stable lowercase name (bench rows, checkpoint diagnostics).
    pub const fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
            Precision::F16 => "f16",
        }
    }

    /// Stable one-byte encoding for the SHTS checkpoint header.
    pub const fn tag(self) -> u8 {
        match self {
            Precision::F32 => 0,
            Precision::Bf16 => 1,
            Precision::F16 => 2,
        }
    }

    /// Decodes [`Precision::tag`]; `None` for unknown tags.
    pub const fn from_tag(tag: u8) -> Option<Precision> {
        match tag {
            0 => Some(Precision::F32),
            1 => Some(Precision::Bf16),
            2 => Some(Precision::F16),
            _ => None,
        }
    }
}

/// Encodes an `f32` as IEEE binary16 bits (round-to-nearest-even, IEEE
/// overflow to infinity, subnormal support).
#[inline(always)]
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Inf / NaN.
        return if mant == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00 // quiet NaN
        };
    }
    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        return sign | 0x7C00; // overflow -> inf
    }
    if e >= -14 {
        // Normal half.
        let half_exp = (e + 15) as u16;
        let half_mant = (mant >> 13) as u16;
        let mut h = sign | (half_exp << 10) | half_mant;
        // Round to nearest even on the truncated 13 bits.
        let rem = mant & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && (half_mant & 1) == 1) {
            h = h.wrapping_add(1); // may carry into exponent: IEEE-correct
        }
        return h;
    }
    if e >= -24 {
        // Subnormal half.
        let full_mant = mant | 0x80_0000; // implicit leading 1
        let shift = (-14 - e + 13) as u32; // bits dropped
        let half_mant = (full_mant >> shift) as u16;
        let rem = full_mant & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut h = sign | half_mant;
        if rem > halfway || (rem == halfway && (half_mant & 1) == 1) {
            h = h.wrapping_add(1);
        }
        return h;
    }
    sign // underflow to signed zero
}

/// Decodes IEEE binary16 bits to `f32`.
#[inline(always)]
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x3FF) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value = m × 2⁻²⁴ = 0.m × 2⁻¹⁴; normalize.
            let mut e = -14i32;
            let mut m = m;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x3FF;
            sign | (((e + 127) as u32) << 23) | (m << 13)
        }
        (0x1F, 0) => sign | 0x7F80_0000,
        (0x1F, m) => sign | 0x7F80_0000 | (m << 13),
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Rounds an `f32` through fp16 (the rounding a half-precision store/load
/// pair applies).
#[inline(always)]
pub fn round_through_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Encodes an `f32` as bfloat16 bits: round-to-nearest-even truncation of
/// the low 16 mantissa bits. Infinities and signed zeros pass through
/// exactly; NaNs are quieted with a non-zero payload so they never collapse
/// to an infinity encoding.
#[inline(always)]
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if bits & 0x7FFF_FFFF > 0x7F80_0000 {
        // NaN: keep the sign, force the quiet bit.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round to nearest even: add half of the dropped range, plus one more
    // when the kept lsb is odd so exact ties round to the even neighbour.
    (bits.wrapping_add(0x7FFF + ((bits >> 16) & 1)) >> 16) as u16
}

/// Decodes bfloat16 bits to `f32` (exact: bf16 values are a subset of f32).
#[inline(always)]
pub fn bf16_bits_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// Rounds an `f32` through bfloat16 (the rounding a bf16 store/load pair
/// applies).
#[inline(always)]
pub fn round_through_bf16(x: f32) -> f32 {
    bf16_bits_to_f32(f32_to_bf16_bits(x))
}

/// A tensor stored as packed fp16, half the bytes of [`Tensor`].
#[derive(Clone, Debug, PartialEq)]
pub struct F16Tensor {
    shape: Shape,
    data: Vec<u16>,
}

impl F16Tensor {
    /// Quantizes an `f32` tensor to fp16 storage.
    pub fn from_tensor(t: &Tensor) -> Self {
        F16Tensor {
            shape: *t.shape(),
            data: t.data().iter().map(|v| f32_to_f16_bits(*v)).collect(),
        }
    }

    /// Dequantizes back to `f32`.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(
            self.shape,
            self.data.iter().map(|h| f16_bits_to_f32(*h)).collect(),
        )
    }

    /// Shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Storage bytes (2 per element).
    pub fn nbytes(&self) -> usize {
        self.data.len() * 2
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }
}

/// A tensor stored as packed bfloat16, half the bytes of [`Tensor`].
#[derive(Clone, Debug, PartialEq)]
pub struct Bf16Tensor {
    shape: Shape,
    data: Vec<u16>,
}

impl Bf16Tensor {
    /// Quantizes an `f32` tensor to bf16 storage.
    pub fn from_tensor(t: &Tensor) -> Self {
        Bf16Tensor {
            shape: *t.shape(),
            data: t.data().iter().map(|v| f32_to_bf16_bits(*v)).collect(),
        }
    }

    /// Dequantizes back to `f32` (exact per element).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(
            self.shape,
            self.data.iter().map(|h| bf16_bits_to_f32(*h)).collect(),
        )
    }

    /// Shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Storage bytes (2 per element).
    pub fn nbytes(&self) -> usize {
        self.data.len() * 2
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }
}

/// A flat packed half-precision buffer: the transfer payload of the
/// mixed-precision offload runtime.
///
/// The windowed/multistream backends pack an FP32 staging slice into one of
/// these (the bytes that would cross the H2D/D2H link), account
/// `nbytes() == 2 · len` of traffic, and unpack back to FP32 for the
/// functional compute substrate — so device-resident values are exactly the
/// round-through-half grid while CPU masters stay full precision. Packing
/// and unpacking run through the multiversioned SIMD convert kernels
/// ([`crate::simd::cvt_f32_to_bf16`] and friends), which are bit-identical
/// across ISA tiers.
#[derive(Clone, Debug)]
pub struct PackedHalf {
    precision: Precision,
    bits: Vec<u16>,
}

impl PackedHalf {
    /// An empty packed buffer for `precision`. Allocation happens lazily on
    /// the first [`PackedHalf::pack_from`] and is reused afterwards, so a
    /// steady-state pack/unpack cycle allocates nothing.
    pub fn new(precision: Precision) -> Self {
        PackedHalf {
            precision,
            bits: Vec::new(),
        }
    }

    /// The storage format of this buffer.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Packs `src` into half-precision bits (resizing to `src.len()`).
    ///
    /// # Panics
    /// Panics if the buffer's precision is [`Precision::F32`] — full
    /// precision has no packed form.
    pub fn pack_from(&mut self, src: &[f32]) {
        self.bits.resize(src.len(), 0);
        match self.precision {
            Precision::Bf16 => crate::simd::cvt_f32_to_bf16(src, &mut self.bits),
            Precision::F16 => crate::simd::cvt_f32_to_f16(src, &mut self.bits),
            Precision::F32 => panic!("PackedHalf cannot pack at F32 precision"),
        }
    }

    /// Unpacks into `dst`, which must have exactly `len()` elements.
    pub fn unpack_into(&self, dst: &mut [f32]) {
        assert_eq!(dst.len(), self.bits.len(), "unpack length mismatch");
        match self.precision {
            Precision::Bf16 => crate::simd::cvt_bf16_to_f32(&self.bits, dst),
            Precision::F16 => crate::simd::cvt_f16_to_f32(&self.bits, dst),
            Precision::F32 => unreachable!("pack_from rejects F32"),
        }
    }

    /// Rounds `buf` in place through this buffer's half format (pack then
    /// unpack) — the exact value grid a store/load pair over the link
    /// applies. No-op at F32 precision.
    pub fn round_through(&mut self, buf: &mut [f32]) {
        if !self.precision.is_half() {
            return;
        }
        self.pack_from(buf);
        self.unpack_into(buf);
    }

    /// Packed element count.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Packed payload size in bytes (2 per element) — what crosses the link.
    pub fn nbytes(&self) -> u64 {
        self.bits.len() as u64 * 2
    }

    /// The raw packed bits.
    pub fn bits(&self) -> &[u16] {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};
    use proptest::prelude::*;

    #[test]
    fn exact_values_round_trip() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25] {
            assert_eq!(round_through_f16(v), v, "{v}");
        }
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
    }

    #[test]
    fn known_encodings() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // max finite half
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(1e9), 0x7C00, "overflow to inf");
        assert_eq!(f32_to_f16_bits(5.960_464_5e-8), 0x0001, "min subnormal");
    }

    #[test]
    fn nan_stays_nan() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between two halves around 1.0;
        // nearest-even keeps 1.0.
        let halfway = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(round_through_f16(halfway), 1.0);
        // Just above halfway rounds up to 1 + 2^-10.
        let above = 1.0 + 2.0_f32.powi(-11) + 2.0_f32.powi(-13);
        assert_eq!(round_through_f16(above), 1.0 + 2.0_f32.powi(-10));
    }

    #[test]
    fn tensor_storage_halves_bytes() {
        let t = normal([32, 16], 1.0, &mut seeded_rng(8));
        let h = F16Tensor::from_tensor(&t);
        assert_eq!(h.nbytes() * 2, t.nbytes());
        let back = h.to_tensor();
        // Relative error bounded by the fp16 epsilon (2^-11 ≈ 4.9e-4).
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= a.abs() * 6e-4 + 1e-7, "{a} vs {b}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn prop_round_trip_error_bounded(x in -60000.0f32..60000.0) {
            let y = round_through_f16(x);
            // Max relative error of binary16 in the normal range is 2^-11;
            // near zero values flush toward the subnormal grid.
            prop_assert!((x - y).abs() <= x.abs() / 2048.0 + 6e-8, "{x} -> {y}");
        }

        #[test]
        fn prop_idempotent(x in proptest::num::f32::NORMAL) {
            let once = round_through_f16(x);
            let twice = round_through_f16(once);
            prop_assert!(once.to_bits() == twice.to_bits() || (once.is_infinite() && twice.is_infinite()));
        }

        #[test]
        fn prop_monotone(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(round_through_f16(lo) <= round_through_f16(hi));
        }
    }

    // ---- bf16 ----

    #[test]
    fn bf16_exact_values_round_trip() {
        // Every f32 whose low 16 mantissa bits are zero is exactly
        // representable in bf16 — including the full f32 exponent range.
        let huge = f32::from_bits(0x7F00_0000); // ≈ 1.7e38
        let tiny = f32::from_bits(0x0080_0000); // min normal, ≈ 1.18e-38
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, huge, -huge, tiny, 0.25] {
            assert_eq!(round_through_bf16(v).to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn bf16_known_encodings() {
        assert_eq!(f32_to_bf16_bits(1.0), 0x3F80);
        assert_eq!(f32_to_bf16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_bf16_bits(0.0), 0x0000);
        assert_eq!(f32_to_bf16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_bf16_bits(f32::INFINITY), 0x7F80);
        assert_eq!(f32_to_bf16_bits(f32::NEG_INFINITY), 0xFF80);
    }

    #[test]
    fn bf16_nan_inf_subnormal() {
        assert!(bf16_bits_to_f32(f32_to_bf16_bits(f32::NAN)).is_nan());
        // A NaN payload that would truncate to an all-zero mantissa must not
        // become Inf: the quiet bit is forced.
        let sneaky = f32::from_bits(0x7F80_0001);
        assert!(sneaky.is_nan());
        let h = f32_to_bf16_bits(sneaky);
        assert!(bf16_bits_to_f32(h).is_nan());
        // f32 subnormals survive as bf16 subnormals (shared exponent range).
        let sub = f32::from_bits(0x0001_0000); // smallest with zero low bits
        assert_eq!(round_through_bf16(sub).to_bits(), sub.to_bits());
    }

    #[test]
    fn bf16_rounding_is_nearest_even() {
        // 1 + 2^-8 is exactly halfway between 1.0 and the next bf16 up
        // (1 + 2^-7); nearest-even keeps 1.0.
        let halfway = 1.0 + 2.0_f32.powi(-8);
        assert_eq!(round_through_bf16(halfway), 1.0);
        // The next halfway point above (between 1+2^-7 and 1+2^-6) has an
        // odd low mantissa bit, so nearest-even rounds UP.
        let halfway_odd = 1.0 + 2.0_f32.powi(-7) + 2.0_f32.powi(-8);
        assert_eq!(round_through_bf16(halfway_odd), 1.0 + 2.0_f32.powi(-6));
        // Just above halfway rounds up.
        let above = 1.0 + 2.0_f32.powi(-8) + 2.0_f32.powi(-12);
        assert_eq!(round_through_bf16(above), 1.0 + 2.0_f32.powi(-7));
    }

    #[test]
    fn bf16_tensor_storage_halves_bytes() {
        let t = normal([32, 16], 1.0, &mut seeded_rng(8));
        let h = Bf16Tensor::from_tensor(&t);
        assert_eq!(h.nbytes() * 2, t.nbytes());
        let back = h.to_tensor();
        // Relative error bounded by the bf16 epsilon (2^-8).
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= a.abs() * 4e-3 + 1e-38, "{a} vs {b}");
        }
    }

    #[test]
    fn precision_tags_round_trip() {
        for p in [Precision::F32, Precision::Bf16, Precision::F16] {
            assert_eq!(Precision::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Precision::from_tag(3), None);
        assert_eq!(Precision::F32.param_bytes(), 4);
        assert_eq!(Precision::Bf16.param_bytes(), 2);
        assert_eq!(Precision::F16.param_bytes(), 2);
        assert!(!Precision::F32.is_half());
        assert!(Precision::Bf16.is_half());
    }

    #[test]
    fn packed_half_pack_unpack() {
        let t = normal([8, 16], 1.0, &mut seeded_rng(17));
        let src = t.data();
        for prec in [Precision::Bf16, Precision::F16] {
            let mut pack = PackedHalf::new(prec);
            pack.pack_from(src);
            assert_eq!(pack.len(), src.len());
            assert_eq!(pack.nbytes(), src.len() as u64 * 2);
            let mut out = vec![0.0f32; src.len()];
            pack.unpack_into(&mut out);
            let round: fn(f32) -> f32 = match prec {
                Precision::Bf16 => round_through_bf16,
                Precision::F16 => round_through_f16,
                Precision::F32 => unreachable!(),
            };
            for (s, o) in src.iter().zip(&out) {
                assert_eq!(o.to_bits(), round(*s).to_bits());
            }
        }
    }

    #[test]
    fn packed_half_round_through_idempotent() {
        let t = normal([4, 33], 1.0, &mut seeded_rng(3));
        let mut buf = t.data().to_vec();
        let mut pack = PackedHalf::new(Precision::Bf16);
        pack.round_through(&mut buf);
        let once = buf.clone();
        pack.round_through(&mut buf);
        assert_eq!(
            once.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            buf.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // F32 round_through is a no-op.
        let mut f32buf = t.data().to_vec();
        PackedHalf::new(Precision::F32).round_through(&mut f32buf);
        assert_eq!(f32buf, t.data());
    }

    #[test]
    #[should_panic(expected = "F32")]
    fn packed_half_rejects_f32_pack() {
        PackedHalf::new(Precision::F32).pack_from(&[1.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn prop_bf16_round_trip_error_bounded(x in -1.0e38f32..1.0e38) {
            let y = round_through_bf16(x);
            // Max relative error of bf16 in the normal range is 2^-9.
            prop_assert!((x - y).abs() <= x.abs() / 256.0, "{x} -> {y}");
        }

        #[test]
        fn prop_bf16_idempotent(x in proptest::num::f32::ANY) {
            let once = round_through_bf16(x);
            let twice = round_through_bf16(once);
            if once.is_nan() {
                prop_assert!(twice.is_nan());
            } else {
                prop_assert_eq!(once.to_bits(), twice.to_bits());
            }
        }

        #[test]
        fn prop_bf16_representable_exact(bits in proptest::num::u16::ANY) {
            // Any f32 built from bf16 bits round-trips exactly (or stays NaN).
            let x = bf16_bits_to_f32(bits);
            if x.is_nan() {
                prop_assert!(bf16_bits_to_f32(f32_to_bf16_bits(x)).is_nan());
            } else {
                prop_assert_eq!(round_through_bf16(x).to_bits(), x.to_bits());
            }
        }

        #[test]
        fn prop_f16_representable_exact(bits in proptest::num::u16::ANY) {
            // Any value decoded from f16 bits round-trips exactly.
            let x = f16_bits_to_f32(bits);
            if x.is_nan() {
                prop_assert!(f16_bits_to_f32(f32_to_f16_bits(x)).is_nan());
            } else {
                prop_assert_eq!(round_through_f16(x).to_bits(), x.to_bits());
            }
        }

        #[test]
        fn prop_bf16_monotone(a in -1.0e38f32..1.0e38, b in -1.0e38f32..1.0e38) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(round_through_bf16(lo) <= round_through_bf16(hi));
        }
    }
}
