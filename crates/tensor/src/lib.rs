//! CPU tensor substrate for the STRONGHOLD reproduction.
//!
//! This crate provides the numerical foundation that stands in for PyTorch's
//! CPU/GPU tensor runtime in the original system: dense `f32` tensors,
//! rayon-parallel kernels (matmul, elementwise, softmax, layernorm, GELU) and
//! hand-written forward/backward passes for the layer types a GPT-style
//! transformer needs (linear, multi-head attention, embedding, cross-entropy).
//!
//! Everything is deterministic: parallel reductions are structured so the
//! floating-point summation order does not depend on thread scheduling, which
//! lets the integration suite assert *exact* equality between offloaded and
//! non-offloaded training (the paper's "no stale updates, no precision loss"
//! claim, Section III-A).

pub mod attention;
pub mod embedding;
pub mod half;
pub mod init;
pub mod linear;
pub mod loss;
pub mod matmul;
pub mod ops;
pub mod parallel;
pub mod scratch;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use half::{PackedHalf, Precision};
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Offending shapes rendered as strings.
        detail: String,
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Offending index.
        index: usize,
        /// Bound that was violated.
        bound: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in {op}: {detail}")
            }
            TensorError::OutOfBounds { op, index, bound } => {
                write!(f, "index {index} out of bounds {bound} in {op}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
