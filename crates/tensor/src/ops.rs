//! Elementwise and row-wise kernels with hand-written backward passes.

use rayon::prelude::*;

use crate::tensor::Tensor;

/// `out = a + b` (same shape).
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert!(
        a.shape().same(b.shape()),
        "add: {} vs {}",
        a.shape(),
        b.shape()
    );
    let data = a
        .data()
        .iter()
        .zip(b.data().iter())
        .map(|(x, y)| x + y)
        .collect();
    Tensor::from_vec(*a.shape(), data)
}

/// `a += b` in place.
pub fn add_assign(a: &mut Tensor, b: &Tensor) {
    assert!(
        a.shape().same(b.shape()),
        "add_assign: {} vs {}",
        a.shape(),
        b.shape()
    );
    for (x, y) in a.data_mut().iter_mut().zip(b.data().iter()) {
        *x += y;
    }
}

/// `a += alpha * b` in place (axpy).
pub fn axpy(a: &mut Tensor, alpha: f32, b: &Tensor) {
    assert!(
        a.shape().same(b.shape()),
        "axpy: {} vs {}",
        a.shape(),
        b.shape()
    );
    for (x, y) in a.data_mut().iter_mut().zip(b.data().iter()) {
        *x += alpha * y;
    }
}

/// `out = a * s`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    Tensor::from_vec(*a.shape(), a.data().iter().map(|x| x * s).collect())
}

/// Adds a `[cols]` bias vector to every row of a `[rows, cols]` tensor.
pub fn add_bias(x: &mut Tensor, bias: &Tensor) {
    let (_rows, cols) = x.shape().as_2d();
    assert_eq!(
        bias.numel(),
        cols,
        "add_bias: bias len {} vs cols {cols}",
        bias.numel()
    );
    let b = bias.data().to_vec();
    x.data_mut().par_chunks_mut(cols).for_each(|row| {
        for (r, bb) in row.iter_mut().zip(b.iter()) {
            *r += bb;
        }
    });
}

/// Accumulates the bias gradient: `db[j] += Σ_rows dy[row, j]`.
///
/// Rows are summed in index order so the result is deterministic.
pub fn bias_grad_acc(dy: &Tensor, db: &mut Tensor) {
    let (rows, cols) = dy.shape().as_2d();
    assert_eq!(db.numel(), cols);
    let dyd = dy.data();
    let dbd = db.data_mut();
    for r in 0..rows {
        let row = &dyd[r * cols..(r + 1) * cols];
        for (d, y) in dbd.iter_mut().zip(row.iter()) {
            *d += y;
        }
    }
}

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_C: f32 = 0.044_715;

/// GELU activation (tanh approximation, as used by GPT-2/Megatron).
pub fn gelu(x: &Tensor) -> Tensor {
    let data = x
        .data()
        .par_iter()
        .map(|&v| {
            let inner = SQRT_2_OVER_PI * (v + GELU_C * v * v * v);
            0.5 * v * (1.0 + inner.tanh())
        })
        .collect();
    Tensor::from_vec(*x.shape(), data)
}

/// Backward of [`gelu`]: returns `dx` given upstream `dy` and the *input* `x`.
pub fn gelu_backward(dy: &Tensor, x: &Tensor) -> Tensor {
    assert!(dy.shape().same(x.shape()));
    let data = dy
        .data()
        .par_iter()
        .zip(x.data().par_iter())
        .map(|(&g, &v)| {
            let u = SQRT_2_OVER_PI * (v + GELU_C * v * v * v);
            let t = u.tanh();
            let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * v * v);
            let d = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
            g * d
        })
        .collect();
    Tensor::from_vec(*x.shape(), data)
}

/// Row-wise softmax over the last dimension of a (logically 2-D) tensor.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (_rows, cols) = x.shape().as_2d();
    let mut out = x.clone();
    out.data_mut()
        .par_chunks_mut(cols)
        .for_each(softmax_row_inplace);
    out
}

/// In-place softmax of a single row.
pub fn softmax_row_inplace(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Backward of row-wise softmax given the softmax *output* `y` and upstream
/// `dy`: `dx = y ⊙ (dy − (dy·y) 1)` per row.
pub fn softmax_rows_backward(dy: &Tensor, y: &Tensor) -> Tensor {
    assert!(dy.shape().same(y.shape()));
    let (_rows, cols) = y.shape().as_2d();
    let mut dx = Tensor::zeros(*y.shape());
    dx.data_mut()
        .par_chunks_mut(cols)
        .zip(dy.data().par_chunks(cols))
        .zip(y.data().par_chunks(cols))
        .for_each(|((dxr, dyr), yr)| {
            let dot: f32 = dyr.iter().zip(yr.iter()).map(|(a, b)| a * b).sum();
            for ((d, g), v) in dxr.iter_mut().zip(dyr.iter()).zip(yr.iter()) {
                *d = v * (g - dot);
            }
        });
    dx
}

/// Saved statistics from a layer-norm forward pass, needed for backward.
#[derive(Clone, Debug)]
pub struct LayerNormCache {
    /// Per-row mean.
    pub mean: Vec<f32>,
    /// Per-row reciprocal standard deviation.
    pub rstd: Vec<f32>,
}

/// Layer normalization over the last dimension with affine parameters
/// `gamma`/`beta` of length `cols`. Returns the output and the cache needed
/// by [`layernorm_backward`].
pub fn layernorm(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> (Tensor, LayerNormCache) {
    let (rows, cols) = x.shape().as_2d();
    assert_eq!(gamma.numel(), cols);
    assert_eq!(beta.numel(), cols);
    let mut out = Tensor::zeros(*x.shape());
    let mut mean = vec![0.0f32; rows];
    let mut rstd = vec![0.0f32; rows];
    let g = gamma.data();
    let b = beta.data();
    out.data_mut()
        .par_chunks_mut(cols)
        .zip(x.data().par_chunks(cols))
        .zip(mean.par_iter_mut().zip(rstd.par_iter_mut()))
        .for_each(|((o, xr), (m, rs))| {
            let mu: f32 = xr.iter().sum::<f32>() / cols as f32;
            let var: f32 = xr.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / cols as f32;
            let r = 1.0 / (var + eps).sqrt();
            *m = mu;
            *rs = r;
            for j in 0..cols {
                o[j] = (xr[j] - mu) * r * g[j] + b[j];
            }
        });
    (out, LayerNormCache { mean, rstd })
}

/// Backward of [`layernorm`]. Returns `dx` and accumulates `dgamma`/`dbeta`.
pub fn layernorm_backward(
    dy: &Tensor,
    x: &Tensor,
    gamma: &Tensor,
    cache: &LayerNormCache,
    dgamma: &mut Tensor,
    dbeta: &mut Tensor,
) -> Tensor {
    let (rows, cols) = x.shape().as_2d();
    let mut dx = Tensor::zeros(*x.shape());
    let g = gamma.data();
    // dgamma/dbeta accumulate across rows sequentially for determinism.
    {
        let dgd = dgamma.data_mut();
        let dbd = dbeta.data_mut();
        for r in 0..rows {
            let xr = &x.data()[r * cols..(r + 1) * cols];
            let dyr = &dy.data()[r * cols..(r + 1) * cols];
            let (mu, rs) = (cache.mean[r], cache.rstd[r]);
            for j in 0..cols {
                let xhat = (xr[j] - mu) * rs;
                dgd[j] += dyr[j] * xhat;
                dbd[j] += dyr[j];
            }
        }
    }
    dx.data_mut()
        .par_chunks_mut(cols)
        .enumerate()
        .for_each(|(r, dxr)| {
            let xr = &x.data()[r * cols..(r + 1) * cols];
            let dyr = &dy.data()[r * cols..(r + 1) * cols];
            let (mu, rs) = (cache.mean[r], cache.rstd[r]);
            let nc = cols as f32;
            let mut sum_dyg = 0.0f32;
            let mut sum_dyg_xhat = 0.0f32;
            for j in 0..cols {
                let xhat = (xr[j] - mu) * rs;
                let dyg = dyr[j] * g[j];
                sum_dyg += dyg;
                sum_dyg_xhat += dyg * xhat;
            }
            for j in 0..cols {
                let xhat = (xr[j] - mu) * rs;
                let dyg = dyr[j] * g[j];
                dxr[j] = rs * (dyg - sum_dyg / nc - xhat * sum_dyg_xhat / nc);
            }
        });
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};
    use proptest::prelude::*;

    fn finite_diff_check(
        f: &dyn Fn(&Tensor) -> f32,
        x: &Tensor,
        analytic_dx: &Tensor,
        eps: f32,
        tol: f32,
    ) {
        for i in (0..x.numel()).step_by((x.numel() / 16).max(1)) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            let ana = analytic_dx.data()[i];
            assert!(
                (num - ana).abs() < tol * (1.0 + num.abs().max(ana.abs())),
                "grad mismatch at {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn add_and_axpy() {
        let a = Tensor::from_vec([3], vec![1., 2., 3.]);
        let b = Tensor::from_vec([3], vec![10., 20., 30.]);
        assert_eq!(add(&a, &b).data(), &[11., 22., 33.]);
        let mut c = a.clone();
        axpy(&mut c, 2.0, &b);
        assert_eq!(c.data(), &[21., 42., 63.]);
    }

    #[test]
    fn bias_round_trip() {
        let mut x = Tensor::zeros([2, 3]);
        let b = Tensor::from_vec([3], vec![1., 2., 3.]);
        add_bias(&mut x, &b);
        assert_eq!(x.data(), &[1., 2., 3., 1., 2., 3.]);
        let mut db = Tensor::zeros([3]);
        bias_grad_acc(&x, &mut db);
        assert_eq!(db.data(), &[2., 4., 6.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = normal([6, 9], 2.0, &mut seeded_rng(20));
        let y = softmax_rows(&x);
        for r in 0..6 {
            let s: f32 = y.data()[r * 9..(r + 1) * 9].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gelu_gradient_check() {
        let x = normal([16], 1.0, &mut seeded_rng(21));
        let loss = |t: &Tensor| gelu(t).sum();
        let dy = Tensor::full([16], 1.0);
        let dx = gelu_backward(&dy, &x);
        finite_diff_check(&loss, &x, &dx, 1e-3, 2e-2);
    }

    #[test]
    fn softmax_gradient_check() {
        let x = normal([2, 8], 1.0, &mut seeded_rng(22));
        // Loss = Σ w ⊙ softmax(x) with fixed weights w.
        let w = normal([2, 8], 1.0, &mut seeded_rng(23));
        let loss = |t: &Tensor| {
            let y = softmax_rows(t);
            y.data()
                .iter()
                .zip(w.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let y = softmax_rows(&x);
        let dx = softmax_rows_backward(&w, &y);
        finite_diff_check(&loss, &x, &dx, 1e-3, 2e-2);
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let x = normal([4, 64], 3.0, &mut seeded_rng(24));
        let gamma = Tensor::full([64], 1.0);
        let beta = Tensor::zeros([64]);
        let (y, _) = layernorm(&x, &gamma, &beta, 1e-5);
        for r in 0..4 {
            let row = &y.data()[r * 64..(r + 1) * 64];
            let mean: f32 = row.iter().sum::<f32>() / 64.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_gradient_check() {
        let mut rng = seeded_rng(25);
        let x = normal([3, 12], 1.0, &mut rng);
        let gamma = normal([12], 0.5, &mut rng);
        let beta = normal([12], 0.5, &mut rng);
        let w = normal([3, 12], 1.0, &mut rng);
        let loss = |t: &Tensor| {
            let (y, _) = layernorm(t, &gamma, &beta, 1e-5);
            y.data()
                .iter()
                .zip(w.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let (_, cache) = layernorm(&x, &gamma, &beta, 1e-5);
        let mut dg = Tensor::zeros([12]);
        let mut db = Tensor::zeros([12]);
        let dx = layernorm_backward(&w, &x, &gamma, &cache, &mut dg, &mut db);
        finite_diff_check(&loss, &x, &dx, 1e-3, 3e-2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_softmax_shift_invariant(rows in 1usize..5, cols in 2usize..16, shift in -5.0f32..5.0, seed in 0u64..500) {
            let x = normal([rows, cols], 2.0, &mut seeded_rng(seed));
            let shifted = Tensor::from_vec(*x.shape(), x.data().iter().map(|v| v + shift).collect());
            let a = softmax_rows(&x);
            let b = softmax_rows(&shifted);
            prop_assert!(a.max_abs_diff(&b) < 1e-4);
        }

        #[test]
        fn prop_softmax_rows_nonneg_sum1(rows in 1usize..6, cols in 1usize..20, seed in 0u64..500) {
            let x = normal([rows, cols], 3.0, &mut seeded_rng(seed));
            let y = softmax_rows(&x);
            for r in 0..rows {
                let row = &y.data()[r*cols..(r+1)*cols];
                prop_assert!(row.iter().all(|v| *v >= 0.0));
                let s: f32 = row.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-4);
            }
        }
    }
}
