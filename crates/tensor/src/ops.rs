//! Vectorized elementwise and row-wise kernels with hand-written
//! backward passes, plus the fused Adam step.
//!
//! Every kernel body is written once and instantiated per ISA tier
//! (AVX-512 / AVX2+FMA / portable) through `crate::simd::dispatch!`;
//! see `simd.rs` for how the multiversioning works and why all tiers are
//! bit-identical. The one exception is [`adam_fused`], whose AVX tiers
//! use hand-written `rsqrt`/`rcp`+Newton intrinsics (the portable tier
//! keeps the exact `sqrt`+`div` formula); its bits may therefore differ
//! *across* tiers, but the tier is fixed once per process so results
//! remain deterministic and identical across trainers and thread counts.
//!
//! # Determinism contract (same as `matmul.rs`)
//!
//! The floating-point evaluation order for every output element is a
//! fixed function of the operand shapes:
//!
//! * Elementwise kernels (`add`, `axpy`, `scale`, `gelu`, bias add,
//!   Adam) have no cross-element interaction at all, so any parallel
//!   split is trivially bit-identical to the sequential path.
//! * Row reductions (softmax, layernorm) accumulate into `LANES`
//!   partial sums with a fixed element→lane assignment and fold them in
//!   a fixed tree; rows are data-parallel, so row-block scheduling never
//!   changes the arithmetic.
//! * Column reductions (`bias_grad_acc`, layernorm dγ/dβ) sum rows in
//!   ascending index order per column; parallelism splits the *column*
//!   axis, which leaves each column's summation order untouched.
//!
//! Consequently results are bit-identical for any thread count, which is
//! what lets the integration suite assert exact resident↔offloaded
//! trainer equality.
//!
//! The pre-vectorization scalar kernels are preserved verbatim in
//! [`seed`] as the frozen baseline for proptests and `benches/ops.rs`,
//! and per-op FLOP/time counters in [`stats`] bridge into the runtime
//! telemetry as `op.*` gauges next to the GEMM engine's `kernel.*` ones.

use std::time::Instant;

use rayon::prelude::*;

use crate::simd::{self, dispatch, exp_approx, hmax, hsum, tanh_approx, SendPtr, LANES};
use crate::tensor::Tensor;

/// Elements per parallel task for elementwise/chunked dispatch.
const PAR_CHUNK: usize = 1 << 16;

/// Below this many elements a kernel always runs sequentially: the
/// scoped-thread fan-out costs tens of microseconds, which a memory-bound
/// elementwise pass only amortizes at several hundred KiB of data.
const PAR_MIN_ELEMS: usize = 1 << 18;

/// Column-block width for parallel column reductions.
const COL_BLOCK: usize = 256;

/// Runs `run(lo, hi)` over `[0, n)` either as one sequential call or as
/// disjoint `PAR_CHUNK` ranges fanned out over the thread pool. Safe to
/// gate on thread count because callers are elementwise: each output
/// element depends only on its own inputs, so the split never changes
/// the arithmetic.
#[inline]
fn for_each_chunk(n: usize, run: impl Fn(usize, usize) + Sync) {
    if n >= PAR_MIN_ELEMS && rayon::current_num_threads() > 1 {
        let tasks = n.div_ceil(PAR_CHUNK);
        (0..tasks).into_par_iter().for_each(|t| {
            let lo = t * PAR_CHUNK;
            run(lo, (lo + PAR_CHUNK).min(n));
        });
    } else {
        run(0, n);
    }
}

/// Row-block analogue of [`for_each_chunk`] for kernels that treat rows
/// independently: `run(r0, r1)` receives disjoint row ranges.
#[inline]
fn for_each_row_block(rows: usize, cols: usize, run: impl Fn(usize, usize) + Sync) {
    if rows * cols >= PAR_MIN_ELEMS && rows > 1 && rayon::current_num_threads() > 1 {
        let rb = (PAR_CHUNK / cols.max(1)).max(1);
        let tasks = rows.div_ceil(rb);
        (0..tasks).into_par_iter().for_each(|t| {
            let lo = t * rb;
            run(lo, (lo + rb).min(rows));
        });
    } else {
        run(0, rows);
    }
}

// ---------------------------------------------------------------------------
// Multiversioned kernel bodies (slice granularity).
// ---------------------------------------------------------------------------

dispatch! {
    fn k_add(out: &mut [f32], a: &[f32], b: &[f32]) {
        for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
            *o = x + y;
        }
    }
}

dispatch! {
    fn k_add_assign(a: &mut [f32], b: &[f32]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
    }
}

dispatch! {
    fn k_axpy(a: &mut [f32], alpha: f32, b: &[f32]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x += alpha * y;
        }
    }
}

dispatch! {
    fn k_scale(out: &mut [f32], a: &[f32], s: f32) {
        for (o, x) in out.iter_mut().zip(a) {
            *o = x * s;
        }
    }
}

dispatch! {
    fn k_scale_assign(a: &mut [f32], s: f32) {
        for x in a.iter_mut() {
            *x *= s;
        }
    }
}

dispatch! {
    fn k_add_bias(x: &mut [f32], bias: &[f32]) {
        for row in x.chunks_exact_mut(bias.len()) {
            for (r, b) in row.iter_mut().zip(bias) {
                *r += b;
            }
        }
    }
}

dispatch! {
    /// Accumulates `db[j] += Σ_r dy[r, col0 + j]` for a column range.
    /// Rows are summed in ascending index order per column, so any
    /// column split is bit-identical to the full-width loop.
    fn k_bias_grad(db: &mut [f32], dy: &[f32], rows: usize, stride: usize, col0: usize) {
        let w = db.len();
        for r in 0..rows {
            let row = &dy[r * stride + col0..r * stride + col0 + w];
            for (d, y) in db.iter_mut().zip(row) {
                *d += y;
            }
        }
    }
}

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_C: f32 = 0.044_715;

dispatch! {
    fn k_gelu(out: &mut [f32], x: &[f32]) {
        for (o, &v) in out.iter_mut().zip(x) {
            let inner = SQRT_2_OVER_PI * (v + GELU_C * v * v * v);
            *o = 0.5 * v * (1.0 + tanh_approx(inner));
        }
    }
}

dispatch! {
    fn k_gelu_bwd(dx: &mut [f32], dy: &[f32], x: &[f32]) {
        for ((o, &g), &v) in dx.iter_mut().zip(dy).zip(x) {
            let u = SQRT_2_OVER_PI * (v + GELU_C * v * v * v);
            let t = tanh_approx(u);
            let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * v * v);
            let d = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
            *o = g * d;
        }
    }
}

dispatch! {
    /// In-place softmax of each `cols`-wide row: lane-structured max and
    /// sum reductions, vectorized `exp`, one normalization pass.
    fn k_softmax_rows(x: &mut [f32], cols: usize) {
        for row in x.chunks_exact_mut(cols) {
            let mut mx = [f32::NEG_INFINITY; LANES];
            let mut it = row.chunks_exact(LANES);
            for c in it.by_ref() {
                for (m, &v) in mx.iter_mut().zip(c) {
                    *m = m.max(v);
                }
            }
            let mut m = hmax(mx);
            for &v in it.remainder() {
                m = m.max(v);
            }
            let mut acc = [0.0f32; LANES];
            let mut it = row.chunks_exact_mut(LANES);
            for c in it.by_ref() {
                for (a, v) in acc.iter_mut().zip(c.iter_mut()) {
                    let e = exp_approx(*v - m);
                    *v = e;
                    *a += e;
                }
            }
            let mut tail = 0.0f32;
            for v in it.into_remainder() {
                let e = exp_approx(*v - m);
                *v = e;
                tail += e;
            }
            let inv = 1.0 / (hsum(acc) + tail);
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }
}

dispatch! {
    /// `dx = y ⊙ (dy − (dy·y) 1)` per `cols`-wide row.
    fn k_softmax_bwd_rows(dx: &mut [f32], dy: &[f32], y: &[f32], cols: usize) {
        for ((dxr, dyr), yr) in dx
            .chunks_exact_mut(cols)
            .zip(dy.chunks_exact(cols))
            .zip(y.chunks_exact(cols))
        {
            let mut acc = [0.0f32; LANES];
            let mut ita = dyr.chunks_exact(LANES);
            let mut itb = yr.chunks_exact(LANES);
            for (ca, cb) in ita.by_ref().zip(itb.by_ref()) {
                for ((a, &u), &w) in acc.iter_mut().zip(ca).zip(cb) {
                    *a += u * w;
                }
            }
            let mut tail = 0.0f32;
            for (&u, &w) in ita.remainder().iter().zip(itb.remainder()) {
                tail += u * w;
            }
            let dot = hsum(acc) + tail;
            for ((d, &g), &v) in dxr.iter_mut().zip(dyr).zip(yr) {
                *d = v * (g - dot);
            }
        }
    }
}

dispatch! {
    /// Layer-norm forward over `mean.len()` rows of `gamma.len()` cols.
    fn k_layernorm_rows(
        out: &mut [f32],
        mean: &mut [f32],
        rstd: &mut [f32],
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        eps: f32,
    ) {
        let cols = gamma.len();
        for ((o, xr), (m, rs)) in out
            .chunks_exact_mut(cols)
            .zip(x.chunks_exact(cols))
            .zip(mean.iter_mut().zip(rstd.iter_mut()))
        {
            let mut acc = [0.0f32; LANES];
            let mut it = xr.chunks_exact(LANES);
            for c in it.by_ref() {
                for (a, &v) in acc.iter_mut().zip(c) {
                    *a += v;
                }
            }
            let mut tail = 0.0f32;
            for &v in it.remainder() {
                tail += v;
            }
            let mu = (hsum(acc) + tail) / cols as f32;
            let mut acc2 = [0.0f32; LANES];
            let mut it = xr.chunks_exact(LANES);
            for c in it.by_ref() {
                for (a, &v) in acc2.iter_mut().zip(c) {
                    let d = v - mu;
                    *a += d * d;
                }
            }
            let mut tail2 = 0.0f32;
            for &v in it.remainder() {
                let d = v - mu;
                tail2 += d * d;
            }
            let var = (hsum(acc2) + tail2) / cols as f32;
            let r = 1.0 / (var + eps).sqrt();
            *m = mu;
            *rs = r;
            for (((o, &xv), &g), &b) in o.iter_mut().zip(xr).zip(gamma).zip(beta) {
                *o = (xv - mu) * r * g + b;
            }
        }
    }
}

/// Layer-norm forward row driver: hand-vectorized on the AVX tiers, the
/// [`k_layernorm_rows`] generic body on the portable tier.
///
/// Like [`adam_fused`], this is a documented exception to the
/// bit-identical-across-tiers rule: the AVX bodies fuse the
/// squared-deviation and affine passes with FMA and use four accumulator
/// banks (the generic body's single 16-lane bank leaves the reduction
/// latency-bound), so the three tiers agree only to ~1e-6. Within one
/// tier the accumulation order is still a pure function of the shape, so
/// run-to-run, thread-count and resident↔offloaded determinism hold
/// unchanged.
fn ln_fwd_rows(
    out: &mut [f32],
    mean: &mut [f32],
    rstd: &mut [f32],
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) {
    match simd::tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: feature presence verified once by `tier()`.
        simd::IsaTier::Avx512 => unsafe { ln_fwd_avx512(out, mean, rstd, x, gamma, beta, eps) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        simd::IsaTier::Avx2Fma => unsafe { ln_fwd_avx2(out, mean, rstd, x, gamma, beta, eps) },
        _ => k_layernorm_rows(out, mean, rstd, x, gamma, beta, eps),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn ln_fwd_avx512(
    out: &mut [f32],
    mean: &mut [f32],
    rstd: &mut [f32],
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) {
    use std::arch::x86_64::*;
    let cols = gamma.len();
    let main4 = cols / 64 * 64;
    let main = cols / 16 * 16;
    for r in 0..mean.len() {
        let xr = x.as_ptr().add(r * cols);
        let or = out.as_mut_ptr().add(r * cols);
        // Pass 1: row sum over four independent banks (hides add latency).
        let (mut s0, mut s1, mut s2, mut s3) = (
            _mm512_setzero_ps(),
            _mm512_setzero_ps(),
            _mm512_setzero_ps(),
            _mm512_setzero_ps(),
        );
        let mut i = 0;
        while i < main4 {
            s0 = _mm512_add_ps(s0, _mm512_loadu_ps(xr.add(i)));
            s1 = _mm512_add_ps(s1, _mm512_loadu_ps(xr.add(i + 16)));
            s2 = _mm512_add_ps(s2, _mm512_loadu_ps(xr.add(i + 32)));
            s3 = _mm512_add_ps(s3, _mm512_loadu_ps(xr.add(i + 48)));
            i += 64;
        }
        while i < main {
            s0 = _mm512_add_ps(s0, _mm512_loadu_ps(xr.add(i)));
            i += 16;
        }
        let s = _mm512_add_ps(_mm512_add_ps(s0, s1), _mm512_add_ps(s2, s3));
        let mut sum = _mm512_reduce_add_ps(s);
        while i < cols {
            sum += *xr.add(i);
            i += 1;
        }
        let mu = sum / cols as f32;
        let vmu = _mm512_set1_ps(mu);
        // Pass 2: sum of squared deviations (two-pass, not E[x²]−µ², to
        // keep the cancellation behaviour of the reference kernel).
        let (mut q0, mut q1, mut q2, mut q3) = (
            _mm512_setzero_ps(),
            _mm512_setzero_ps(),
            _mm512_setzero_ps(),
            _mm512_setzero_ps(),
        );
        let mut i = 0;
        while i < main4 {
            let d0 = _mm512_sub_ps(_mm512_loadu_ps(xr.add(i)), vmu);
            let d1 = _mm512_sub_ps(_mm512_loadu_ps(xr.add(i + 16)), vmu);
            let d2 = _mm512_sub_ps(_mm512_loadu_ps(xr.add(i + 32)), vmu);
            let d3 = _mm512_sub_ps(_mm512_loadu_ps(xr.add(i + 48)), vmu);
            q0 = _mm512_fmadd_ps(d0, d0, q0);
            q1 = _mm512_fmadd_ps(d1, d1, q1);
            q2 = _mm512_fmadd_ps(d2, d2, q2);
            q3 = _mm512_fmadd_ps(d3, d3, q3);
            i += 64;
        }
        while i < main {
            let d = _mm512_sub_ps(_mm512_loadu_ps(xr.add(i)), vmu);
            q0 = _mm512_fmadd_ps(d, d, q0);
            i += 16;
        }
        let q = _mm512_add_ps(_mm512_add_ps(q0, q1), _mm512_add_ps(q2, q3));
        let mut ssq = _mm512_reduce_add_ps(q);
        while i < cols {
            let d = *xr.add(i) - mu;
            ssq += d * d;
            i += 1;
        }
        let var = ssq / cols as f32;
        let rs = 1.0 / (var + eps).sqrt();
        mean[r] = mu;
        rstd[r] = rs;
        let vrs = _mm512_set1_ps(rs);
        // Pass 3: y = x̂·γ + β with a single FMA.
        let mut i = 0;
        while i < main {
            let xh = _mm512_mul_ps(_mm512_sub_ps(_mm512_loadu_ps(xr.add(i)), vmu), vrs);
            let o = _mm512_fmadd_ps(
                xh,
                _mm512_loadu_ps(gamma.as_ptr().add(i)),
                _mm512_loadu_ps(beta.as_ptr().add(i)),
            );
            _mm512_storeu_ps(or.add(i), o);
            i += 16;
        }
        while i < cols {
            *or.add(i) = (*xr.add(i) - mu) * rs * gamma[i] + beta[i];
            i += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn ln_fwd_avx2(
    out: &mut [f32],
    mean: &mut [f32],
    rstd: &mut [f32],
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) {
    use std::arch::x86_64::*;
    #[inline(always)]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }
    let cols = gamma.len();
    let main4 = cols / 32 * 32;
    let main = cols / 8 * 8;
    for r in 0..mean.len() {
        let xr = x.as_ptr().add(r * cols);
        let or = out.as_mut_ptr().add(r * cols);
        let (mut s0, mut s1, mut s2, mut s3) = (
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
        );
        let mut i = 0;
        while i < main4 {
            s0 = _mm256_add_ps(s0, _mm256_loadu_ps(xr.add(i)));
            s1 = _mm256_add_ps(s1, _mm256_loadu_ps(xr.add(i + 8)));
            s2 = _mm256_add_ps(s2, _mm256_loadu_ps(xr.add(i + 16)));
            s3 = _mm256_add_ps(s3, _mm256_loadu_ps(xr.add(i + 24)));
            i += 32;
        }
        while i < main {
            s0 = _mm256_add_ps(s0, _mm256_loadu_ps(xr.add(i)));
            i += 8;
        }
        let s = _mm256_add_ps(_mm256_add_ps(s0, s1), _mm256_add_ps(s2, s3));
        let mut sum = hsum256(s);
        while i < cols {
            sum += *xr.add(i);
            i += 1;
        }
        let mu = sum / cols as f32;
        let vmu = _mm256_set1_ps(mu);
        let (mut q0, mut q1, mut q2, mut q3) = (
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
        );
        let mut i = 0;
        while i < main4 {
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(xr.add(i)), vmu);
            let d1 = _mm256_sub_ps(_mm256_loadu_ps(xr.add(i + 8)), vmu);
            let d2 = _mm256_sub_ps(_mm256_loadu_ps(xr.add(i + 16)), vmu);
            let d3 = _mm256_sub_ps(_mm256_loadu_ps(xr.add(i + 24)), vmu);
            q0 = _mm256_fmadd_ps(d0, d0, q0);
            q1 = _mm256_fmadd_ps(d1, d1, q1);
            q2 = _mm256_fmadd_ps(d2, d2, q2);
            q3 = _mm256_fmadd_ps(d3, d3, q3);
            i += 32;
        }
        while i < main {
            let d = _mm256_sub_ps(_mm256_loadu_ps(xr.add(i)), vmu);
            q0 = _mm256_fmadd_ps(d, d, q0);
            i += 8;
        }
        let q = _mm256_add_ps(_mm256_add_ps(q0, q1), _mm256_add_ps(q2, q3));
        let mut ssq = hsum256(q);
        while i < cols {
            let d = *xr.add(i) - mu;
            ssq += d * d;
            i += 1;
        }
        let var = ssq / cols as f32;
        let rs = 1.0 / (var + eps).sqrt();
        mean[r] = mu;
        rstd[r] = rs;
        let vrs = _mm256_set1_ps(rs);
        let mut i = 0;
        while i < main {
            let xh = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(xr.add(i)), vmu), vrs);
            let o = _mm256_fmadd_ps(
                xh,
                _mm256_loadu_ps(gamma.as_ptr().add(i)),
                _mm256_loadu_ps(beta.as_ptr().add(i)),
            );
            _mm256_storeu_ps(or.add(i), o);
            i += 8;
        }
        while i < cols {
            *or.add(i) = (*xr.add(i) - mu) * rs * gamma[i] + beta[i];
            i += 1;
        }
    }
}

dispatch! {
    /// Layer-norm input gradient over `mean.len()` rows.
    fn k_layernorm_dx_rows(
        dx: &mut [f32],
        x: &[f32],
        dy: &[f32],
        gamma: &[f32],
        mean: &[f32],
        rstd: &[f32],
    ) {
        let cols = gamma.len();
        let nc = cols as f32;
        for (((dxr, xr), dyr), (&mu, &rs)) in dx
            .chunks_exact_mut(cols)
            .zip(x.chunks_exact(cols))
            .zip(dy.chunks_exact(cols))
            .zip(mean.iter().zip(rstd))
        {
            let mut acc_g = [0.0f32; LANES];
            let mut acc_gx = [0.0f32; LANES];
            let mut ita = dyr.chunks_exact(LANES);
            let mut itb = xr.chunks_exact(LANES);
            let mut itg = gamma.chunks_exact(LANES);
            for ((ca, cb), cg) in ita.by_ref().zip(itb.by_ref()).zip(itg.by_ref()) {
                for (((ag, agx), (&dyv, &xv)), &gv) in acc_g
                    .iter_mut()
                    .zip(acc_gx.iter_mut())
                    .zip(ca.iter().zip(cb))
                    .zip(cg)
                {
                    let xhat = (xv - mu) * rs;
                    let dyg = dyv * gv;
                    *ag += dyg;
                    *agx += dyg * xhat;
                }
            }
            let mut tail_g = 0.0f32;
            let mut tail_gx = 0.0f32;
            for ((&dyv, &xv), &gv) in ita
                .remainder()
                .iter()
                .zip(itb.remainder())
                .zip(itg.remainder())
            {
                let xhat = (xv - mu) * rs;
                let dyg = dyv * gv;
                tail_g += dyg;
                tail_gx += dyg * xhat;
            }
            let sum_dyg = hsum(acc_g) + tail_g;
            let sum_dyg_xhat = hsum(acc_gx) + tail_gx;
            for (((d, &dyv), &xv), &gv) in dxr.iter_mut().zip(dyr).zip(xr).zip(gamma) {
                let xhat = (xv - mu) * rs;
                let dyg = dyv * gv;
                *d = rs * (dyg - sum_dyg / nc - xhat * sum_dyg_xhat / nc);
            }
        }
    }
}

dispatch! {
    /// Accumulates `dγ[j] += Σ_r dy·x̂` and `dβ[j] += Σ_r dy` for a
    /// column range (same split rule as [`k_bias_grad`]).
    fn k_layernorm_param_grads(
        dgamma: &mut [f32],
        dbeta: &mut [f32],
        x: &[f32],
        dy: &[f32],
        mean: &[f32],
        rstd: &[f32],
        stride: usize,
        col0: usize,
    ) {
        let w = dgamma.len();
        for (r, (&mu, &rs)) in mean.iter().zip(rstd).enumerate() {
            let xr = &x[r * stride + col0..r * stride + col0 + w];
            let dyr = &dy[r * stride + col0..r * stride + col0 + w];
            for ((dg, db), (&xv, &dyv)) in dgamma
                .iter_mut()
                .zip(dbeta.iter_mut())
                .zip(xr.iter().zip(dyr))
            {
                let xhat = (xv - mu) * rs;
                *dg += dyv * xhat;
                *db += dyv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Public tensor-level API.
// ---------------------------------------------------------------------------

/// `out = a + b` (same shape).
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert!(
        a.shape().same(b.shape()),
        "add: {} vs {}",
        a.shape(),
        b.shape()
    );
    let start = Instant::now();
    let mut out = crate::scratch::take(*a.shape());
    let n = out.numel();
    {
        let po = SendPtr(out.data_mut().as_mut_ptr());
        let (ad, bd) = (a.data(), b.data());
        for_each_chunk(n, |lo, hi| {
            // SAFETY: chunk ranges are disjoint; each task writes only its own.
            let o = unsafe { std::slice::from_raw_parts_mut(po.get().add(lo), hi - lo) };
            k_add(o, &ad[lo..hi], &bd[lo..hi]);
        });
    }
    stats::record(stats::ADD, n as u64, start.elapsed().as_nanos() as u64);
    out
}

/// `a += b` in place.
pub fn add_assign(a: &mut Tensor, b: &Tensor) {
    assert!(
        a.shape().same(b.shape()),
        "add_assign: {} vs {}",
        a.shape(),
        b.shape()
    );
    let start = Instant::now();
    let n = a.numel();
    {
        let pa = SendPtr(a.data_mut().as_mut_ptr());
        let bd = b.data();
        for_each_chunk(n, |lo, hi| {
            // SAFETY: disjoint chunks.
            let s = unsafe { std::slice::from_raw_parts_mut(pa.get().add(lo), hi - lo) };
            k_add_assign(s, &bd[lo..hi]);
        });
    }
    stats::record(stats::ADD, n as u64, start.elapsed().as_nanos() as u64);
}

/// `a += alpha * b` in place (axpy).
pub fn axpy(a: &mut Tensor, alpha: f32, b: &Tensor) {
    assert!(
        a.shape().same(b.shape()),
        "axpy: {} vs {}",
        a.shape(),
        b.shape()
    );
    let start = Instant::now();
    let n = a.numel();
    {
        let pa = SendPtr(a.data_mut().as_mut_ptr());
        let bd = b.data();
        for_each_chunk(n, |lo, hi| {
            // SAFETY: disjoint chunks.
            let s = unsafe { std::slice::from_raw_parts_mut(pa.get().add(lo), hi - lo) };
            k_axpy(s, alpha, &bd[lo..hi]);
        });
    }
    stats::record(stats::AXPY, 2 * n as u64, start.elapsed().as_nanos() as u64);
}

/// `out = a * s`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    let start = Instant::now();
    let mut out = crate::scratch::take(*a.shape());
    let n = out.numel();
    {
        let po = SendPtr(out.data_mut().as_mut_ptr());
        let ad = a.data();
        for_each_chunk(n, |lo, hi| {
            // SAFETY: disjoint chunks.
            let o = unsafe { std::slice::from_raw_parts_mut(po.get().add(lo), hi - lo) };
            k_scale(o, &ad[lo..hi], s);
        });
    }
    stats::record(stats::SCALE, n as u64, start.elapsed().as_nanos() as u64);
    out
}

/// `a *= s` in place.
pub fn scale_assign(a: &mut Tensor, s: f32) {
    let start = Instant::now();
    let n = a.numel();
    {
        let pa = SendPtr(a.data_mut().as_mut_ptr());
        for_each_chunk(n, |lo, hi| {
            // SAFETY: disjoint chunks.
            let sl = unsafe { std::slice::from_raw_parts_mut(pa.get().add(lo), hi - lo) };
            k_scale_assign(sl, s);
        });
    }
    stats::record(stats::SCALE, n as u64, start.elapsed().as_nanos() as u64);
}

/// Adds a `[cols]` bias vector to every row of a `[rows, cols]` tensor.
pub fn add_bias(x: &mut Tensor, bias: &Tensor) {
    let (rows, cols) = x.shape().as_2d();
    assert_eq!(
        bias.numel(),
        cols,
        "add_bias: bias len {} vs cols {cols}",
        bias.numel()
    );
    let start = Instant::now();
    {
        let px = SendPtr(x.data_mut().as_mut_ptr());
        let bd = bias.data();
        for_each_row_block(rows, cols, |r0, r1| {
            // SAFETY: disjoint row blocks.
            let s = unsafe {
                std::slice::from_raw_parts_mut(px.get().add(r0 * cols), (r1 - r0) * cols)
            };
            k_add_bias(s, bd);
        });
    }
    stats::record(
        stats::BIAS_ADD,
        (rows * cols) as u64,
        start.elapsed().as_nanos() as u64,
    );
}

/// Accumulates the bias gradient: `db[j] += Σ_rows dy[row, j]`.
///
/// Rows are summed in index order per column, so the result is
/// deterministic — and identical whether the column axis is split across
/// threads or not.
pub fn bias_grad_acc(dy: &Tensor, db: &mut Tensor) {
    let (rows, cols) = dy.shape().as_2d();
    assert_eq!(db.numel(), cols);
    let start = Instant::now();
    let dyd = dy.data();
    if rows * cols >= PAR_MIN_ELEMS && cols >= 2 * COL_BLOCK && rayon::current_num_threads() > 1 {
        let pd = SendPtr(db.data_mut().as_mut_ptr());
        let tasks = cols.div_ceil(COL_BLOCK);
        (0..tasks).into_par_iter().for_each(|t| {
            let c0 = t * COL_BLOCK;
            let c1 = (c0 + COL_BLOCK).min(cols);
            // SAFETY: disjoint column ranges of `db`.
            let s = unsafe { std::slice::from_raw_parts_mut(pd.get().add(c0), c1 - c0) };
            k_bias_grad(s, dyd, rows, cols, c0);
        });
    } else {
        k_bias_grad(db.data_mut(), dyd, rows, cols, 0);
    }
    stats::record(
        stats::BIAS_GRAD,
        (rows * cols) as u64,
        start.elapsed().as_nanos() as u64,
    );
}

/// GELU activation (tanh approximation, as used by GPT-2/Megatron),
/// writing into a reusable output tensor.
pub fn gelu_into(x: &Tensor, out: &mut Tensor) {
    out.reset_for(*x.shape());
    let start = Instant::now();
    let n = x.numel();
    {
        let po = SendPtr(out.data_mut().as_mut_ptr());
        let xd = x.data();
        for_each_chunk(n, |lo, hi| {
            // SAFETY: disjoint chunks.
            let o = unsafe { std::slice::from_raw_parts_mut(po.get().add(lo), hi - lo) };
            k_gelu(o, &xd[lo..hi]);
        });
    }
    stats::record(
        stats::GELU_FWD,
        15 * n as u64,
        start.elapsed().as_nanos() as u64,
    );
}

/// GELU activation into a fresh tensor.
pub fn gelu(x: &Tensor) -> Tensor {
    // Rent at the right shape so the `reset_for` inside is a no-op in
    // steady state (an `empty()` rental would zero-fill the whole
    // output on every resize from length 0).
    let mut out = crate::scratch::take(*x.shape());
    gelu_into(x, &mut out);
    out
}

/// Backward of [`gelu`] into a reusable `dx` tensor.
pub fn gelu_backward_into(dy: &Tensor, x: &Tensor, dx: &mut Tensor) {
    assert!(dy.shape().same(x.shape()));
    dx.reset_for(*x.shape());
    let start = Instant::now();
    let n = x.numel();
    {
        let pd = SendPtr(dx.data_mut().as_mut_ptr());
        let (dyd, xd) = (dy.data(), x.data());
        for_each_chunk(n, |lo, hi| {
            // SAFETY: disjoint chunks.
            let o = unsafe { std::slice::from_raw_parts_mut(pd.get().add(lo), hi - lo) };
            k_gelu_bwd(o, &dyd[lo..hi], &xd[lo..hi]);
        });
    }
    stats::record(
        stats::GELU_BWD,
        25 * n as u64,
        start.elapsed().as_nanos() as u64,
    );
}

/// Backward of [`gelu`]: returns `dx` given upstream `dy` and the *input* `x`.
pub fn gelu_backward(dy: &Tensor, x: &Tensor) -> Tensor {
    let mut dx = crate::scratch::take(*dy.shape());
    gelu_backward_into(dy, x, &mut dx);
    dx
}

/// Row-wise softmax over the last dimension of a (logically 2-D) tensor.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let mut out = crate::scratch::take_copy(x);
    softmax_rows_(&mut out);
    out
}

/// In-place row-wise softmax of a (logically 2-D) tensor.
pub fn softmax_rows_(x: &mut Tensor) {
    let (rows, cols) = x.shape().as_2d();
    let start = Instant::now();
    {
        let px = SendPtr(x.data_mut().as_mut_ptr());
        for_each_row_block(rows, cols, |r0, r1| {
            // SAFETY: disjoint row blocks.
            let s = unsafe {
                std::slice::from_raw_parts_mut(px.get().add(r0 * cols), (r1 - r0) * cols)
            };
            k_softmax_rows(s, cols);
        });
    }
    stats::record(
        stats::SOFTMAX_FWD,
        5 * (rows * cols) as u64,
        start.elapsed().as_nanos() as u64,
    );
}

/// In-place softmax of a single row.
pub fn softmax_row_inplace(row: &mut [f32]) {
    let cols = row.len();
    if cols == 0 {
        return;
    }
    let start = Instant::now();
    k_softmax_rows(row, cols);
    stats::record(
        stats::SOFTMAX_FWD,
        5 * cols as u64,
        start.elapsed().as_nanos() as u64,
    );
}

/// Backward of row-wise softmax into a reusable `dx` tensor.
pub fn softmax_rows_backward_into(dy: &Tensor, y: &Tensor, dx: &mut Tensor) {
    assert!(dy.shape().same(y.shape()));
    let (rows, cols) = y.shape().as_2d();
    dx.reset_for(*y.shape());
    let start = Instant::now();
    {
        let pd = SendPtr(dx.data_mut().as_mut_ptr());
        let (dyd, yd) = (dy.data(), y.data());
        for_each_row_block(rows, cols, |r0, r1| {
            // SAFETY: disjoint row blocks.
            let s = unsafe {
                std::slice::from_raw_parts_mut(pd.get().add(r0 * cols), (r1 - r0) * cols)
            };
            k_softmax_bwd_rows(
                s,
                &dyd[r0 * cols..r1 * cols],
                &yd[r0 * cols..r1 * cols],
                cols,
            );
        });
    }
    stats::record(
        stats::SOFTMAX_BWD,
        4 * (rows * cols) as u64,
        start.elapsed().as_nanos() as u64,
    );
}

/// Backward of row-wise softmax given the softmax *output* `y` and upstream
/// `dy`: `dx = y ⊙ (dy − (dy·y) 1)` per row.
pub fn softmax_rows_backward(dy: &Tensor, y: &Tensor) -> Tensor {
    let mut dx = crate::scratch::take(*dy.shape());
    softmax_rows_backward_into(dy, y, &mut dx);
    dx
}

/// Saved statistics from a layer-norm forward pass, needed for backward.
#[derive(Clone, Debug, Default)]
pub struct LayerNormCache {
    /// Per-row mean.
    pub mean: Vec<f32>,
    /// Per-row reciprocal standard deviation.
    pub rstd: Vec<f32>,
}

/// Layer normalization into reusable output/cache buffers.
pub fn layernorm_into(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    out: &mut Tensor,
    cache: &mut LayerNormCache,
) {
    let (rows, cols) = x.shape().as_2d();
    assert_eq!(gamma.numel(), cols);
    assert_eq!(beta.numel(), cols);
    out.reset_for(*x.shape());
    cache.mean.resize(rows, 0.0);
    cache.rstd.resize(rows, 0.0);
    let start = Instant::now();
    {
        let po = SendPtr(out.data_mut().as_mut_ptr());
        let pm = SendPtr(cache.mean.as_mut_ptr());
        let pr = SendPtr(cache.rstd.as_mut_ptr());
        let (xd, gd, bd) = (x.data(), gamma.data(), beta.data());
        for_each_row_block(rows, cols, |r0, r1| {
            // SAFETY: disjoint row blocks of out/mean/rstd.
            let (o, m, rs) = unsafe {
                (
                    std::slice::from_raw_parts_mut(po.get().add(r0 * cols), (r1 - r0) * cols),
                    std::slice::from_raw_parts_mut(pm.get().add(r0), r1 - r0),
                    std::slice::from_raw_parts_mut(pr.get().add(r0), r1 - r0),
                )
            };
            ln_fwd_rows(o, m, rs, &xd[r0 * cols..r1 * cols], gd, bd, eps);
        });
    }
    stats::record(
        stats::LN_FWD,
        7 * (rows * cols) as u64,
        start.elapsed().as_nanos() as u64,
    );
}

/// Layer normalization over the last dimension with affine parameters
/// `gamma`/`beta` of length `cols`. Returns the output and the cache needed
/// by [`layernorm_backward`].
pub fn layernorm(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> (Tensor, LayerNormCache) {
    let mut out = crate::scratch::take(*x.shape());
    let mut cache = LayerNormCache::default();
    layernorm_into(x, gamma, beta, eps, &mut out, &mut cache);
    (out, cache)
}

/// Backward of [`layernorm`] into a reusable `dx` tensor; accumulates
/// `dgamma`/`dbeta`.
pub fn layernorm_backward_into(
    dy: &Tensor,
    x: &Tensor,
    gamma: &Tensor,
    cache: &LayerNormCache,
    dgamma: &mut Tensor,
    dbeta: &mut Tensor,
    dx: &mut Tensor,
) {
    let (rows, cols) = x.shape().as_2d();
    dx.reset_for(*x.shape());
    let start = Instant::now();
    let (xd, dyd, gd) = (x.data(), dy.data(), gamma.data());
    // dγ/dβ: column-split reduction (row order per column is fixed).
    if rows * cols >= PAR_MIN_ELEMS && cols >= 2 * COL_BLOCK && rayon::current_num_threads() > 1 {
        let pg = SendPtr(dgamma.data_mut().as_mut_ptr());
        let pb = SendPtr(dbeta.data_mut().as_mut_ptr());
        let tasks = cols.div_ceil(COL_BLOCK);
        (0..tasks).into_par_iter().for_each(|t| {
            let c0 = t * COL_BLOCK;
            let c1 = (c0 + COL_BLOCK).min(cols);
            // SAFETY: disjoint column ranges of dgamma/dbeta.
            let (g, b) = unsafe {
                (
                    std::slice::from_raw_parts_mut(pg.get().add(c0), c1 - c0),
                    std::slice::from_raw_parts_mut(pb.get().add(c0), c1 - c0),
                )
            };
            k_layernorm_param_grads(g, b, xd, dyd, &cache.mean, &cache.rstd, cols, c0);
        });
    } else {
        k_layernorm_param_grads(
            dgamma.data_mut(),
            dbeta.data_mut(),
            xd,
            dyd,
            &cache.mean,
            &cache.rstd,
            cols,
            0,
        );
    }
    // dx: row-parallel.
    {
        let pd = SendPtr(dx.data_mut().as_mut_ptr());
        for_each_row_block(rows, cols, |r0, r1| {
            // SAFETY: disjoint row blocks.
            let s = unsafe {
                std::slice::from_raw_parts_mut(pd.get().add(r0 * cols), (r1 - r0) * cols)
            };
            k_layernorm_dx_rows(
                s,
                &xd[r0 * cols..r1 * cols],
                &dyd[r0 * cols..r1 * cols],
                gd,
                &cache.mean[r0..r1],
                &cache.rstd[r0..r1],
            );
        });
    }
    stats::record(
        stats::LN_BWD,
        14 * (rows * cols) as u64,
        start.elapsed().as_nanos() as u64,
    );
}

/// Backward of [`layernorm`]. Returns `dx` and accumulates `dgamma`/`dbeta`.
pub fn layernorm_backward(
    dy: &Tensor,
    x: &Tensor,
    gamma: &Tensor,
    cache: &LayerNormCache,
    dgamma: &mut Tensor,
    dbeta: &mut Tensor,
) -> Tensor {
    let mut dx = crate::scratch::take(*dy.shape());
    layernorm_backward_into(dy, x, gamma, cache, dgamma, dbeta, &mut dx);
    dx
}

// ---------------------------------------------------------------------------
// Fused Adam.
// ---------------------------------------------------------------------------

/// Fused AdamW step: first/second-moment update, bias-corrected learning
/// rate (`lr_t`, precomputed by the caller in f64 as before), decoupled
/// weight decay (`wd_step = lr · weight_decay`) and parameter update in
/// one pass over the four streams.
///
/// The AVX tiers replace `sqrt`+`div` (which would serialize on the
/// divider unit and cap the speedup near 1×) with `rsqrt`/`rcp`
/// approximations refined by one Newton step (~1e-7 relative error); the
/// portable tier keeps the exact scalar formula. `v` is clamped to
/// `f32::MIN_POSITIVE` before `rsqrt` so `v == 0` behaves exactly like
/// the scalar `sqrt(0) + eps` path instead of producing `inf · 0 = NaN`.
#[allow(clippy::too_many_arguments)]
pub fn adam_fused(
    params: &mut [f32],
    grads: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    beta1: f32,
    beta2: f32,
    lr_t: f32,
    wd_step: f32,
    eps: f32,
) {
    let n = params.len();
    assert_eq!(n, grads.len(), "adam_fused: params vs grads");
    assert_eq!(n, m.len(), "adam_fused: params vs m");
    assert_eq!(n, v.len(), "adam_fused: params vs v");
    let start = Instant::now();
    match simd::tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: feature presence verified once by `tier()`.
        simd::IsaTier::Avx512 => unsafe {
            adam_avx512(params, grads, m, v, beta1, beta2, lr_t, wd_step, eps)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        simd::IsaTier::Avx2Fma => unsafe {
            adam_avx2(params, grads, m, v, beta1, beta2, lr_t, wd_step, eps)
        },
        simd::IsaTier::Portable => {
            adam_portable(params, grads, m, v, beta1, beta2, lr_t, wd_step, eps)
        }
    }
    stats::record(
        stats::ADAM,
        12 * n as u64,
        start.elapsed().as_nanos() as u64,
    );
}

#[allow(clippy::too_many_arguments)]
fn adam_portable(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    b1: f32,
    b2: f32,
    lr_t: f32,
    wd_step: f32,
    eps: f32,
) {
    for (((pi, &gi), mi), vi) in p.iter_mut().zip(g).zip(m.iter_mut()).zip(v.iter_mut()) {
        *mi = b1 * *mi + (1.0 - b1) * gi;
        *vi = b2 * *vi + (1.0 - b2) * gi * gi;
        let denom = vi.sqrt() + eps;
        *pi -= lr_t * *mi / denom + wd_step * *pi;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn adam_avx512(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    b1: f32,
    b2: f32,
    lr_t: f32,
    wd_step: f32,
    eps: f32,
) {
    use std::arch::x86_64::*;
    let n = p.len();
    let vb1 = _mm512_set1_ps(b1);
    let vomb1 = _mm512_set1_ps(1.0 - b1);
    let vb2 = _mm512_set1_ps(b2);
    let vomb2 = _mm512_set1_ps(1.0 - b2);
    let vlr = _mm512_set1_ps(lr_t);
    let vwd = _mm512_set1_ps(wd_step);
    let veps = _mm512_set1_ps(eps);
    let vtiny = _mm512_set1_ps(f32::MIN_POSITIVE);
    let vhalf = _mm512_set1_ps(0.5);
    let v3half = _mm512_set1_ps(1.5);
    let vtwo = _mm512_set1_ps(2.0);
    // Unmasked main loop + scalar tail: computing a lane mask and using
    // masked load/store on every iteration costs ~15% on the hot path.
    let mut i = 0usize;
    while i + 16 <= n {
        let gv = _mm512_loadu_ps(g.as_ptr().add(i));
        let mv = _mm512_loadu_ps(m.as_ptr().add(i));
        let vv = _mm512_loadu_ps(v.as_ptr().add(i));
        let pv = _mm512_loadu_ps(p.as_ptr().add(i));
        let mn = _mm512_fmadd_ps(vb1, mv, _mm512_mul_ps(vomb1, gv));
        let vn = _mm512_fmadd_ps(vb2, vv, _mm512_mul_ps(vomb2, _mm512_mul_ps(gv, gv)));
        // s = sqrt(vn) via rsqrt14 + one Newton step: r ≈ vn^-1/2,
        // s = vn · r. Clamping vn ≥ MIN_POSITIVE keeps r finite; the
        // clamp's sqrt (~1e-19) vanishes against eps exactly as sqrt(0).
        let vc = _mm512_max_ps(vn, vtiny);
        let r0 = _mm512_rsqrt14_ps(vc);
        let r1 = _mm512_mul_ps(
            r0,
            _mm512_fnmadd_ps(_mm512_mul_ps(vhalf, vc), _mm512_mul_ps(r0, r0), v3half),
        );
        let s = _mm512_mul_ps(vc, r1);
        // q ≈ 1 / (s + eps) via rcp14 + one Newton step.
        let d = _mm512_add_ps(s, veps);
        let q0 = _mm512_rcp14_ps(d);
        let q1 = _mm512_mul_ps(q0, _mm512_fnmadd_ps(d, q0, vtwo));
        let upd = _mm512_fmadd_ps(_mm512_mul_ps(vlr, mn), q1, _mm512_mul_ps(vwd, pv));
        let pn = _mm512_sub_ps(pv, upd);
        _mm512_storeu_ps(m.as_mut_ptr().add(i), mn);
        _mm512_storeu_ps(v.as_mut_ptr().add(i), vn);
        _mm512_storeu_ps(p.as_mut_ptr().add(i), pn);
        i += 16;
    }
    // Tail lanes take the exact scalar formula; `adam_fused` documents
    // that the AVX tiers differ from the portable tier by ~1e-7 anyway.
    while i < n {
        m[i] = b1 * m[i] + (1.0 - b1) * g[i];
        v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
        let denom = v[i].sqrt() + eps;
        p[i] -= lr_t * m[i] / denom + wd_step * p[i];
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn adam_avx2(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    b1: f32,
    b2: f32,
    lr_t: f32,
    wd_step: f32,
    eps: f32,
) {
    use std::arch::x86_64::*;
    let n = p.len();
    let vb1 = _mm256_set1_ps(b1);
    let vomb1 = _mm256_set1_ps(1.0 - b1);
    let vb2 = _mm256_set1_ps(b2);
    let vomb2 = _mm256_set1_ps(1.0 - b2);
    let vlr = _mm256_set1_ps(lr_t);
    let vwd = _mm256_set1_ps(wd_step);
    let veps = _mm256_set1_ps(eps);
    let vtiny = _mm256_set1_ps(f32::MIN_POSITIVE);
    let vhalf = _mm256_set1_ps(0.5);
    let v3half = _mm256_set1_ps(1.5);
    let vtwo = _mm256_set1_ps(2.0);
    let mut i = 0usize;
    while i + 8 <= n {
        let gv = _mm256_loadu_ps(g.as_ptr().add(i));
        let mv = _mm256_loadu_ps(m.as_ptr().add(i));
        let vv = _mm256_loadu_ps(v.as_ptr().add(i));
        let pv = _mm256_loadu_ps(p.as_ptr().add(i));
        let mn = _mm256_fmadd_ps(vb1, mv, _mm256_mul_ps(vomb1, gv));
        let vn = _mm256_fmadd_ps(vb2, vv, _mm256_mul_ps(vomb2, _mm256_mul_ps(gv, gv)));
        let vc = _mm256_max_ps(vn, vtiny);
        let r0 = _mm256_rsqrt_ps(vc);
        let r1 = _mm256_mul_ps(
            r0,
            _mm256_fnmadd_ps(_mm256_mul_ps(vhalf, vc), _mm256_mul_ps(r0, r0), v3half),
        );
        let s = _mm256_mul_ps(vc, r1);
        let d = _mm256_add_ps(s, veps);
        let q0 = _mm256_rcp_ps(d);
        let q1 = _mm256_mul_ps(q0, _mm256_fnmadd_ps(d, q0, vtwo));
        let upd = _mm256_fmadd_ps(_mm256_mul_ps(vlr, mn), q1, _mm256_mul_ps(vwd, pv));
        let pn = _mm256_sub_ps(pv, upd);
        _mm256_storeu_ps(m.as_mut_ptr().add(i), mn);
        _mm256_storeu_ps(v.as_mut_ptr().add(i), vn);
        _mm256_storeu_ps(p.as_mut_ptr().add(i), pn);
        i += 8;
    }
    while i < n {
        m[i] = b1 * m[i] + (1.0 - b1) * g[i];
        v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
        let denom = v[i].sqrt() + eps;
        p[i] -= lr_t * m[i] / denom + wd_step * p[i];
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Per-op statistics (bridged into telemetry as `op.*` gauges).
// ---------------------------------------------------------------------------

/// Process-wide per-op FLOP/time/call counters, mirroring
/// `matmul::stats`. FLOP counts are *nominal* (fixed per-element cost
/// factors per op) — useful for relative throughput, not exact
/// arithmetic counts.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Op index: `add`/`add_assign`.
    pub const ADD: usize = 0;
    /// Op index: `axpy`.
    pub const AXPY: usize = 1;
    /// Op index: `scale`/`scale_assign`.
    pub const SCALE: usize = 2;
    /// Op index: `add_bias`.
    pub const BIAS_ADD: usize = 3;
    /// Op index: `bias_grad_acc`.
    pub const BIAS_GRAD: usize = 4;
    /// Op index: `gelu`.
    pub const GELU_FWD: usize = 5;
    /// Op index: `gelu_backward`.
    pub const GELU_BWD: usize = 6;
    /// Op index: `softmax_rows`.
    pub const SOFTMAX_FWD: usize = 7;
    /// Op index: `softmax_rows_backward`.
    pub const SOFTMAX_BWD: usize = 8;
    /// Op index: `layernorm`.
    pub const LN_FWD: usize = 9;
    /// Op index: `layernorm_backward`.
    pub const LN_BWD: usize = 10;
    /// Op index: `adam_fused`.
    pub const ADAM: usize = 11;
    /// Op index: `cvt_f32_to_bf16` (pack to bf16; flops = elements).
    pub const CVT_F32_BF16: usize = 12;
    /// Op index: `cvt_bf16_to_f32` (unpack from bf16; flops = elements).
    pub const CVT_BF16_F32: usize = 13;
    /// Op index: `cvt_f32_to_f16` (pack to binary16; flops = elements).
    pub const CVT_F32_F16: usize = 14;
    /// Op index: `cvt_f16_to_f32` (unpack from binary16; flops = elements).
    pub const CVT_F16_F32: usize = 15;
    /// Number of tracked ops.
    pub const N_OPS: usize = 16;

    /// Telemetry-facing op names, indexed by the constants above.
    pub const NAMES: [&str; N_OPS] = [
        "add",
        "axpy",
        "scale",
        "bias_add",
        "bias_grad",
        "gelu_fwd",
        "gelu_bwd",
        "softmax_fwd",
        "softmax_bwd",
        "ln_fwd",
        "ln_bwd",
        "adam",
        "cvt_f32_bf16",
        "cvt_bf16_f32",
        "cvt_f32_f16",
        "cvt_f16_f32",
    ];

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    static FLOPS: [AtomicU64; N_OPS] = [ZERO; N_OPS];
    static NANOS: [AtomicU64; N_OPS] = [ZERO; N_OPS];
    static CALLS: [AtomicU64; N_OPS] = [ZERO; N_OPS];

    /// Records one kernel invocation.
    #[inline]
    pub fn record(op: usize, flops: u64, nanos: u64) {
        FLOPS[op].fetch_add(flops, Ordering::Relaxed);
        NANOS[op].fetch_add(nanos, Ordering::Relaxed);
        CALLS[op].fetch_add(1, Ordering::Relaxed);
    }

    /// Aggregated counters for one op.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct OpStats {
        /// Nominal floating-point operations executed.
        pub flops: u64,
        /// Wall nanoseconds spent inside the kernel (summed per call).
        pub nanos: u64,
        /// Number of invocations.
        pub calls: u64,
    }

    /// Snapshot of all op counters, indexed by the op constants.
    pub fn snapshot() -> [OpStats; N_OPS] {
        let mut out = [OpStats::default(); N_OPS];
        for (i, o) in out.iter_mut().enumerate() {
            o.flops = FLOPS[i].load(Ordering::Relaxed);
            o.nanos = NANOS[i].load(Ordering::Relaxed);
            o.calls = CALLS[i].load(Ordering::Relaxed);
        }
        out
    }

    /// Resets all counters to zero (tests/benches).
    pub fn reset() {
        for i in 0..N_OPS {
            FLOPS[i].store(0, Ordering::Relaxed);
            NANOS[i].store(0, Ordering::Relaxed);
            CALLS[i].store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Frozen scalar baseline.
// ---------------------------------------------------------------------------

/// The pre-vectorization kernels, preserved verbatim as the frozen
/// baseline for `benches/ops.rs` and the equivalence proptests. Do not
/// optimize these.
pub mod seed {
    use rayon::prelude::*;

    use super::LayerNormCache;
    use crate::tensor::Tensor;

    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    const GELU_C: f32 = 0.044_715;

    /// Frozen scalar `out = a + b`.
    pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
        assert!(a.shape().same(b.shape()));
        let data = a
            .data()
            .iter()
            .zip(b.data().iter())
            .map(|(x, y)| x + y)
            .collect();
        Tensor::from_vec(*a.shape(), data)
    }

    /// Frozen scalar `a += b`.
    pub fn add_assign(a: &mut Tensor, b: &Tensor) {
        assert!(a.shape().same(b.shape()));
        for (x, y) in a.data_mut().iter_mut().zip(b.data().iter()) {
            *x += y;
        }
    }

    /// Frozen scalar axpy.
    pub fn axpy(a: &mut Tensor, alpha: f32, b: &Tensor) {
        assert!(a.shape().same(b.shape()));
        for (x, y) in a.data_mut().iter_mut().zip(b.data().iter()) {
            *x += alpha * y;
        }
    }

    /// Frozen scalar `out = a * s`.
    pub fn scale(a: &Tensor, s: f32) -> Tensor {
        Tensor::from_vec(*a.shape(), a.data().iter().map(|x| x * s).collect())
    }

    /// Frozen scalar bias add.
    pub fn add_bias(x: &mut Tensor, bias: &Tensor) {
        let (_rows, cols) = x.shape().as_2d();
        assert_eq!(bias.numel(), cols);
        let b = bias.data().to_vec();
        x.data_mut().par_chunks_mut(cols).for_each(|row| {
            for (r, bb) in row.iter_mut().zip(b.iter()) {
                *r += bb;
            }
        });
    }

    /// Frozen scalar bias gradient accumulation.
    pub fn bias_grad_acc(dy: &Tensor, db: &mut Tensor) {
        let (rows, cols) = dy.shape().as_2d();
        assert_eq!(db.numel(), cols);
        let dyd = dy.data();
        let dbd = db.data_mut();
        for r in 0..rows {
            let row = &dyd[r * cols..(r + 1) * cols];
            for (d, y) in dbd.iter_mut().zip(row.iter()) {
                *d += y;
            }
        }
    }

    /// Frozen scalar GELU (libm `tanh`).
    pub fn gelu(x: &Tensor) -> Tensor {
        let data = x
            .data()
            .par_iter()
            .map(|&v| {
                let inner = SQRT_2_OVER_PI * (v + GELU_C * v * v * v);
                0.5 * v * (1.0 + inner.tanh())
            })
            .collect();
        Tensor::from_vec(*x.shape(), data)
    }

    /// Frozen scalar GELU backward.
    pub fn gelu_backward(dy: &Tensor, x: &Tensor) -> Tensor {
        assert!(dy.shape().same(x.shape()));
        let data = dy
            .data()
            .par_iter()
            .zip(x.data().par_iter())
            .map(|(&g, &v)| {
                let u = SQRT_2_OVER_PI * (v + GELU_C * v * v * v);
                let t = u.tanh();
                let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * v * v);
                let d = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
                g * d
            })
            .collect();
        Tensor::from_vec(*x.shape(), data)
    }

    /// Frozen scalar row softmax.
    pub fn softmax_rows(x: &Tensor) -> Tensor {
        let (_rows, cols) = x.shape().as_2d();
        let mut out = x.clone();
        out.data_mut()
            .par_chunks_mut(cols)
            .for_each(softmax_row_inplace);
        out
    }

    /// Frozen scalar single-row softmax (libm `exp`).
    pub fn softmax_row_inplace(row: &mut [f32]) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }

    /// Frozen scalar softmax backward.
    pub fn softmax_rows_backward(dy: &Tensor, y: &Tensor) -> Tensor {
        assert!(dy.shape().same(y.shape()));
        let (_rows, cols) = y.shape().as_2d();
        let mut dx = Tensor::zeros(*y.shape());
        dx.data_mut()
            .par_chunks_mut(cols)
            .zip(dy.data().par_chunks(cols))
            .zip(y.data().par_chunks(cols))
            .for_each(|((dxr, dyr), yr)| {
                let dot: f32 = dyr.iter().zip(yr.iter()).map(|(a, b)| a * b).sum();
                for ((d, g), v) in dxr.iter_mut().zip(dyr.iter()).zip(yr.iter()) {
                    *d = v * (g - dot);
                }
            });
        dx
    }

    /// Frozen scalar layernorm forward.
    pub fn layernorm(
        x: &Tensor,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
    ) -> (Tensor, LayerNormCache) {
        let (rows, cols) = x.shape().as_2d();
        assert_eq!(gamma.numel(), cols);
        assert_eq!(beta.numel(), cols);
        let mut out = Tensor::zeros(*x.shape());
        let mut mean = vec![0.0f32; rows];
        let mut rstd = vec![0.0f32; rows];
        let g = gamma.data();
        let b = beta.data();
        out.data_mut()
            .par_chunks_mut(cols)
            .zip(x.data().par_chunks(cols))
            .zip(mean.par_iter_mut().zip(rstd.par_iter_mut()))
            .for_each(|((o, xr), (m, rs))| {
                let mu: f32 = xr.iter().sum::<f32>() / cols as f32;
                let var: f32 = xr.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / cols as f32;
                let r = 1.0 / (var + eps).sqrt();
                *m = mu;
                *rs = r;
                for j in 0..cols {
                    o[j] = (xr[j] - mu) * r * g[j] + b[j];
                }
            });
        (out, LayerNormCache { mean, rstd })
    }

    /// Frozen scalar layernorm backward.
    pub fn layernorm_backward(
        dy: &Tensor,
        x: &Tensor,
        gamma: &Tensor,
        cache: &LayerNormCache,
        dgamma: &mut Tensor,
        dbeta: &mut Tensor,
    ) -> Tensor {
        let (rows, cols) = x.shape().as_2d();
        let mut dx = Tensor::zeros(*x.shape());
        let g = gamma.data();
        {
            let dgd = dgamma.data_mut();
            let dbd = dbeta.data_mut();
            for r in 0..rows {
                let xr = &x.data()[r * cols..(r + 1) * cols];
                let dyr = &dy.data()[r * cols..(r + 1) * cols];
                let (mu, rs) = (cache.mean[r], cache.rstd[r]);
                for j in 0..cols {
                    let xhat = (xr[j] - mu) * rs;
                    dgd[j] += dyr[j] * xhat;
                    dbd[j] += dyr[j];
                }
            }
        }
        dx.data_mut()
            .par_chunks_mut(cols)
            .enumerate()
            .for_each(|(r, dxr)| {
                let xr = &x.data()[r * cols..(r + 1) * cols];
                let dyr = &dy.data()[r * cols..(r + 1) * cols];
                let (mu, rs) = (cache.mean[r], cache.rstd[r]);
                let nc = cols as f32;
                let mut sum_dyg = 0.0f32;
                let mut sum_dyg_xhat = 0.0f32;
                for j in 0..cols {
                    let xhat = (xr[j] - mu) * rs;
                    let dyg = dyr[j] * g[j];
                    sum_dyg += dyg;
                    sum_dyg_xhat += dyg * xhat;
                }
                for j in 0..cols {
                    let xhat = (xr[j] - mu) * rs;
                    let dyg = dyr[j] * g[j];
                    dxr[j] = rs * (dyg - sum_dyg / nc - xhat * sum_dyg_xhat / nc);
                }
            });
        dx
    }

    /// Frozen scalar Adam step (the original `AdamState::step` inner
    /// loop, with `lr_t` precomputed and `wd_step = lr · weight_decay`).
    #[allow(clippy::too_many_arguments)]
    pub fn adam_step(
        params: &mut [f32],
        grads: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        beta1: f32,
        beta2: f32,
        lr_t: f32,
        wd_step: f32,
        eps: f32,
    ) {
        for i in 0..params.len() {
            m[i] = beta1 * m[i] + (1.0 - beta1) * grads[i];
            v[i] = beta2 * v[i] + (1.0 - beta2) * grads[i] * grads[i];
            let denom = v[i].sqrt() + eps;
            params[i] -= lr_t * m[i] / denom + wd_step * params[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};
    use proptest::prelude::*;

    fn finite_diff_check(
        f: &dyn Fn(&Tensor) -> f32,
        x: &Tensor,
        analytic_dx: &Tensor,
        eps: f32,
        tol: f32,
    ) {
        for i in (0..x.numel()).step_by((x.numel() / 16).max(1)) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            let ana = analytic_dx.data()[i];
            assert!(
                (num - ana).abs() < tol * (1.0 + num.abs().max(ana.abs())),
                "grad mismatch at {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    /// Asserts elementwise closeness with a mixed abs/rel tolerance.
    fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
        assert!(a.shape().same(b.shape()), "{what}: shape");
        for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
            let scale = 1.0 + x.abs().max(y.abs());
            assert!(
                (x - y).abs() <= tol * scale,
                "{what}[{i}]: {x} vs {y} (tol {tol})"
            );
        }
    }

    #[test]
    fn add_and_axpy() {
        let a = Tensor::from_vec([3], vec![1., 2., 3.]);
        let b = Tensor::from_vec([3], vec![10., 20., 30.]);
        assert_eq!(add(&a, &b).data(), &[11., 22., 33.]);
        let mut c = a.clone();
        axpy(&mut c, 2.0, &b);
        assert_eq!(c.data(), &[21., 42., 63.]);
    }

    #[test]
    fn bias_round_trip() {
        let mut x = Tensor::zeros([2, 3]);
        let b = Tensor::from_vec([3], vec![1., 2., 3.]);
        add_bias(&mut x, &b);
        assert_eq!(x.data(), &[1., 2., 3., 1., 2., 3.]);
        let mut db = Tensor::zeros([3]);
        bias_grad_acc(&x, &mut db);
        assert_eq!(db.data(), &[2., 4., 6.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = normal([6, 9], 2.0, &mut seeded_rng(20));
        let y = softmax_rows(&x);
        for r in 0..6 {
            let s: f32 = y.data()[r * 9..(r + 1) * 9].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_of_neg_infinity_is_exactly_zero() {
        // The causal mask depends on exp(-inf) == 0.0 exactly.
        let mut row = vec![0.5, f32::NEG_INFINITY, 1.5, f32::NEG_INFINITY];
        softmax_row_inplace(&mut row);
        assert_eq!(row[1], 0.0);
        assert_eq!(row[3], 0.0);
        assert!((row[0] + row[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gelu_gradient_check() {
        let x = normal([16], 1.0, &mut seeded_rng(21));
        let loss = |t: &Tensor| gelu(t).sum();
        let dy = Tensor::full([16], 1.0);
        let dx = gelu_backward(&dy, &x);
        finite_diff_check(&loss, &x, &dx, 1e-3, 2e-2);
    }

    #[test]
    fn softmax_gradient_check() {
        let x = normal([2, 8], 1.0, &mut seeded_rng(22));
        // Loss = Σ w ⊙ softmax(x) with fixed weights w.
        let w = normal([2, 8], 1.0, &mut seeded_rng(23));
        let loss = |t: &Tensor| {
            let y = softmax_rows(t);
            y.data()
                .iter()
                .zip(w.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let y = softmax_rows(&x);
        let dx = softmax_rows_backward(&w, &y);
        finite_diff_check(&loss, &x, &dx, 1e-3, 2e-2);
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let x = normal([4, 64], 3.0, &mut seeded_rng(24));
        let gamma = Tensor::full([64], 1.0);
        let beta = Tensor::zeros([64]);
        let (y, _) = layernorm(&x, &gamma, &beta, 1e-5);
        for r in 0..4 {
            let row = &y.data()[r * 64..(r + 1) * 64];
            let mean: f32 = row.iter().sum::<f32>() / 64.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_gradient_check() {
        let mut rng = seeded_rng(25);
        let x = normal([3, 12], 1.0, &mut rng);
        let gamma = normal([12], 0.5, &mut rng);
        let beta = normal([12], 0.5, &mut rng);
        let w = normal([3, 12], 1.0, &mut rng);
        let loss = |t: &Tensor| {
            let (y, _) = layernorm(t, &gamma, &beta, 1e-5);
            y.data()
                .iter()
                .zip(w.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let (_, cache) = layernorm(&x, &gamma, &beta, 1e-5);
        let mut dg = Tensor::zeros([12]);
        let mut db = Tensor::zeros([12]);
        let dx = layernorm_backward(&w, &x, &gamma, &cache, &mut dg, &mut db);
        finite_diff_check(&loss, &x, &dx, 1e-3, 3e-2);
    }

    #[test]
    fn adam_fused_matches_seed() {
        let mut rng = seeded_rng(77);
        // Odd length exercises the tail lanes of every tier.
        for n in [1usize, 7, 16, 61, 1027] {
            let p0 = normal([n], 0.5, &mut rng);
            let g = normal([n], 0.1, &mut rng);
            let (mut p1, mut m1, mut v1) = (p0.clone(), vec![0.0f32; n], vec![0.0f32; n]);
            let (mut p2, mut m2, mut v2) = (p0.clone(), vec![0.0f32; n], vec![0.0f32; n]);
            for _ in 0..5 {
                adam_fused(
                    p1.data_mut(),
                    g.data(),
                    &mut m1,
                    &mut v1,
                    0.9,
                    0.999,
                    1.5e-4,
                    1.5e-6,
                    1e-8,
                );
                seed::adam_step(
                    p2.data_mut(),
                    g.data(),
                    &mut m2,
                    &mut v2,
                    0.9,
                    0.999,
                    1.5e-4,
                    1.5e-6,
                    1e-8,
                );
            }
            assert_close(&p1, &p2, 1e-6, "adam params");
            for (a, b) in v1.iter().zip(v2.iter()) {
                assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()), "adam v");
            }
        }
    }

    #[test]
    fn adam_fused_zero_grad_zero_v_is_finite() {
        // v == 0 must not produce NaN through the rsqrt path.
        let mut p = vec![1.0f32; 33];
        let g = vec![0.0f32; 33];
        let (mut m, mut v) = (vec![0.0f32; 33], vec![0.0f32; 33]);
        adam_fused(&mut p, &g, &mut m, &mut v, 0.9, 0.999, 1e-4, 1e-6, 1e-8);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_softmax_shift_invariant(rows in 1usize..5, cols in 2usize..16, shift in -5.0f32..5.0, seed in 0u64..500) {
            let x = normal([rows, cols], 2.0, &mut seeded_rng(seed));
            let shifted = Tensor::from_vec(*x.shape(), x.data().iter().map(|v| v + shift).collect());
            let a = softmax_rows(&x);
            let b = softmax_rows(&shifted);
            prop_assert!(a.max_abs_diff(&b) < 1e-4);
        }

        #[test]
        fn prop_softmax_rows_nonneg_sum1(rows in 1usize..6, cols in 1usize..20, seed in 0u64..500) {
            let x = normal([rows, cols], 3.0, &mut seeded_rng(seed));
            let y = softmax_rows(&x);
            for r in 0..rows {
                let row = &y.data()[r*cols..(r+1)*cols];
                prop_assert!(row.iter().all(|v| *v >= 0.0));
                let s: f32 = row.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-4);
            }
        }

        // ------------------------------------------------------------------
        // Vectorized kernels vs the frozen scalar baseline. Column counts
        // deliberately straddle LANES multiples (1..67) to cover remainder
        // lanes.
        // ------------------------------------------------------------------

        #[test]
        fn prop_elementwise_bitwise_match_seed(n in 1usize..700, seed in 0u64..500) {
            let a = normal([n], 1.0, &mut seeded_rng(seed));
            let b = normal([n], 1.0, &mut seeded_rng(seed + 1));
            // Identical per-element expressions => exactly equal bits.
            prop_assert_eq!(add(&a, &b), seed::add(&a, &b));
            prop_assert_eq!(scale(&a, 0.7), seed::scale(&a, 0.7));
            let mut v1 = a.clone();
            let mut v2 = a.clone();
            add_assign(&mut v1, &b);
            seed::add_assign(&mut v2, &b);
            prop_assert_eq!(&v1, &v2);
            let mut v1 = a.clone();
            let mut v2 = a.clone();
            axpy(&mut v1, -1.3, &b);
            seed::axpy(&mut v2, -1.3, &b);
            prop_assert_eq!(&v1, &v2);
        }

        #[test]
        fn prop_bias_ops_bitwise_match_seed(rows in 1usize..6, cols in 1usize..67, seed in 0u64..500) {
            let x = normal([rows, cols], 1.0, &mut seeded_rng(seed));
            let bias = normal([cols], 1.0, &mut seeded_rng(seed + 1));
            let mut a = x.clone();
            let mut b = x.clone();
            add_bias(&mut a, &bias);
            seed::add_bias(&mut b, &bias);
            prop_assert_eq!(&a, &b);
            let mut dba = normal([cols], 0.3, &mut seeded_rng(seed + 2));
            let mut dbb = dba.clone();
            bias_grad_acc(&x, &mut dba);
            seed::bias_grad_acc(&x, &mut dbb);
            prop_assert_eq!(&dba, &dbb);
        }

        #[test]
        fn prop_gelu_matches_seed(n in 1usize..600, seed in 0u64..500) {
            let x = normal([n], 2.0, &mut seeded_rng(seed));
            let dy = normal([n], 1.0, &mut seeded_rng(seed + 1));
            assert_close(&gelu(&x), &seed::gelu(&x), 1e-5, "gelu");
            assert_close(
                &gelu_backward(&dy, &x),
                &seed::gelu_backward(&dy, &x),
                1e-5,
                "gelu_bwd",
            );
        }

        #[test]
        fn prop_softmax_matches_seed(rows in 1usize..6, cols in 1usize..67, seed in 0u64..500) {
            let x = normal([rows, cols], 3.0, &mut seeded_rng(seed));
            let y = softmax_rows(&x);
            assert_close(&y, &seed::softmax_rows(&x), 1e-5, "softmax");
            let dy = normal([rows, cols], 1.0, &mut seeded_rng(seed + 1));
            assert_close(
                &softmax_rows_backward(&dy, &y),
                &seed::softmax_rows_backward(&dy, &y),
                1e-5,
                "softmax_bwd",
            );
        }

        #[test]
        fn prop_layernorm_matches_seed(rows in 1usize..6, cols in 2usize..67, seed in 0u64..500) {
            let x = normal([rows, cols], 2.0, &mut seeded_rng(seed));
            let gamma = normal([cols], 0.7, &mut seeded_rng(seed + 1));
            let beta = normal([cols], 0.7, &mut seeded_rng(seed + 2));
            let (y, cache) = layernorm(&x, &gamma, &beta, 1e-5);
            let (ys, caches) = seed::layernorm(&x, &gamma, &beta, 1e-5);
            assert_close(&y, &ys, 1e-4, "ln_fwd");
            let dy = normal([rows, cols], 1.0, &mut seeded_rng(seed + 3));
            let mut dg = Tensor::zeros([cols]);
            let mut db = Tensor::zeros([cols]);
            let dx = layernorm_backward(&dy, &x, &gamma, &cache, &mut dg, &mut db);
            let mut dgs = Tensor::zeros([cols]);
            let mut dbs = Tensor::zeros([cols]);
            let dxs = seed::layernorm_backward(&dy, &x, &gamma, &caches, &mut dgs, &mut dbs);
            assert_close(&dx, &dxs, 1e-3, "ln_dx");
            assert_close(&dg, &dgs, 1e-3, "ln_dgamma");
            assert_close(&db, &dbs, 1e-3, "ln_dbeta");
        }
    }

    /// Bit-determinism across thread pools and repeat runs, at sizes
    /// large enough to cross the parallel thresholds, with a deliberately
    /// non-lane-aligned column count.
    #[test]
    fn bit_identical_across_thread_counts_and_runs() {
        let rows = 600usize;
        let cols = 531usize; // 600*531 > PAR_MIN_ELEMS, 531 % 16 != 0
        let x = normal([rows, cols], 2.0, &mut seeded_rng(90));
        let dy = normal([rows, cols], 1.0, &mut seeded_rng(91));
        let gamma = normal([cols], 0.5, &mut seeded_rng(92));
        let beta = normal([cols], 0.5, &mut seeded_rng(93));

        let run = || {
            let (y, cache) = layernorm(&x, &gamma, &beta, 1e-5);
            let mut dg = Tensor::zeros([cols]);
            let mut db = Tensor::zeros([cols]);
            let dx = layernorm_backward(&dy, &x, &gamma, &cache, &mut dg, &mut db);
            let sm = softmax_rows(&x);
            let smb = softmax_rows_backward(&dy, &sm);
            let ge = gelu(&x);
            let gb = gelu_backward(&dy, &x);
            let mut bg = Tensor::zeros([cols]);
            bias_grad_acc(&dy, &mut bg);
            let mut ab = x.clone();
            add_bias(&mut ab, &beta);
            let mut ax = x.clone();
            axpy(&mut ax, 0.37, &dy);
            (y, dg, db, dx, sm, smb, ge, gb, bg, ab, ax)
        };

        let baseline = run();
        let again = run();
        assert!(baseline == again, "repeat run differs");
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got = pool.install(run);
            assert!(
                got == baseline,
                "results differ under {threads}-thread pool"
            );
        }
    }

    #[test]
    fn stats_record_and_reset() {
        stats::reset();
        let a = normal([64], 1.0, &mut seeded_rng(5));
        let _ = gelu(&a);
        let snap = stats::snapshot();
        assert_eq!(snap[stats::GELU_FWD].calls, 1);
        assert_eq!(snap[stats::GELU_FWD].flops, 15 * 64);
        stats::reset();
        assert_eq!(stats::snapshot()[stats::GELU_FWD].calls, 0);
    }
}
