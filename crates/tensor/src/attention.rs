//! Causal multi-head self-attention with explicit forward/backward.
//!
//! Operates on a single sequence `x: [T, H]`; batching is handled one level
//! up (the model loops samples, in parallel across rayon tasks when running
//! on the functional substrate).

use rand_chacha::ChaCha8Rng;

use crate::linear::{Linear, LinearGrads};
use crate::ops::{softmax_row_inplace, softmax_rows_backward};
use crate::tensor::Tensor;

/// Multi-head causal self-attention: fused QKV projection plus output
/// projection, mirroring a Megatron-style attention block.
#[derive(Clone, Debug)]
pub struct Attention {
    /// Fused QKV projection `[3H, H]`.
    pub qkv: Linear,
    /// Output projection `[H, H]`.
    pub proj: Linear,
    /// Number of attention heads.
    pub heads: usize,
}

/// Activations saved by [`Attention::forward`] for the backward pass.
#[derive(Clone)]
pub struct AttentionCache {
    /// Fused QKV output `[T, 3H]`.
    pub qkv_out: Tensor,
    /// Per-head attention probabilities, each `[T, T]`.
    pub probs: Vec<Tensor>,
    /// Concatenated per-head context `[T, H]` (input to the projection).
    pub ctx: Tensor,
}

/// Gradients of an [`Attention`] layer.
#[derive(Clone, Debug)]
pub struct AttentionGrads {
    /// QKV projection gradients.
    pub qkv: LinearGrads,
    /// Output projection gradients.
    pub proj: LinearGrads,
}

impl Attention {
    /// Creates an attention block for hidden size `hidden` with `heads` heads.
    ///
    /// # Panics
    /// Panics unless `hidden % heads == 0`.
    pub fn new(hidden: usize, heads: usize, rng: &mut ChaCha8Rng) -> Self {
        assert_eq!(
            hidden % heads,
            0,
            "hidden {hidden} not divisible by heads {heads}"
        );
        Attention {
            qkv: Linear::new(3 * hidden, hidden, rng),
            proj: Linear::new(hidden, hidden, rng),
            heads,
        }
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.qkv.param_count() + self.proj.param_count()
    }

    /// Allocates zeroed gradients.
    pub fn zero_grads(&self) -> AttentionGrads {
        AttentionGrads {
            qkv: self.qkv.zero_grads(),
            proj: self.proj.zero_grads(),
        }
    }

    /// Forward pass for one sequence `x: [T, H]`; returns `(y, cache)`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, AttentionCache) {
        let t = x.shape().dim(0);
        let h = x.shape().dim(1);
        let dh = h / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let qkv_out = self.qkv.forward(x); // [T, 3H]
        let mut ctx = Tensor::zeros([t, h]);
        let mut probs = Vec::with_capacity(self.heads);

        for head in 0..self.heads {
            let q_off = head * dh;
            let k_off = h + head * dh;
            let v_off = 2 * h + head * dh;
            // scores[i][j] = q_i · k_j * scale for j <= i; -inf otherwise.
            let mut p = Tensor::zeros([t, t]);
            for i in 0..t {
                let qi = &qkv_out.data()[i * 3 * h + q_off..i * 3 * h + q_off + dh];
                let row = &mut p.data_mut()[i * t..(i + 1) * t];
                for (j, rj) in row.iter_mut().enumerate().take(i + 1) {
                    let kj = &qkv_out.data()[j * 3 * h + k_off..j * 3 * h + k_off + dh];
                    let dot: f32 = qi.iter().zip(kj.iter()).map(|(a, b)| a * b).sum();
                    *rj = dot * scale;
                }
                for rj in row.iter_mut().skip(i + 1) {
                    *rj = f32::NEG_INFINITY;
                }
                softmax_row_inplace(&mut p.data_mut()[i * t..(i + 1) * t]);
            }
            // ctx_head = probs · V_head.
            for i in 0..t {
                let prow = &p.data()[i * t..(i + 1) * t];
                let mut acc = vec![0.0f32; dh];
                for (j, &pj) in prow.iter().enumerate().take(i + 1) {
                    if pj != 0.0 {
                        let vj = &qkv_out.data()[j * 3 * h + v_off..j * 3 * h + v_off + dh];
                        for (a, v) in acc.iter_mut().zip(vj.iter()) {
                            *a += pj * v;
                        }
                    }
                }
                ctx.data_mut()[i * h + head * dh..i * h + head * dh + dh].copy_from_slice(&acc);
            }
            probs.push(p);
        }

        let y = self.proj.forward(&ctx);
        (
            y,
            AttentionCache {
                qkv_out,
                probs,
                ctx,
            },
        )
    }

    /// Backward pass. Given upstream `dy: [T, H]`, the layer input `x` and the
    /// forward cache, returns `dx` and accumulates parameter gradients.
    pub fn backward(
        &self,
        dy: &Tensor,
        x: &Tensor,
        cache: &AttentionCache,
        grads: &mut AttentionGrads,
    ) -> Tensor {
        let t = x.shape().dim(0);
        let h = x.shape().dim(1);
        let dh = h / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        // Through the output projection.
        let dctx = self.proj.backward(dy, &cache.ctx, &mut grads.proj); // [T, H]

        let mut dqkv = Tensor::zeros([t, 3 * h]);
        for head in 0..self.heads {
            let q_off = head * dh;
            let k_off = h + head * dh;
            let v_off = 2 * h + head * dh;
            let p = &cache.probs[head];

            // dprobs[i][j] = dctx_i · v_j ; dV_j += Σ_i p_ij dctx_i.
            let mut dprobs = Tensor::zeros([t, t]);
            for i in 0..t {
                let dctx_i = &dctx.data()[i * h + head * dh..i * h + head * dh + dh];
                for j in 0..=i {
                    let vj = &cache.qkv_out.data()[j * 3 * h + v_off..j * 3 * h + v_off + dh];
                    let dot: f32 = dctx_i.iter().zip(vj.iter()).map(|(a, b)| a * b).sum();
                    dprobs.data_mut()[i * t + j] = dot;
                    let pij = p.data()[i * t + j];
                    if pij != 0.0 {
                        let dv = &mut dqkv.data_mut()[j * 3 * h + v_off..j * 3 * h + v_off + dh];
                        for (d, c) in dv.iter_mut().zip(dctx_i.iter()) {
                            *d += pij * c;
                        }
                    }
                }
            }

            // Through the softmax (rows with masked entries have p = 0 there,
            // so the masked positions contribute nothing).
            let dscores = softmax_rows_backward(&dprobs, p); // [T, T]

            // dq_i += Σ_j ds_ij k_j * scale ; dk_j += Σ_i ds_ij q_i * scale.
            for i in 0..t {
                let dsrow = &dscores.data()[i * t..(i + 1) * t];
                let qi: Vec<f32> =
                    cache.qkv_out.data()[i * 3 * h + q_off..i * 3 * h + q_off + dh].to_vec();
                let mut dq = vec![0.0f32; dh];
                for (j, &ds) in dsrow.iter().enumerate().take(i + 1) {
                    if ds != 0.0 {
                        let kj = &cache.qkv_out.data()[j * 3 * h + k_off..j * 3 * h + k_off + dh];
                        for (a, kv) in dq.iter_mut().zip(kj.iter()) {
                            *a += ds * kv * scale;
                        }
                        let dk = &mut dqkv.data_mut()[j * 3 * h + k_off..j * 3 * h + k_off + dh];
                        for (d, qv) in dk.iter_mut().zip(qi.iter()) {
                            *d += ds * qv * scale;
                        }
                    }
                }
                let dqs = &mut dqkv.data_mut()[i * 3 * h + q_off..i * 3 * h + q_off + dh];
                for (d, a) in dqs.iter_mut().zip(dq.iter()) {
                    *d += a;
                }
            }
        }

        // Through the fused QKV projection.
        self.qkv.backward(&dqkv, x, &mut grads.qkv)
    }
}

impl AttentionGrads {
    /// Resets all gradients to zero.
    pub fn zero_(&mut self) {
        self.qkv.zero_();
        self.proj.zero_();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};

    #[test]
    fn causality_future_tokens_do_not_affect_past() {
        let mut rng = seeded_rng(40);
        let attn = Attention::new(16, 4, &mut rng);
        let x1 = normal([5, 16], 1.0, &mut rng);
        let mut x2 = x1.clone();
        // Perturb the last token only.
        for j in 0..16 {
            *x2.at_mut(&[4, j]) += 1.0;
        }
        let (y1, _) = attn.forward(&x1);
        let (y2, _) = attn.forward(&x2);
        // Outputs for tokens 0..4 must be identical.
        for i in 0..4 {
            for j in 0..16 {
                assert_eq!(
                    y1.at(&[i, j]),
                    y2.at(&[i, j]),
                    "token {i} leaked future info"
                );
            }
        }
        // Output at token 4 must differ.
        let diff: f32 = (0..16)
            .map(|j| (y1.at(&[4, j]) - y2.at(&[4, j])).abs())
            .sum();
        assert!(diff > 0.0);
    }

    #[test]
    fn probs_rows_sum_to_one_and_causal() {
        let mut rng = seeded_rng(41);
        let attn = Attention::new(8, 2, &mut rng);
        let x = normal([6, 8], 1.0, &mut rng);
        let (_, cache) = attn.forward(&x);
        for p in &cache.probs {
            for i in 0..6 {
                let row = &p.data()[i * 6..(i + 1) * 6];
                let s: f32 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
                for (j, &v) in row.iter().enumerate() {
                    if j > i {
                        assert_eq!(v, 0.0, "prob at masked position ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = seeded_rng(42);
        let attn = Attention::new(8, 2, &mut rng);
        let x = normal([4, 8], 0.7, &mut rng);
        let w = normal([4, 8], 1.0, &mut rng);
        let loss = |xin: &Tensor| -> f32 {
            let (y, _) = attn.forward(xin);
            y.data()
                .iter()
                .zip(w.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let (_, cache) = attn.forward(&x);
        let mut grads = attn.zero_grads();
        let dx = attn.backward(&w, &x, &cache, &mut grads);
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn gradient_check_qkv_weights() {
        let mut rng = seeded_rng(43);
        let attn = Attention::new(8, 2, &mut rng);
        let x = normal([3, 8], 0.7, &mut rng);
        let w = normal([3, 8], 1.0, &mut rng);
        let loss = |a: &Attention| -> f32 {
            let (y, _) = a.forward(&x);
            y.data()
                .iter()
                .zip(w.data().iter())
                .map(|(p, q)| p * q)
                .sum()
        };
        let (_, cache) = attn.forward(&x);
        let mut grads = attn.zero_grads();
        attn.backward(&w, &x, &cache, &mut grads);
        let eps = 1e-3;
        for i in (0..attn.qkv.weight.numel()).step_by(17) {
            let mut ap = attn.clone();
            ap.qkv.weight.data_mut()[i] += eps;
            let mut am = attn.clone();
            am.qkv.weight.data_mut()[i] -= eps;
            let num = (loss(&ap) - loss(&am)) / (2.0 * eps);
            let ana = grads.qkv.weight.data()[i];
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + num.abs()),
                "dWqkv[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn param_count_matches_formula() {
        let attn = Attention::new(32, 4, &mut seeded_rng(44));
        // 4·H² + 4·H as in Section III-F's attention accounting.
        assert_eq!(attn.param_count(), 4 * 32 * 32 + 4 * 32);
    }
}
