//! Causal multi-head self-attention with explicit forward/backward.
//!
//! Operates on a single sequence `x: [T, H]`; batching is handled one level
//! up (the model loops samples, in parallel across rayon tasks when running
//! on the functional substrate).
//!
//! Every per-head product runs on the blocked GEMM kernels of
//! [`crate::matmul`]: heads are gathered out of the fused QKV activation
//! into contiguous `[T, dh]` buffers once, after which scores
//! (`Q·Kᵀ` via `matmul_nt`), context (`P·V` via `matmul`), and all five
//! backward products are straight kernel calls — no strided hand-rolled
//! dot loops, and no transposes are ever materialized.

use rand_chacha::ChaCha8Rng;

use crate::linear::{Linear, LinearGrads};
use crate::matmul::{
    matmul_into, matmul_nn_stable, matmul_nt, matmul_nt_into, matmul_nt_stable, matmul_tn_into,
};
use crate::ops::{scale_assign, softmax_row_inplace, softmax_rows_backward_into};
use crate::scratch;
use crate::tensor::Tensor;

/// Copies `width` columns starting at `col0` out of `src: [T, W]` into a
/// contiguous `[T, width]` tensor (the per-head gather), reusing `out`'s
/// allocation.
fn gather_cols_into(src: &Tensor, col0: usize, width: usize, out: &mut Tensor) {
    let t = src.shape().dim(0);
    let w = src.shape().dim(1);
    out.reset_for([t, width]);
    for i in 0..t {
        out.data_mut()[i * width..(i + 1) * width]
            .copy_from_slice(&src.data()[i * w + col0..i * w + col0 + width]);
    }
}

/// Writes `src: [T, width]` into columns `col0..col0+width` of
/// `dst: [T, W]` (the per-head scatter; heads own disjoint columns).
fn scatter_cols(dst: &mut Tensor, src: &Tensor, col0: usize) {
    let t = dst.shape().dim(0);
    let w = dst.shape().dim(1);
    let width = src.shape().dim(1);
    for i in 0..t {
        dst.data_mut()[i * w + col0..i * w + col0 + width]
            .copy_from_slice(&src.data()[i * width..(i + 1) * width]);
    }
}

/// Multi-head causal self-attention: fused QKV projection plus output
/// projection, mirroring a Megatron-style attention block.
#[derive(Clone, Debug)]
pub struct Attention {
    /// Fused QKV projection `[3H, H]`.
    pub qkv: Linear,
    /// Output projection `[H, H]`.
    pub proj: Linear,
    /// Number of attention heads.
    pub heads: usize,
}

/// Activations saved by [`Attention::forward`] for the backward pass.
#[derive(Clone)]
pub struct AttentionCache {
    /// Fused QKV output `[T, 3H]`.
    pub qkv_out: Tensor,
    /// Per-head attention probabilities, each `[T, T]`.
    pub probs: Vec<Tensor>,
    /// Concatenated per-head context `[T, H]` (input to the projection).
    pub ctx: Tensor,
}

/// Gradients of an [`Attention`] layer.
#[derive(Clone, Debug)]
pub struct AttentionGrads {
    /// QKV projection gradients.
    pub qkv: LinearGrads,
    /// Output projection gradients.
    pub proj: LinearGrads,
}

impl Attention {
    /// Creates an attention block for hidden size `hidden` with `heads` heads.
    ///
    /// # Panics
    /// Panics unless `hidden % heads == 0`.
    pub fn new(hidden: usize, heads: usize, rng: &mut ChaCha8Rng) -> Self {
        assert_eq!(
            hidden % heads,
            0,
            "hidden {hidden} not divisible by heads {heads}"
        );
        Attention {
            qkv: Linear::new(3 * hidden, hidden, rng),
            proj: Linear::new(hidden, hidden, rng),
            heads,
        }
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.qkv.param_count() + self.proj.param_count()
    }

    /// Allocates zeroed gradients.
    pub fn zero_grads(&self) -> AttentionGrads {
        AttentionGrads {
            qkv: self.qkv.zero_grads(),
            proj: self.proj.zero_grads(),
        }
    }

    /// Forward pass for one sequence `x: [T, H]`; returns `(y, cache)`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, AttentionCache) {
        let t = x.shape().dim(0);
        let h = x.shape().dim(1);
        let dh = h / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let qkv_out = self.qkv.forward(x); // [T, 3H]
        let mut ctx = scratch::take([t, h]); // fully overwritten by scatters
        let mut probs = Vec::with_capacity(self.heads);
        let mut q = scratch::empty();
        let mut kk = scratch::empty();
        let mut v = scratch::empty();
        let mut ctx_h = scratch::empty();

        for head in 0..self.heads {
            gather_cols_into(&qkv_out, head * dh, dh, &mut q); // [T, dh]
            gather_cols_into(&qkv_out, h + head * dh, dh, &mut kk); // [T, dh]
            gather_cols_into(&qkv_out, 2 * h + head * dh, dh, &mut v); // [T, dh]

            // scores = Q·Kᵀ · scale, causally masked, then row softmax.
            // Masked positions soften to exact zeros, so the full P·V
            // product below contributes nothing from future tokens.
            let mut p = matmul_nt(&q, &kk); // [T, T]
            for i in 0..t {
                let row = &mut p.data_mut()[i * t..(i + 1) * t];
                for rj in row.iter_mut().take(i + 1) {
                    *rj *= scale;
                }
                for rj in row.iter_mut().skip(i + 1) {
                    *rj = f32::NEG_INFINITY;
                }
                softmax_row_inplace(row);
            }

            matmul_into(&p, &v, &mut ctx_h); // [T, dh]
            scatter_cols(&mut ctx, &ctx_h, head * dh);
            probs.push(p);
        }
        scratch::give(q);
        scratch::give(kk);
        scratch::give(v);
        scratch::give(ctx_h);

        let y = self.proj.forward(&ctx);
        (
            y,
            AttentionCache {
                qkv_out,
                probs,
                ctx,
            },
        )
    }

    /// Backward pass. Given upstream `dy: [T, H]`, the layer input `x` and the
    /// forward cache, returns `dx` and accumulates parameter gradients.
    pub fn backward(
        &self,
        dy: &Tensor,
        x: &Tensor,
        cache: &AttentionCache,
        grads: &mut AttentionGrads,
    ) -> Tensor {
        let t = x.shape().dim(0);
        let h = x.shape().dim(1);
        let dh = h / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        // Through the output projection.
        let dctx = self.proj.backward(dy, &cache.ctx, &mut grads.proj); // [T, H]

        let mut dqkv = scratch::take([t, 3 * h]); // fully overwritten by scatters
        let mut q = scratch::empty();
        let mut kk = scratch::empty();
        let mut v = scratch::empty();
        let mut dctx_h = scratch::empty();
        let mut dprobs = scratch::empty();
        let mut dv = scratch::empty();
        let mut ds = scratch::empty();
        let mut dq = scratch::empty();
        let mut dk = scratch::empty();
        for head in 0..self.heads {
            let p = &cache.probs[head];
            gather_cols_into(&cache.qkv_out, head * dh, dh, &mut q);
            gather_cols_into(&cache.qkv_out, h + head * dh, dh, &mut kk);
            gather_cols_into(&cache.qkv_out, 2 * h + head * dh, dh, &mut v);
            gather_cols_into(&dctx, head * dh, dh, &mut dctx_h);

            // dP = dCtx·Vᵀ ; dV = Pᵀ·dCtx. Masked positions of dP feed
            // the softmax backward below, which zeroes them because the
            // cached probabilities are exactly zero there.
            matmul_nt_into(&dctx_h, &v, &mut dprobs); // [T, T]
            matmul_tn_into(p, &dctx_h, &mut dv); // [T, dh]

            // Through the softmax, then fold in the score scale once:
            // dQ = (dS·scale)·K ; dK = (dS·scale)ᵀ·Q.
            softmax_rows_backward_into(&dprobs, p, &mut ds); // [T, T]
            scale_assign(&mut ds, scale);
            matmul_into(&ds, &kk, &mut dq); // [T, dh]
            matmul_tn_into(&ds, &q, &mut dk); // [T, dh]

            scatter_cols(&mut dqkv, &dq, head * dh);
            scatter_cols(&mut dqkv, &dk, h + head * dh);
            scatter_cols(&mut dqkv, &dv, 2 * h + head * dh);
        }
        for tmp in [q, kk, v, dctx_h, dprobs, dv, ds, dq, dk, dctx] {
            scratch::give(tmp);
        }

        // Through the fused QKV projection.
        let dx = self.qkv.backward(&dqkv, x, &mut grads.qkv);
        scratch::give(dqkv);
        dx
    }
}

/// Per-sequence K/V cache for incremental decoding: the keys and values of
/// every token seen so far, stored head-major so the causal prefix of one
/// head is a contiguous `[len, dh]` slice ready for the stable GEMM entries.
///
/// Capacity is allocated once at construction (`2 · heads · max_seq · dh`
/// floats); [`KvCache::clear`] rewinds the logical length for slot reuse
/// without freeing, so steady-state decode never allocates.
#[derive(Clone, Debug)]
pub struct KvCache {
    k: Vec<f32>,
    v: Vec<f32>,
    heads: usize,
    dh: usize,
    max_seq: usize,
    len: usize,
}

impl KvCache {
    /// Allocates a cache for `heads` heads of width `dh`, holding up to
    /// `max_seq` tokens.
    pub fn new(heads: usize, dh: usize, max_seq: usize) -> Self {
        KvCache {
            k: vec![0.0; heads * max_seq * dh],
            v: vec![0.0; heads * max_seq * dh],
            heads,
            dh,
            max_seq,
            len: 0,
        }
    }

    /// Tokens currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Token capacity.
    pub fn max_seq(&self) -> usize {
        self.max_seq
    }

    /// Rewinds to empty without releasing storage (slot reuse).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Bytes of K/V storage this cache pins (f32 entries).
    pub fn nbytes(&self) -> u64 {
        (2 * self.heads * self.max_seq * self.dh * std::mem::size_of::<f32>()) as u64
    }

    /// The cached `[len, dh]` K prefix of one head.
    fn head_k(&self, head: usize, len: usize) -> &[f32] {
        let base = head * self.max_seq * self.dh;
        &self.k[base..base + len * self.dh]
    }

    /// The cached `[len, dh]` V prefix of one head.
    fn head_v(&self, head: usize, len: usize) -> &[f32] {
        let base = head * self.max_seq * self.dh;
        &self.v[base..base + len * self.dh]
    }

    /// Appends one token's K/V rows, sliced per head out of a fused
    /// `[3H]`-wide QKV activation row.
    fn push_token(&mut self, qkv_row: &[f32], h: usize) {
        assert!(self.len < self.max_seq, "KvCache overflow");
        for head in 0..self.heads {
            let base = (head * self.max_seq + self.len) * self.dh;
            let kcol = h + head * self.dh;
            let vcol = 2 * h + head * self.dh;
            self.k[base..base + self.dh].copy_from_slice(&qkv_row[kcol..kcol + self.dh]);
            self.v[base..base + self.dh].copy_from_slice(&qkv_row[vcol..vcol + self.dh]);
        }
        self.len += 1;
    }
}

/// Reusable workspace for [`Attention::forward_decode`]; holds the fused
/// QKV activation, one score row, and the per-token context so repeated
/// decode steps are allocation-free after warm-up.
#[derive(Clone)]
pub struct DecodeScratch {
    qkv_out: Tensor,
    scores: Vec<f32>,
    ctx: Tensor,
}

impl DecodeScratch {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        DecodeScratch {
            qkv_out: Tensor::zeros([1]),
            scores: Vec::new(),
            ctx: Tensor::zeros([1]),
        }
    }
}

impl Default for DecodeScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl Attention {
    /// Incremental causal forward for serving: runs `R` new tokens
    /// `x: [R, H]` of one sequence whose first `cache.len()` tokens are
    /// already cached, appends their K/V rows, and writes the attention
    /// output into `y: [R, H]`.
    ///
    /// Bit-compatibility contract: every product uses the batch-stable
    /// GEMM entries and every softmax runs over exactly the causal prefix
    /// `0..=pos`, so the bits of one token's output depend only on the
    /// tokens before it — a full-prompt prefill (`R = T`) and a
    /// token-at-a-time replay (`R = 1` repeatedly) produce identical
    /// streams, and co-batching other sequences cannot perturb either.
    pub fn forward_decode(
        &self,
        x: &Tensor,
        cache: &mut KvCache,
        ws: &mut DecodeScratch,
        y: &mut Tensor,
    ) {
        let r = x.shape().dim(0);
        let h = x.shape().dim(1);
        let dh = h / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        assert_eq!(cache.heads, self.heads, "KvCache heads mismatch");
        assert_eq!(cache.dh, dh, "KvCache head width mismatch");

        self.qkv.forward_stable_into(x, &mut ws.qkv_out); // [R, 3H]
        ws.scores.resize(cache.max_seq, 0.0);
        ws.ctx.reset_for([r, h]);

        for row in 0..r {
            let qkv_row = &ws.qkv_out.data()[row * 3 * h..(row + 1) * 3 * h];
            // Append this token's K/V first: causal attention includes self.
            cache.push_token(qkv_row, h);
            let pos = cache.len; // tokens visible to this query
            for head in 0..self.heads {
                let q_row = &qkv_row[head * dh..(head + 1) * dh];
                let scores = &mut ws.scores[..pos];
                matmul_nt_stable(q_row, cache.head_k(head, pos), scores, 1, dh, pos);
                for s in scores.iter_mut() {
                    *s *= scale;
                }
                softmax_row_inplace(scores);
                let ctx_row =
                    &mut ws.ctx.data_mut()[row * h + head * dh..row * h + (head + 1) * dh];
                matmul_nn_stable(
                    &ws.scores[..pos],
                    cache.head_v(head, pos),
                    ctx_row,
                    1,
                    pos,
                    dh,
                );
            }
        }
        self.proj.forward_stable_into(&ws.ctx, y);
    }
}

impl AttentionCache {
    /// Returns every cached activation's allocation to the thread-local
    /// scratch pool, so the next forward pass on this thread reuses them
    /// instead of allocating.
    pub fn recycle(self) {
        scratch::give(self.qkv_out);
        for p in self.probs {
            scratch::give(p);
        }
        scratch::give(self.ctx);
    }
}

impl AttentionGrads {
    /// Resets all gradients to zero.
    pub fn zero_(&mut self) {
        self.qkv.zero_();
        self.proj.zero_();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};

    #[test]
    fn causality_future_tokens_do_not_affect_past() {
        let mut rng = seeded_rng(40);
        let attn = Attention::new(16, 4, &mut rng);
        let x1 = normal([5, 16], 1.0, &mut rng);
        let mut x2 = x1.clone();
        // Perturb the last token only.
        for j in 0..16 {
            *x2.at_mut(&[4, j]) += 1.0;
        }
        let (y1, _) = attn.forward(&x1);
        let (y2, _) = attn.forward(&x2);
        // Outputs for tokens 0..4 must be identical.
        for i in 0..4 {
            for j in 0..16 {
                assert_eq!(
                    y1.at(&[i, j]),
                    y2.at(&[i, j]),
                    "token {i} leaked future info"
                );
            }
        }
        // Output at token 4 must differ.
        let diff: f32 = (0..16)
            .map(|j| (y1.at(&[4, j]) - y2.at(&[4, j])).abs())
            .sum();
        assert!(diff > 0.0);
    }

    #[test]
    fn probs_rows_sum_to_one_and_causal() {
        let mut rng = seeded_rng(41);
        let attn = Attention::new(8, 2, &mut rng);
        let x = normal([6, 8], 1.0, &mut rng);
        let (_, cache) = attn.forward(&x);
        for p in &cache.probs {
            for i in 0..6 {
                let row = &p.data()[i * 6..(i + 1) * 6];
                let s: f32 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
                for (j, &v) in row.iter().enumerate() {
                    if j > i {
                        assert_eq!(v, 0.0, "prob at masked position ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = seeded_rng(42);
        let attn = Attention::new(8, 2, &mut rng);
        let x = normal([4, 8], 0.7, &mut rng);
        let w = normal([4, 8], 1.0, &mut rng);
        let loss = |xin: &Tensor| -> f32 {
            let (y, _) = attn.forward(xin);
            y.data()
                .iter()
                .zip(w.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let (_, cache) = attn.forward(&x);
        let mut grads = attn.zero_grads();
        let dx = attn.backward(&w, &x, &cache, &mut grads);
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn gradient_check_qkv_weights() {
        let mut rng = seeded_rng(43);
        let attn = Attention::new(8, 2, &mut rng);
        let x = normal([3, 8], 0.7, &mut rng);
        let w = normal([3, 8], 1.0, &mut rng);
        let loss = |a: &Attention| -> f32 {
            let (y, _) = a.forward(&x);
            y.data()
                .iter()
                .zip(w.data().iter())
                .map(|(p, q)| p * q)
                .sum()
        };
        let (_, cache) = attn.forward(&x);
        let mut grads = attn.zero_grads();
        attn.backward(&w, &x, &cache, &mut grads);
        let eps = 1e-3;
        for i in (0..attn.qkv.weight.numel()).step_by(17) {
            let mut ap = attn.clone();
            ap.qkv.weight.data_mut()[i] += eps;
            let mut am = attn.clone();
            am.qkv.weight.data_mut()[i] -= eps;
            let num = (loss(&ap) - loss(&am)) / (2.0 * eps);
            let ana = grads.qkv.weight.data()[i];
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + num.abs()),
                "dWqkv[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn decode_prefill_equals_token_at_a_time_bitwise() {
        let mut rng = seeded_rng(45);
        let attn = Attention::new(16, 4, &mut rng);
        let t = 7;
        let x = normal([t, 16], 1.0, &mut rng);

        // One-shot prefill of all T tokens.
        let mut cache_a = KvCache::new(4, 4, t);
        let mut ws_a = DecodeScratch::new();
        let mut y_a = Tensor::zeros([1]);
        attn.forward_decode(&x, &mut cache_a, &mut ws_a, &mut y_a);

        // Token-at-a-time replay of the same sequence.
        let mut cache_b = KvCache::new(4, 4, t);
        let mut ws_b = DecodeScratch::new();
        let mut y_b = Tensor::zeros([1]);
        let mut row = Tensor::zeros([1, 16]);
        for i in 0..t {
            row.data_mut()
                .copy_from_slice(&x.data()[i * 16..(i + 1) * 16]);
            attn.forward_decode(&row, &mut cache_b, &mut ws_b, &mut y_b);
            for j in 0..16 {
                assert_eq!(
                    y_a.at(&[i, j]).to_bits(),
                    y_b.at(&[0, j]).to_bits(),
                    "decode bits diverge from prefill at token {i} col {j}"
                );
            }
        }
        assert_eq!(cache_a.len(), cache_b.len());
    }

    #[test]
    fn decode_matches_training_forward_numerically() {
        // The serving path softmaxes the exact causal prefix while training
        // softmaxes the full masked row, so bits may differ — but values
        // must agree to float tolerance.
        let mut rng = seeded_rng(46);
        let attn = Attention::new(16, 4, &mut rng);
        let t = 6;
        let x = normal([t, 16], 1.0, &mut rng);
        let (y_train, _) = attn.forward(&x);
        let mut cache = KvCache::new(4, 4, t);
        let mut ws = DecodeScratch::new();
        let mut y_serve = Tensor::zeros([1]);
        attn.forward_decode(&x, &mut cache, &mut ws, &mut y_serve);
        assert!(y_train.max_abs_diff(&y_serve) < 1e-5);
    }

    #[test]
    fn kv_cache_clear_reuses_storage() {
        let mut rng = seeded_rng(47);
        let attn = Attention::new(8, 2, &mut rng);
        let x = normal([3, 8], 1.0, &mut rng);
        let mut cache = KvCache::new(2, 4, 8);
        let mut ws = DecodeScratch::new();
        let mut y1 = Tensor::zeros([1]);
        attn.forward_decode(&x, &mut cache, &mut ws, &mut y1);
        let first = y1.clone();
        cache.clear();
        assert!(cache.is_empty());
        let mut y2 = Tensor::zeros([1]);
        attn.forward_decode(&x, &mut cache, &mut ws, &mut y2);
        for (a, b) in first.data().iter().zip(y2.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "slot reuse changed bits");
        }
    }

    #[test]
    fn param_count_matches_formula() {
        let attn = Attention::new(32, 4, &mut seeded_rng(44));
        // 4·H² + 4·H as in Section III-F's attention accounting.
        assert_eq!(attn.param_count(), 4 * 32 * 32 + 4 * 32);
    }
}
