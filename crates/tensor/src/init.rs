//! Seeded parameter initialization.
//!
//! All initializers take an explicit [`ChaCha8Rng`] so model construction is
//! bit-reproducible across runs and thread counts — a prerequisite for the
//! exact-equivalence tests between offloaded and resident training.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Creates the deterministic RNG used throughout the workspace.
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Normal(0, std²) initialization (Box–Muller on uniform draws so the result
/// does not depend on `rand`'s distribution internals).
pub fn normal(shape: impl Into<Shape>, std: f32, rng: &mut ChaCha8Rng) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        // Box–Muller transform: two uniforms -> two independent normals.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        data.push((r * theta.cos()) as f32 * std);
        if data.len() < n {
            data.push((r * theta.sin()) as f32 * std);
        }
    }
    Tensor::from_vec(shape, data)
}

/// Xavier/Glorot-uniform initialization for a `[fan_out, fan_in]` weight.
pub fn xavier_uniform(fan_out: usize, fan_in: usize, rng: &mut ChaCha8Rng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    let n = fan_in * fan_out;
    let data = (0..n).map(|_| rng.gen_range(-limit..=limit)).collect();
    Tensor::from_vec([fan_out, fan_in], data)
}

/// GPT-2 style scaled-normal init (std = 0.02, residual projections scaled by
/// 1/sqrt(2·n_layers) by the caller).
pub fn gpt2_normal(shape: impl Into<Shape>, rng: &mut ChaCha8Rng) -> Tensor {
    normal(shape, 0.02, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let a = normal([128], 1.0, &mut seeded_rng(7));
        let b = normal([128], 1.0, &mut seeded_rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = normal([128], 1.0, &mut seeded_rng(1));
        let b = normal([128], 1.0, &mut seeded_rng(2));
        assert!(a.max_abs_diff(&b) > 0.0);
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let t = normal([40_000], 0.5, &mut seeded_rng(3));
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.numel() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn xavier_within_limit() {
        let t = xavier_uniform(64, 32, &mut seeded_rng(4));
        let limit = (6.0f32 / 96.0).sqrt() + 1e-6;
        assert!(t.data().iter().all(|x| x.abs() <= limit));
        assert_eq!(t.shape().dims(), &[64, 32]);
    }

    #[test]
    fn odd_length_normal() {
        let t = normal([7], 1.0, &mut seeded_rng(5));
        assert_eq!(t.numel(), 7);
        assert!(t.all_finite());
    }
}
