//! Per-thread reusable scratch tensors.
//!
//! The forward/backward passes of attention and the transformer block
//! need a handful of short-lived temporaries per call (per-head gathers,
//! score matrices, intermediate gradients). Allocating them fresh each
//! time dominated the step loop's allocator traffic, so layers instead
//! *rent* buffers from a thread-local pool and return them when done:
//!
//! ```
//! use stronghold_tensor::scratch;
//!
//! let t = scratch::take([4, 8]); // contents unspecified
//! // ... fully overwrite and use `t` ...
//! scratch::give(t); // recycle the allocation
//! ```
//!
//! Rented tensors have **unspecified contents** — callers must fully
//! overwrite them (the `*_into` kernel variants all do). The pool is
//! thread-local, so parallel workers (e.g. multi-stream executors) each
//! keep their own workspace and no locking is involved; it is bounded,
//! so a burst of odd shapes cannot grow it without limit.

use std::cell::RefCell;

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Maximum number of pooled buffers per thread. Beyond this, returned
/// buffers are simply dropped (steady-state loops use far fewer).
const MAX_POOLED: usize = 64;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Rents a tensor of the given shape from this thread's pool. Contents
/// are unspecified; the caller must overwrite them.
pub fn take(shape: impl Into<Shape>) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.resize(n, 0.0);
    Tensor::from_vec(shape, buf)
}

/// Rents an empty (`[0]`-shaped) tensor whose backing allocation comes
/// from the pool. Intended for the `*_into` kernels, which `reset_for`
/// the output themselves — the pooled capacity is retained, so a
/// steady-state `empty()` → `*_into` → [`give`] cycle never allocates.
pub fn empty() -> Tensor {
    take([0])
}

/// Rents a tensor and fills it with a copy of `src`.
pub fn take_copy(src: &Tensor) -> Tensor {
    let mut t = take(*src.shape());
    t.data_mut().copy_from_slice(src.data());
    t
}

/// Returns a rented (or any other) tensor's allocation to this thread's
/// pool for reuse.
pub fn give(t: Tensor) {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(t.into_vec());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_reuses_allocation() {
        let t = take([8, 8]);
        assert_eq!(t.numel(), 64);
        let ptr = t.data().as_ptr();
        let cap = t.data().len();
        give(t);
        let t2 = take([4, 16]); // same numel => same buffer back
        assert_eq!(t2.numel(), cap);
        assert_eq!(t2.data().as_ptr(), ptr);
        give(t2);
    }

    #[test]
    fn take_grows_when_needed() {
        let t = take([2]);
        give(t);
        let big = take([100]);
        assert_eq!(big.numel(), 100);
        give(big);
    }
}
