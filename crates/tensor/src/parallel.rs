//! Megatron-style tensor parallelism on the functional substrate.
//!
//! Under tensor parallelism the paper's offloading unit becomes a *sliced
//! layer* (§III-C). This module implements the two canonical slicings and
//! executes the shards on real threads:
//!
//! * [`ColumnParallelLinear`] — output features split across ranks; each
//!   rank computes a disjoint output slice, results concatenate (used for
//!   the QKV and MLP up-projections).
//! * [`RowParallelLinear`] — input features split across ranks; partial
//!   products are all-reduced in fixed rank order (used for the attention
//!   output and MLP down-projections).
//! * [`head_parallel_attention`] — attention heads split across ranks;
//!   head outputs are disjoint, so the sharded result is **bit-identical**
//!   to the unsharded layer.

use crate::attention::Attention;
use crate::linear::Linear;
use crate::tensor::Tensor;

/// Splits a `[out, in]` linear by output features into `ranks` shards.
///
/// # Panics
/// Panics unless `out % ranks == 0`.
pub fn split_column_parallel(l: &Linear, ranks: usize) -> ColumnParallelLinear {
    let out = l.out_features();
    let inf = l.in_features();
    assert_eq!(out % ranks, 0, "out {out} not divisible by ranks {ranks}");
    let per = out / ranks;
    let shards = (0..ranks)
        .map(|r| {
            let w = Tensor::from_vec(
                [per, inf],
                l.weight.data()[r * per * inf..(r + 1) * per * inf].to_vec(),
            );
            let b = Tensor::from_vec([per], l.bias.data()[r * per..(r + 1) * per].to_vec());
            Linear { weight: w, bias: b }
        })
        .collect();
    ColumnParallelLinear { shards }
}

/// Splits a `[out, in]` linear by input features into `ranks` shards.
///
/// # Panics
/// Panics unless `in % ranks == 0`.
pub fn split_row_parallel(l: &Linear, ranks: usize) -> RowParallelLinear {
    let out = l.out_features();
    let inf = l.in_features();
    assert_eq!(inf % ranks, 0, "in {inf} not divisible by ranks {ranks}");
    let per = inf / ranks;
    let shards = (0..ranks)
        .map(|r| {
            let mut w = Tensor::zeros([out, per]);
            for o in 0..out {
                let src = &l.weight.data()[o * inf + r * per..o * inf + (r + 1) * per];
                w.data_mut()[o * per..(o + 1) * per].copy_from_slice(src);
            }
            // Bias applies once, on rank 0.
            let b = if r == 0 {
                l.bias.clone()
            } else {
                Tensor::zeros([out])
            };
            Linear { weight: w, bias: b }
        })
        .collect();
    RowParallelLinear { shards, out }
}

/// A column-parallel (output-sharded) linear layer.
pub struct ColumnParallelLinear {
    /// Per-rank shards (each `[out/ranks, in]`).
    pub shards: Vec<Linear>,
}

impl ColumnParallelLinear {
    /// Parallel forward: shards compute on scoped threads; outputs
    /// concatenate (the implicit all-gather).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let rows = x.shape().dim(0);
        let per = self.shards[0].out_features();
        let parts: Vec<Tensor> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|s| scope.spawn(move || s.forward(x)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard"))
                .collect()
        });
        let total = per * self.shards.len();
        let mut out = Tensor::zeros([rows, total]);
        for (r, p) in parts.iter().enumerate() {
            for row in 0..rows {
                out.data_mut()[row * total + r * per..row * total + (r + 1) * per]
                    .copy_from_slice(&p.data()[row * per..(row + 1) * per]);
            }
        }
        out
    }

    /// Shard count.
    pub fn ranks(&self) -> usize {
        self.shards.len()
    }

    /// Parameters per shard (the offloading unit size under MP).
    pub fn shard_params(&self) -> usize {
        self.shards[0].param_count()
    }
}

/// A row-parallel (input-sharded) linear layer.
pub struct RowParallelLinear {
    /// Per-rank shards (each `[out, in/ranks]`).
    pub shards: Vec<Linear>,
    out: usize,
}

impl RowParallelLinear {
    /// Parallel forward: each rank consumes its input slice; partials are
    /// all-reduced in fixed rank order (deterministic reduction).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let rows = x.shape().dim(0);
        let ranks = self.shards.len();
        let full_in = x.shape().dim(1);
        let per = full_in / ranks;
        let partials: Vec<Tensor> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(r, s)| {
                    scope.spawn(move || {
                        // Slice this rank's input columns.
                        let mut xr = Tensor::zeros([rows, per]);
                        for row in 0..rows {
                            xr.data_mut()[row * per..(row + 1) * per].copy_from_slice(
                                &x.data()[row * full_in + r * per..row * full_in + (r + 1) * per],
                            );
                        }
                        s.forward(&xr)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard"))
                .collect()
        });
        // All-reduce in rank order.
        let mut out = Tensor::zeros([rows, self.out]);
        for p in &partials {
            crate::ops::add_assign(&mut out, p);
        }
        out
    }

    /// Shard count.
    pub fn ranks(&self) -> usize {
        self.shards.len()
    }
}

/// Runs an attention layer with its heads partitioned across `ranks`
/// thread-shards. Head outputs are disjoint slices of the context, so the
/// result is bit-identical to the unsharded forward.
pub fn head_parallel_attention(attn: &Attention, x: &Tensor, ranks: usize) -> Tensor {
    assert_eq!(attn.heads % ranks, 0, "heads not divisible by ranks");
    let t = x.shape().dim(0);
    let h = x.shape().dim(1);
    let dh = h / attn.heads;
    let heads_per = attn.heads / ranks;

    // Shared QKV output (column-parallel in a real deployment; computed
    // once here — the sharding under test is the attention math itself).
    let qkv_out = attn.qkv.forward(x);

    let ctx_parts: Vec<Tensor> = std::thread::scope(|scope| {
        let qkv_ref = &qkv_out;
        let handles: Vec<_> = (0..ranks)
            .map(|r| {
                scope.spawn(move || {
                    let mut ctx = Tensor::zeros([t, heads_per * dh]);
                    for hh in 0..heads_per {
                        let head = r * heads_per + hh;
                        attention_one_head(qkv_ref, t, h, dh, head, hh, &mut ctx);
                    }
                    ctx
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|hd| hd.join().expect("rank"))
            .collect()
    });

    // Concatenate head slices back into [T, H] and apply the (row-parallel
    // in deployment) output projection once.
    let mut ctx = Tensor::zeros([t, h]);
    for (r, part) in ctx_parts.iter().enumerate() {
        let w = heads_per * dh;
        for row in 0..t {
            ctx.data_mut()[row * h + r * w..row * h + (r + 1) * w]
                .copy_from_slice(&part.data()[row * w..(row + 1) * w]);
        }
    }
    attn.proj.forward(&ctx)
}

/// Causal attention for a single head, writing its context slice.
fn attention_one_head(
    qkv_out: &Tensor,
    t: usize,
    h: usize,
    dh: usize,
    head: usize,
    local: usize,
    ctx: &mut Tensor,
) {
    let q_off = head * dh;
    let k_off = h + head * dh;
    let v_off = 2 * h + head * dh;
    let scale = 1.0 / (dh as f32).sqrt();
    let width = ctx.shape().dim(1);
    for i in 0..t {
        let qi = &qkv_out.data()[i * 3 * h + q_off..i * 3 * h + q_off + dh];
        let mut row = vec![f32::NEG_INFINITY; t];
        for (j, rj) in row.iter_mut().enumerate().take(i + 1) {
            let kj = &qkv_out.data()[j * 3 * h + k_off..j * 3 * h + k_off + dh];
            *rj = qi.iter().zip(kj).map(|(a, b)| a * b).sum::<f32>() * scale;
        }
        crate::ops::softmax_row_inplace(&mut row);
        let mut acc = vec![0.0f32; dh];
        for (j, &pj) in row.iter().enumerate().take(i + 1) {
            if pj != 0.0 {
                let vj = &qkv_out.data()[j * 3 * h + v_off..j * 3 * h + v_off + dh];
                for (a, v) in acc.iter_mut().zip(vj) {
                    *a += pj * v;
                }
            }
        }
        ctx.data_mut()[i * width + local * dh..i * width + (local + 1) * dh].copy_from_slice(&acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};

    #[test]
    fn column_parallel_is_bit_identical() {
        let mut rng = seeded_rng(90);
        let l = Linear::new(12, 8, &mut rng);
        let x = normal([5, 8], 1.0, &mut rng);
        let full = l.forward(&x);
        for ranks in [1, 2, 3, 4, 6] {
            let cp = split_column_parallel(&l, ranks);
            assert_eq!(cp.forward(&x), full, "ranks {ranks}");
            assert_eq!(cp.ranks(), ranks);
        }
    }

    #[test]
    fn row_parallel_matches_within_tolerance() {
        let mut rng = seeded_rng(91);
        let l = Linear::new(6, 12, &mut rng);
        let x = normal([4, 12], 1.0, &mut rng);
        let full = l.forward(&x);
        for ranks in [1, 2, 3, 4] {
            let rp = split_row_parallel(&l, ranks);
            let got = rp.forward(&x);
            assert!(
                got.max_abs_diff(&full) < 1e-5,
                "ranks {ranks}: diff {}",
                got.max_abs_diff(&full)
            );
        }
    }

    #[test]
    fn row_parallel_rank1_is_exact() {
        let mut rng = seeded_rng(92);
        let l = Linear::new(5, 10, &mut rng);
        let x = normal([3, 10], 1.0, &mut rng);
        let rp = split_row_parallel(&l, 1);
        assert_eq!(rp.forward(&x), l.forward(&x));
    }

    #[test]
    fn head_parallel_attention_bit_identical() {
        let mut rng = seeded_rng(93);
        let attn = Attention::new(16, 4, &mut rng);
        let x = normal([6, 16], 1.0, &mut rng);
        let (full, _) = attn.forward(&x);
        for ranks in [1, 2, 4] {
            let sharded = head_parallel_attention(&attn, &x, ranks);
            assert_eq!(sharded, full, "ranks {ranks}");
        }
    }

    #[test]
    fn shard_param_counts_divide() {
        let mut rng = seeded_rng(94);
        let l = Linear::new(12, 8, &mut rng);
        let cp = split_column_parallel(&l, 4);
        // weights split exactly; biases split exactly.
        assert_eq!(cp.shard_params() * 4, l.param_count());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_split_rejected() {
        let mut rng = seeded_rng(95);
        let l = Linear::new(10, 8, &mut rng);
        let _ = split_column_parallel(&l, 3);
    }
}
