//! Memory-occupancy tracking with OOM detection.
//!
//! Every simulated memory space (GPU device memory, CPU RAM, pinned regions,
//! NVMe) is a [`MemTracker`]: allocations and frees are recorded as
//! timestamped byte deltas, and the *peak* concurrent occupancy over the
//! iteration is compared against capacity. Because asynchronous offloading
//! deliberately overlaps lifetimes, peak occupancy — not the sum of
//! allocations — is what determines whether a model trains or OOMs, exactly
//! as on real hardware.

use crate::time::SimTime;

/// Error returned when peak occupancy exceeds capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OomError {
    /// Space name.
    pub space: String,
    /// Peak bytes observed.
    pub peak: u64,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Time of first over-capacity moment.
    pub at: SimTime,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: out of memory at {} (peak {:.2} GiB > capacity {:.2} GiB)",
            self.space,
            self.at,
            self.peak as f64 / (1u64 << 30) as f64,
            self.capacity as f64 / (1u64 << 30) as f64
        )
    }
}

impl std::error::Error for OomError {}

/// A capacity-limited memory space with timestamped occupancy accounting.
#[derive(Clone, Debug)]
pub struct MemTracker {
    name: String,
    capacity: u64,
    /// Base occupancy present for the whole iteration (static residency).
    base: u64,
    /// Timestamped deltas: positive = alloc, negative = free.
    events: Vec<(SimTime, i64)>,
}

impl MemTracker {
    /// Creates a tracker for a space with `capacity` bytes.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        MemTracker {
            name: name.into(),
            capacity,
            base: 0,
            events: Vec::new(),
        }
    }

    /// Space name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Registers bytes resident for the whole iteration (model states that
    /// never move, reserved buffer pools, runtime overhead).
    pub fn reserve_static(&mut self, bytes: u64) {
        self.base += bytes;
    }

    /// Static residency registered so far.
    pub fn static_bytes(&self) -> u64 {
        self.base
    }

    /// Records an allocation live over `[from, until]`.
    pub fn alloc_span(&mut self, bytes: u64, from: SimTime, until: SimTime) {
        debug_assert!(until >= from);
        if bytes == 0 {
            return;
        }
        self.events.push((from, bytes as i64));
        self.events.push((until, -(bytes as i64)));
    }

    /// Records an allocation at `at` with no recorded free (lives to the end
    /// of the iteration).
    pub fn alloc_open(&mut self, bytes: u64, at: SimTime) {
        if bytes > 0 {
            self.events.push((at, bytes as i64));
        }
    }

    /// Records a free at `at` for an earlier [`MemTracker::alloc_open`].
    pub fn free(&mut self, bytes: u64, at: SimTime) {
        if bytes > 0 {
            self.events.push((at, -(bytes as i64)));
        }
    }

    /// Computes `(peak bytes, time of peak)` by sweeping the delta stream.
    /// Frees at the same instant as allocations apply first (a recycled
    /// buffer does not double-count during the handover).
    pub fn peak(&self) -> (u64, SimTime) {
        let mut ev = self.events.clone();
        ev.sort_by_key(|(t, d)| (*t, *d)); // negatives (frees) first at equal t
        let mut cur = self.base as i64;
        let mut peak = cur;
        let mut at = SimTime::ZERO;
        for (t, d) in ev {
            cur += d;
            if cur > peak {
                peak = cur;
                at = t;
            }
        }
        (peak.max(0) as u64, at)
    }

    /// Checks the peak against capacity.
    pub fn check(&self) -> Result<u64, OomError> {
        let (peak, at) = self.peak();
        if peak > self.capacity {
            Err(OomError {
                space: self.name.clone(),
                peak,
                capacity: self.capacity,
                at,
            })
        } else {
            Ok(peak)
        }
    }

    /// Clears dynamic events (keeps static residency), for a new iteration.
    pub fn reset_dynamic(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn peak_of_overlapping_spans() {
        let mut m = MemTracker::new("gpu", 100);
        m.alloc_span(40, ms(0), ms(10));
        m.alloc_span(40, ms(5), ms(15)); // overlaps -> peak 80
        m.alloc_span(40, ms(20), ms(30)); // disjoint
        let (peak, at) = m.peak();
        assert_eq!(peak, 80);
        assert_eq!(at, ms(5));
        assert!(m.check().is_ok());
    }

    #[test]
    fn oom_detected() {
        let mut m = MemTracker::new("gpu", 50);
        m.alloc_span(40, ms(0), ms(10));
        m.alloc_span(40, ms(5), ms(15));
        let err = m.check().unwrap_err();
        assert_eq!(err.peak, 80);
        assert_eq!(err.capacity, 50);
    }

    #[test]
    fn recycled_buffer_does_not_double_count() {
        let mut m = MemTracker::new("gpu", 100);
        // Buffer freed at t=10 and a new one allocated at exactly t=10.
        m.alloc_span(100, ms(0), ms(10));
        m.alloc_span(100, ms(10), ms(20));
        assert_eq!(m.peak().0, 100);
        assert!(m.check().is_ok());
    }

    #[test]
    fn static_residency_adds_to_peak() {
        let mut m = MemTracker::new("gpu", 100);
        m.reserve_static(30);
        m.alloc_span(50, ms(0), ms(5));
        assert_eq!(m.peak().0, 80);
    }

    #[test]
    fn open_alloc_and_free() {
        let mut m = MemTracker::new("cpu", 1000);
        m.alloc_open(100, ms(0));
        m.alloc_open(200, ms(5));
        m.free(100, ms(7));
        assert_eq!(m.peak().0, 300);
    }

    proptest! {
        /// Peak equals a brute-force sweep over all span boundaries.
        #[test]
        fn prop_peak_matches_bruteforce(
            spans in proptest::collection::vec((0u64..100, 1u64..50, 1u64..1000), 1..40)
        ) {
            let mut m = MemTracker::new("x", u64::MAX);
            for (start, len, bytes) in &spans {
                m.alloc_span(*bytes, ms(*start), ms(start + len));
            }
            let peak = m.peak().0;
            // Brute force: evaluate occupancy in each half-open interval
            // between consecutive boundaries.
            let mut bounds: Vec<u64> = spans.iter().flat_map(|(s, l, _)| [*s, s + l]).collect();
            bounds.sort_unstable();
            bounds.dedup();
            let mut brute = 0u64;
            for w in bounds.windows(2) {
                let t = w[0]; // occupancy on [w0, w1)
                let occ: u64 = spans
                    .iter()
                    .filter(|(s, l, _)| *s <= t && t < s + l)
                    .map(|(_, _, b)| *b)
                    .sum();
                brute = brute.max(occ);
            }
            prop_assert_eq!(peak, brute);
        }
    }
}
