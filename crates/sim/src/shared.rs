//! A processor-sharing resource: the SM-array model behind multi-stream
//! execution (§IV-A).
//!
//! Unlike a FIFO server, a shared resource runs all admitted operations
//! *concurrently*. Each op declares a capacity demand (its SM occupancy);
//! while total demand stays within capacity every op progresses at full
//! rate, and beyond that all rates scale by `capacity / demand` — classic
//! malleable processor sharing, solved exactly with an event-driven sweep.

use crate::time::SimTime;

/// One operation to run on the shared resource.
#[derive(Clone, Copy, Debug)]
pub struct SharedOp {
    /// Release time (earliest start).
    pub ready: SimTime,
    /// Work in seconds of exclusive full-rate execution.
    pub work: f64,
    /// Fraction of the resource the op can use at most (0, 1].
    pub demand: f64,
}

/// Computes the completion time of every op under processor sharing with
/// total capacity 1.0. Exact: integrates rates between arrival/completion
/// events.
pub fn schedule_shared(ops: &[SharedOp]) -> Vec<SimTime> {
    assert!(ops.iter().all(|o| o.demand > 0.0 && o.demand <= 1.0));
    let n = ops.len();
    let mut remaining: Vec<f64> = ops.iter().map(|o| o.work).collect();
    let mut done: Vec<Option<f64>> = vec![None; n];
    let mut now = 0.0f64;
    let mut active: Vec<usize> = Vec::new();
    let mut pending: Vec<usize> = (0..n).collect();
    pending.sort_by(|a, b| ops[*a].ready.cmp(&ops[*b].ready).then(a.cmp(b)));
    let mut pending = std::collections::VecDeque::from(pending);

    while done.iter().any(Option::is_none) {
        // Admit released ops.
        while let Some(&i) = pending.front() {
            if ops[i].ready.as_secs_f64() <= now + 1e-15 {
                active.push(pending.pop_front().unwrap());
            } else {
                break;
            }
        }
        if active.is_empty() {
            // Jump to the next release.
            let next = pending.front().expect("work remains");
            now = ops[*next].ready.as_secs_f64();
            continue;
        }
        // Current rates: proportional throttling when oversubscribed.
        let total_demand: f64 = active.iter().map(|&i| ops[i].demand).sum();
        let scale = if total_demand > 1.0 {
            1.0 / total_demand
        } else {
            1.0
        };
        // Time to the next completion at current rates.
        let mut dt_complete = f64::INFINITY;
        for &i in &active {
            let rate = ops[i].demand * scale;
            dt_complete = dt_complete.min(remaining[i] / rate);
        }
        // Time to the next release.
        let dt_release = pending
            .front()
            .map(|&i| ops[i].ready.as_secs_f64() - now)
            .unwrap_or(f64::INFINITY);
        let dt = dt_complete.min(dt_release).max(0.0);
        // Advance.
        for &i in &active {
            remaining[i] -= ops[i].demand * scale * dt;
        }
        now += dt;
        // Retire completed ops.
        active.retain(|&i| {
            if remaining[i] <= 1e-12 {
                done[i] = Some(now);
                false
            } else {
                true
            }
        });
    }
    done.into_iter()
        .map(|t| SimTime::from_secs_f64(t.expect("completed")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn op(ready_ms: u64, work: f64, demand: f64) -> SharedOp {
        SharedOp {
            ready: SimTime::from_millis(ready_ms),
            work,
            demand,
        }
    }

    fn secs(t: SimTime) -> f64 {
        t.as_secs_f64()
    }

    #[test]
    fn single_op_runs_at_its_demand() {
        // 1s of work at 50% occupancy takes 2s alone? No: demand caps the
        // op's own rate, so work/demand.
        let out = schedule_shared(&[op(0, 1.0, 0.5)]);
        assert!((secs(out[0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn undersubscribed_ops_do_not_interfere() {
        // Two ops at 0.4 demand each: total 0.8 <= 1, both finish as if alone.
        let out = schedule_shared(&[op(0, 0.4, 0.4), op(0, 0.4, 0.4)]);
        assert!((secs(out[0]) - 1.0).abs() < 1e-9);
        assert!((secs(out[1]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_stretches_everyone() {
        // Two full-demand ops share the array: each runs at 0.5 rate.
        let out = schedule_shared(&[op(0, 1.0, 1.0), op(0, 1.0, 1.0)]);
        assert!((secs(out[0]) - 2.0).abs() < 1e-9);
        assert!((secs(out[1]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_integrates_correctly() {
        // Op A (2s of work, full demand) starts at 0; op B (1s, full) at t=1.
        // [0,1): A alone at rate 1 -> A has 1s left. [1,...): share at 0.5.
        // A finishes at 1 + 1/0.5 = 3. B: at rate .5 until A done? B has
        // 1 - 0.5*2 = 0 at t=3 too.
        let out = schedule_shared(&[op(0, 2.0, 1.0), op(1000, 1.0, 1.0)]);
        assert!((secs(out[0]) - 3.0).abs() < 1e-9, "{}", secs(out[0]));
        assert!((secs(out[1]) - 3.0).abs() < 1e-9, "{}", secs(out[1]));
    }

    #[test]
    fn idle_gap_jumps_to_release() {
        let out = schedule_shared(&[op(5000, 1.0, 1.0)]);
        assert!((secs(out[0]) - 6.0).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        /// Conservation: total completed work never exceeds capacity x time,
        /// and every op finishes no earlier than ready + work/demand.
        #[test]
        fn prop_bounds(ops_in in proptest::collection::vec(
            (0u64..1000, 0.01f64..2.0, 0.1f64..1.0), 1..12)
        ) {
            let ops: Vec<SharedOp> = ops_in.iter().map(|(r, w, d)| op(*r, *w, *d)).collect();
            let out = schedule_shared(&ops);
            let makespan = out.iter().map(|t| secs(*t)).fold(0.0, f64::max);
            let total_work: f64 = ops.iter().map(|o| o.work).sum();
            prop_assert!(total_work <= makespan + 1e-6, "capacity violated");
            for (o, t) in ops.iter().zip(&out) {
                let lower = o.ready.as_secs_f64() + o.work / o.demand;
                prop_assert!(secs(*t) + 1e-6 >= lower, "finished impossibly early");
            }
        }

        /// Adding an op never speeds up the others (monotonicity).
        #[test]
        fn prop_monotone_under_load(
            base in proptest::collection::vec((0u64..500, 0.05f64..1.0, 0.2f64..1.0), 1..6),
            extra in (0u64..500, 0.05f64..1.0, 0.2f64..1.0)
        ) {
            let ops: Vec<SharedOp> = base.iter().map(|(r, w, d)| op(*r, *w, *d)).collect();
            let before = schedule_shared(&ops);
            let mut with_extra = ops.clone();
            with_extra.push(op(extra.0, extra.1, extra.2));
            let after = schedule_shared(&with_extra);
            for i in 0..ops.len() {
                prop_assert!(secs(after[i]) + 1e-9 >= secs(before[i]), "op {i} sped up");
            }
        }
    }
}
