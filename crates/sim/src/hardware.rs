//! Hardware specifications of the paper's two evaluation platforms (§V-A).

use serde::{Deserialize, Serialize};

/// One gibibyte.
pub const GIB: u64 = 1 << 30;

/// GPU device specification.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Device memory in bytes.
    pub mem_bytes: u64,
    /// Peak FP32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Device memory bandwidth in bytes/s (bounds on-GPU optimizer updates).
    pub mem_bw: f64,
    /// Number of streaming multiprocessors (caps concurrent streams).
    pub sms: usize,
}

/// CPU and host-memory specification.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Physical cores available to the optimizer pool.
    pub cores: usize,
    /// Host RAM in bytes.
    pub ram_bytes: u64,
    /// Aggregate host memory bandwidth in bytes/s.
    pub mem_bw: f64,
}

/// PCIe link between host and device.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PcieSpec {
    /// Effective bandwidth for pinned, bulk transfers (bytes/s per direction).
    pub pinned_bw: f64,
    /// Effective bandwidth for pageable / per-tensor synchronous copies.
    pub pageable_bw: f64,
}

/// NVMe secondary storage (§III-G).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NvmeSpec {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Sequential read bandwidth (bytes/s).
    pub read_bw: f64,
    /// Sequential write bandwidth (bytes/s).
    pub write_bw: f64,
}

/// Inter-node network.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetSpec {
    /// Per-node network bandwidth in bytes/s.
    pub bw: f64,
}

/// A complete evaluation platform.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Platform {
    /// GPU per node.
    pub gpu: GpuSpec,
    /// CPU per node.
    pub cpu: CpuSpec,
    /// Host↔device link.
    pub pcie: PcieSpec,
    /// Optional NVMe tier.
    pub nvme: Option<NvmeSpec>,
    /// Optional network (multi-node platforms).
    pub net: Option<NetSpec>,
    /// Number of nodes.
    pub nodes: usize,
}

impl Platform {
    /// The paper's main platform: one 32 GB V100, 2×24-core Xeon 8163,
    /// 755 GB DDR4, PCIe 3.0 ×16, plus a 2 TB PCIe 4.0 NVMe for §VI-C3.
    pub fn v100_server() -> Platform {
        Platform {
            gpu: GpuSpec {
                mem_bytes: 32 * GIB,
                peak_flops: 15.7e12, // V100 FP32 peak
                mem_bw: 900e9,
                sms: 80,
            },
            cpu: CpuSpec {
                cores: 48,
                ram_bytes: 755 * GIB,
                mem_bw: 120e9,
            },
            pcie: PcieSpec {
                pinned_bw: 11.0e9,  // PCIe 3.0 ×16 measured pinned bulk
                pageable_bw: 0.7e9, // per-tensor pageable synchronous copies
            },
            nvme: Some(NvmeSpec {
                capacity: 2048 * GIB,
                read_bw: 6.5e9, // PCIe 4.0 NVMe (paper: "up to 7 GB/s")
                write_bw: 4.0e9,
            }),
            net: None,
            nodes: 1,
        }
    }

    /// One node of the paper's A10 cluster: 24 GB A10 (Ampere), 2×64-core
    /// Xeon 8369B, 1 TB DDR4, 800 Gbps GPUDirect-RDMA network.
    pub fn a10_cluster(nodes: usize) -> Platform {
        Platform {
            gpu: GpuSpec {
                mem_bytes: 24 * GIB,
                peak_flops: 31.2e12, // A10 FP32 peak
                mem_bw: 600e9,
                sms: 72,
            },
            cpu: CpuSpec {
                cores: 128,
                ram_bytes: 1024 * GIB,
                mem_bw: 200e9,
            },
            pcie: PcieSpec {
                pinned_bw: 22.0e9, // PCIe 4.0 ×16
                pageable_bw: 1.5e9,
            },
            nvme: None,
            net: Some(NetSpec { bw: 12.5e9 }), // 800 Gbps aggregate = 100 Gbps/node
            nodes,
        }
    }

    /// The 8-node cluster used throughout §VI.
    pub fn a10_cluster_8() -> Platform {
        Platform::a10_cluster(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_paper() {
        let p = Platform::v100_server();
        assert_eq!(p.gpu.mem_bytes, 32 * GIB);
        assert_eq!(p.cpu.ram_bytes, 755 * GIB);
        assert_eq!(p.cpu.cores, 48);
        assert_eq!(p.nodes, 1);
        assert!(p.nvme.is_some());
        assert!(p.net.is_none());
    }

    #[test]
    fn a10_cluster_matches_paper() {
        let p = Platform::a10_cluster_8();
        assert_eq!(p.nodes, 8);
        assert_eq!(p.gpu.mem_bytes, 24 * GIB);
        assert_eq!(p.cpu.ram_bytes, 1024 * GIB);
        assert_eq!(p.cpu.cores, 128);
        let net = p.net.unwrap();
        assert!((net.bw - 12.5e9).abs() < 1.0);
    }

    #[test]
    fn pinned_faster_than_pageable() {
        for p in [Platform::v100_server(), Platform::a10_cluster_8()] {
            assert!(p.pcie.pinned_bw > p.pcie.pageable_bw * 3.0);
        }
    }
}
