//! Simulated hardware resources.
//!
//! Two server models cover every unit in the platform:
//!
//! * [`FifoResource`] — a single-server FIFO queue (a CUDA stream, one PCIe
//!   DMA direction, the NVMe controller, a network link). Operations issued
//!   to it serialize; an op starts at `max(free_at, deps)`.
//! * [`WorkerPool`] — `k` identical FIFO servers with greedy
//!   earliest-available dispatch (the CPU-optimizer actor pool, §III-E1).

use crate::time::{max_time, SimTime};

/// A single-server FIFO resource.
#[derive(Clone, Debug)]
pub struct FifoResource {
    name: String,
    free_at: SimTime,
    busy: SimTime,
    ops: u64,
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new(name: impl Into<String>) -> Self {
        FifoResource {
            name: name.into(),
            free_at: SimTime::ZERO,
            busy: SimTime::ZERO,
            ops: 0,
        }
    }

    /// Resource name (for traces).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schedules an operation that becomes ready at `ready` (max of its
    /// dependencies) and takes `duration`. Returns `(start, end)`.
    pub fn schedule(&mut self, ready: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let start = self.free_at.max(ready);
        let end = start + duration;
        self.free_at = end;
        self.busy += duration;
        self.ops += 1;
        (start, end)
    }

    /// Time at which the resource next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time scheduled so far.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of operations scheduled.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            (self.busy.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
        }
    }

    /// Resets to idle (new iteration).
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
        self.busy = SimTime::ZERO;
        self.ops = 0;
    }
}

/// A pool of `k` identical FIFO servers with earliest-available dispatch.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    name: String,
    free_at: Vec<SimTime>,
    busy: SimTime,
    ops: u64,
}

impl WorkerPool {
    /// Creates a pool of `workers` idle servers.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(name: impl Into<String>, workers: usize) -> Self {
        assert!(workers > 0, "worker pool must have at least one worker");
        WorkerPool {
            name: name.into(),
            free_at: vec![SimTime::ZERO; workers],
            busy: SimTime::ZERO,
            ops: 0,
        }
    }

    /// Pool name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.free_at.len()
    }

    /// Dispatches a task to the earliest-available worker. Ties break on the
    /// lowest worker index, keeping the schedule deterministic. Returns
    /// `(worker, start, end)`.
    pub fn dispatch(&mut self, ready: SimTime, duration: SimTime) -> (usize, SimTime, SimTime) {
        let (w, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .expect("non-empty pool");
        let start = self.free_at[w].max(ready);
        let end = start + duration;
        self.free_at[w] = end;
        self.busy += duration;
        self.ops += 1;
        (w, start, end)
    }

    /// Time when *all* workers are free (pool drain time).
    pub fn drain_time(&self) -> SimTime {
        max_time(self.free_at.iter().copied())
    }

    /// Total busy time across workers.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of tasks dispatched.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Resets all workers to idle.
    pub fn reset(&mut self) {
        self.free_at.iter_mut().for_each(|t| *t = SimTime::ZERO);
        self.busy = SimTime::ZERO;
        self.ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_serializes() {
        let mut r = FifoResource::new("pcie");
        let (s1, e1) = r.schedule(SimTime::ZERO, SimTime::from_millis(10));
        let (s2, e2) = r.schedule(SimTime::ZERO, SimTime::from_millis(5));
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(e1, SimTime::from_millis(10));
        assert_eq!(s2, e1, "second op waits for the first");
        assert_eq!(e2, SimTime::from_millis(15));
    }

    #[test]
    fn fifo_respects_readiness() {
        let mut r = FifoResource::new("x");
        let (s, e) = r.schedule(SimTime::from_millis(7), SimTime::from_millis(1));
        assert_eq!(s, SimTime::from_millis(7));
        assert_eq!(e, SimTime::from_millis(8));
    }

    #[test]
    fn fifo_utilization() {
        let mut r = FifoResource::new("x");
        r.schedule(SimTime::ZERO, SimTime::from_millis(30));
        assert!((r.utilization(SimTime::from_millis(60)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pool_runs_tasks_concurrently() {
        let mut p = WorkerPool::new("adam", 3);
        let d = SimTime::from_millis(10);
        for _ in 0..3 {
            let (_, s, e) = p.dispatch(SimTime::ZERO, d);
            assert_eq!(s, SimTime::ZERO);
            assert_eq!(e, d);
        }
        // Fourth task waits.
        let (_, s4, _) = p.dispatch(SimTime::ZERO, d);
        assert_eq!(s4, d);
        assert_eq!(p.drain_time(), SimTime::from_millis(20));
    }

    #[test]
    fn pool_dispatch_is_deterministic() {
        let mut a = WorkerPool::new("p", 4);
        let mut b = WorkerPool::new("p", 4);
        for i in 0..20u64 {
            let d = SimTime::from_micros(100 + i * 7);
            assert_eq!(a.dispatch(SimTime::ZERO, d), b.dispatch(SimTime::ZERO, d));
        }
    }

    proptest! {
        #[test]
        fn prop_pool_k_times_faster_for_equal_tasks(
            workers in 1usize..8, tasks in 1usize..40, dur_ms in 1u64..50
        ) {
            let mut p = WorkerPool::new("p", workers);
            let d = SimTime::from_millis(dur_ms);
            for _ in 0..tasks {
                p.dispatch(SimTime::ZERO, d);
            }
            let rounds = tasks.div_ceil(workers) as u64;
            prop_assert_eq!(p.drain_time(), SimTime::from_millis(rounds * dur_ms));
        }

        #[test]
        fn prop_fifo_end_equals_sum(durs in proptest::collection::vec(1u64..100, 1..30)) {
            let mut r = FifoResource::new("x");
            let mut end = SimTime::ZERO;
            for d in &durs {
                end = r.schedule(SimTime::ZERO, SimTime::from_millis(*d)).1;
            }
            prop_assert_eq!(end, SimTime::from_millis(durs.iter().sum()));
        }
    }
}
