//! Execution timelines: per-lane segment recording, utilization statistics
//! and an ASCII trace renderer (the reproduction of the paper's Fig. 4
//! profiling trace).

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A lane identifies one hardware unit in the rendered trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Lane {
    /// GPU compute stream `k`.
    Compute(u8),
    /// Host→device copy engine.
    CopyIn,
    /// Device→host copy engine.
    CopyOut,
    /// CPU optimizer pool (aggregated).
    CpuOptim,
    /// NVMe I/O channel.
    Nvme,
    /// Network / collective channel.
    Network,
}

impl Lane {
    /// Short label used by the ASCII renderer.
    pub fn label(&self) -> String {
        match self {
            Lane::Compute(k) => format!("GPU-compute[{k}]"),
            Lane::CopyIn => "H2D-copy".to_string(),
            Lane::CopyOut => "D2H-copy".to_string(),
            Lane::CpuOptim => "CPU-optim".to_string(),
            Lane::Nvme => "NVMe-io".to_string(),
            Lane::Network => "Network".to_string(),
        }
    }

    fn glyph(&self) -> char {
        match self {
            Lane::Compute(_) => '#',
            Lane::CopyIn => '>',
            Lane::CopyOut => '<',
            Lane::CpuOptim => 'o',
            Lane::Nvme => '%',
            Lane::Network => '~',
        }
    }
}

/// One scheduled operation in the trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Segment {
    /// Hardware lane.
    pub lane: Lane,
    /// Operation label, e.g. `"fp L12"`.
    pub label: String,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

/// An append-only recording of every operation of one simulated iteration.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    segments: Vec<Segment>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Records one operation.
    pub fn record(&mut self, lane: Lane, label: impl Into<String>, start: SimTime, end: SimTime) {
        debug_assert!(end >= start, "segment ends before it starts");
        self.segments.push(Segment {
            lane,
            label: label.into(),
            start,
            end,
        });
    }

    /// All recorded segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Latest end time across all lanes (the iteration makespan).
    pub fn makespan(&self) -> SimTime {
        self.segments
            .iter()
            .map(|s| s.end)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Total busy time on one lane.
    pub fn busy(&self, lane: Lane) -> SimTime {
        self.segments
            .iter()
            .filter(|s| s.lane == lane)
            .fold(SimTime::ZERO, |acc, s| acc + (s.end - s.start))
    }

    /// Distinct lanes with at least one segment, in `Lane` order.
    pub fn lanes(&self) -> Vec<Lane> {
        let mut lanes: Vec<Lane> = self.segments.iter().map(|s| s.lane).collect();
        lanes.sort();
        lanes.dedup();
        lanes
    }

    /// Busy intervals of one lane as `(start_ns, end_ns)` pairs sorted by
    /// start — the bridge feeding resource occupancy into the runtime
    /// telemetry layer (which speaks nanoseconds, not `SimTime`).
    pub fn busy_intervals(&self, lane: Lane) -> Vec<(u64, u64)> {
        let mut iv: Vec<(u64, u64)> = self
            .segments
            .iter()
            .filter(|s| s.lane == lane)
            .map(|s| (s.start.as_nanos(), s.end.as_nanos()))
            .collect();
        iv.sort_unstable();
        iv
    }

    /// Busy time across all compute lanes.
    pub fn compute_busy(&self) -> SimTime {
        self.segments
            .iter()
            .filter(|s| matches!(s.lane, Lane::Compute(_)))
            .fold(SimTime::ZERO, |acc, s| acc + (s.end - s.start))
    }

    /// Utilization of a lane over the makespan.
    pub fn utilization(&self, lane: Lane) -> f64 {
        let m = self.makespan();
        if m == SimTime::ZERO {
            0.0
        } else {
            self.busy(lane).as_secs_f64() / m.as_secs_f64()
        }
    }

    /// Fraction of copy time (H2D + D2H) hidden under compute: 1.0 means all
    /// communication overlapped (the paper's "completely hide the data
    /// transfer overhead", §III-A).
    pub fn overlap_fraction(&self) -> f64 {
        let copy: f64 = self
            .segments
            .iter()
            .filter(|s| matches!(s.lane, Lane::CopyIn | Lane::CopyOut))
            .map(|s| (s.end - s.start).as_secs_f64())
            .sum();
        if copy == 0.0 {
            return 1.0;
        }
        // Copy time exposed beyond compute-busy intervals: approximate by
        // comparing the makespan with pure-compute critical path.
        let compute = self.compute_busy().as_secs_f64();
        let makespan = self.makespan().as_secs_f64();
        let exposed = (makespan - compute).max(0.0).min(copy);
        1.0 - exposed / copy
    }

    /// Verifies no two segments on the same lane overlap (FIFO legality).
    ///
    /// The CPU-optimizer lane aggregates a *pool* of workers (§III-E1), so
    /// concurrent segments there are intended and exempt from the check.
    pub fn assert_lanes_serialized(&self) {
        let mut by_lane: std::collections::BTreeMap<Lane, Vec<(SimTime, SimTime)>> =
            std::collections::BTreeMap::new();
        for s in &self.segments {
            if s.lane == Lane::CpuOptim {
                continue;
            }
            by_lane.entry(s.lane).or_default().push((s.start, s.end));
        }
        for (lane, mut v) in by_lane {
            v.sort();
            for w in v.windows(2) {
                assert!(
                    w[1].0 >= w[0].1,
                    "lane {lane:?}: segment starting {} overlaps one ending {}",
                    w[1].0,
                    w[0].1
                );
            }
        }
    }

    /// Exports the trace in Chrome tracing (`chrome://tracing` /
    /// Perfetto) JSON array format: one complete event (`ph: "X"`) per
    /// segment, lanes mapped to thread ids.
    pub fn to_chrome_trace(&self) -> String {
        let mut lanes: Vec<Lane> = self.segments.iter().map(|s| s.lane).collect();
        lanes.sort();
        lanes.dedup();
        let tid_of = |lane: Lane| lanes.iter().position(|l| *l == lane).unwrap_or(0);
        let mut out = String::from("[");
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                s.label.replace('"', "'"),
                s.lane.label(),
                s.start.as_nanos() / 1_000,
                (s.end - s.start).as_nanos() / 1_000,
                tid_of(s.lane)
            ));
        }
        out.push(']');
        out
    }

    /// Renders an ASCII Gantt chart of the iteration (Fig. 4 analogue).
    /// `width` is the number of character columns for the time axis.
    pub fn render_ascii(&self, width: usize) -> String {
        let makespan = self.makespan();
        if makespan == SimTime::ZERO || self.segments.is_empty() {
            return String::from("(empty timeline)\n");
        }
        let mut lanes: Vec<Lane> = self.segments.iter().map(|s| s.lane).collect();
        lanes.sort();
        lanes.dedup();
        let scale = width as f64 / makespan.as_nanos() as f64;
        let mut out = String::new();
        for lane in lanes {
            let mut row = vec!['.'; width];
            for s in self.segments.iter().filter(|s| s.lane == lane) {
                let a = (s.start.as_nanos() as f64 * scale) as usize;
                let b = ((s.end.as_nanos() as f64 * scale) as usize)
                    .max(a + 1)
                    .min(width);
                for c in row.iter_mut().take(b).skip(a) {
                    *c = lane.glyph();
                }
            }
            out.push_str(&format!("{:>14} |", lane.label()));
            out.extend(row);
            out.push_str(&format!("| {:>5.1}%\n", self.utilization(lane) * 100.0));
        }
        out.push_str(&format!(
            "{:>14}  makespan {} | overlap {:.1}%\n",
            "",
            makespan,
            self.overlap_fraction() * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn makespan_and_busy() {
        let mut t = Timeline::new();
        t.record(Lane::Compute(0), "fp L0", ms(0), ms(10));
        t.record(Lane::Compute(0), "fp L1", ms(10), ms(25));
        t.record(Lane::CopyIn, "in L2", ms(0), ms(5));
        assert_eq!(t.makespan(), ms(25));
        assert_eq!(t.busy(Lane::Compute(0)), ms(25));
        assert_eq!(t.busy(Lane::CopyIn), ms(5));
        t.assert_lanes_serialized();
    }

    #[test]
    fn overlap_full_when_copies_hidden() {
        let mut t = Timeline::new();
        t.record(Lane::Compute(0), "fp", ms(0), ms(100));
        t.record(Lane::CopyIn, "in", ms(10), ms(30));
        assert!((t.overlap_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_partial_when_exposed() {
        let mut t = Timeline::new();
        t.record(Lane::Compute(0), "fp", ms(0), ms(50));
        t.record(Lane::CopyIn, "in", ms(50), ms(150)); // fully exposed
        let f = t.overlap_fraction();
        assert!(f < 0.1, "overlap fraction {f}");
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_lane_detected() {
        let mut t = Timeline::new();
        t.record(Lane::Compute(0), "a", ms(0), ms(10));
        t.record(Lane::Compute(0), "b", ms(5), ms(15));
        t.assert_lanes_serialized();
    }

    #[test]
    fn ascii_render_contains_lanes() {
        let mut t = Timeline::new();
        t.record(Lane::Compute(0), "fp", ms(0), ms(10));
        t.record(Lane::CopyIn, "in", ms(0), ms(4));
        let s = t.render_ascii(40);
        assert!(s.contains("GPU-compute[0]"));
        assert!(s.contains("H2D-copy"));
        assert!(s.contains("makespan"));
    }

    #[test]
    fn chrome_trace_is_valid_json_events() {
        let mut t = Timeline::new();
        t.record(Lane::Compute(0), "fp L0", ms(0), ms(10));
        t.record(Lane::CopyIn, "h2d L1", ms(2), ms(5));
        let j = t.to_chrome_trace();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"name\":\"fp L0\""));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"dur\":3000"));
        // Distinct lanes get distinct tids.
        assert!(j.contains("\"tid\":0") && j.contains("\"tid\":1"));
    }

    #[test]
    fn busy_intervals_sorted_per_lane() {
        let mut t = Timeline::new();
        t.record(Lane::CopyIn, "in L1", ms(10), ms(14));
        t.record(Lane::CopyIn, "in L0", ms(0), ms(4));
        t.record(Lane::Compute(0), "fp", ms(0), ms(20));
        assert_eq!(t.lanes(), vec![Lane::Compute(0), Lane::CopyIn]);
        let iv = t.busy_intervals(Lane::CopyIn);
        assert_eq!(
            iv,
            vec![
                (0, ms(4).as_nanos()),
                (ms(10).as_nanos(), ms(14).as_nanos())
            ]
        );
        assert!(t.busy_intervals(Lane::Nvme).is_empty());
    }

    #[test]
    fn utilization_bounds() {
        let mut t = Timeline::new();
        t.record(Lane::Compute(0), "fp", ms(0), ms(10));
        t.record(Lane::CopyOut, "out", ms(0), ms(2));
        assert!((t.utilization(Lane::Compute(0)) - 1.0).abs() < 1e-9);
        assert!((t.utilization(Lane::CopyOut) - 0.2).abs() < 1e-9);
    }
}
