//! The cost model: maps layers, byte counts and batch sizes to operation
//! durations on a [`Platform`].
//!
//! This is the single place where FLOPs and bytes become virtual time; the
//! runtime and every baseline price their operations here, so comparisons
//! between methods are apples-to-apples by construction.

use stronghold_model::layer::LayerSpec;

use crate::calibration as cal;
use crate::hardware::Platform;
use crate::time::SimTime;

/// Transfer class for CPU↔GPU copies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CopyKind {
    /// Pinned host memory, bulk per-layer copy (STRONGHOLD's buffer pool,
    /// ZeRO's staged transfers).
    PinnedBulk,
    /// Pageable, per-tensor synchronous copies (L2L's transfer path).
    PageableSync,
}

/// Duration calculator for one platform.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// The hardware this model prices against.
    pub platform: Platform,
}

impl CostModel {
    /// Creates a cost model for `platform`.
    pub fn new(platform: Platform) -> Self {
        CostModel { platform }
    }

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    /// Achieved GPU FLOP/s at a given per-kernel batch size.
    pub fn achieved_flops(&self, batch: usize) -> f64 {
        self.platform.gpu.peak_flops * cal::kernel_efficiency(batch as f64)
    }

    /// Forward-pass time for one layer at `batch` samples.
    pub fn layer_fp(&self, layer: &LayerSpec, batch: usize) -> SimTime {
        let flops = layer.flops_fp as f64 * batch as f64;
        Self::secs(flops / self.achieved_flops(batch)) + SimTime::from_micros(cal::KERNEL_LAUNCH_US)
    }

    /// Backward-pass time for one layer at `batch` samples, including the
    /// activation-checkpointing forward recompute (footnote 2 of the paper).
    pub fn layer_bp(&self, layer: &LayerSpec, batch: usize) -> SimTime {
        let flops = (layer.flops_bp + layer.flops_fp) as f64 * batch as f64;
        Self::secs(flops / self.achieved_flops(batch)) + SimTime::from_micros(cal::KERNEL_LAUNCH_US)
    }

    /// Host→device transfer time for `bytes`.
    pub fn h2d(&self, bytes: u64, kind: CopyKind) -> SimTime {
        self.copy_time(bytes, kind)
    }

    /// Device→host transfer time for `bytes`.
    pub fn d2h(&self, bytes: u64, kind: CopyKind) -> SimTime {
        self.copy_time(bytes, kind)
    }

    fn copy_time(&self, bytes: u64, kind: CopyKind) -> SimTime {
        let bw = match kind {
            CopyKind::PinnedBulk => self.platform.pcie.pinned_bw,
            CopyKind::PageableSync => self.platform.pcie.pageable_bw,
        };
        Self::secs(bytes as f64 / bw) + SimTime::from_micros(cal::COPY_LATENCY_US)
    }

    /// One asynchronous runtime call (`t_async`, §III-D).
    pub fn t_async(&self) -> SimTime {
        SimTime::from_micros(cal::T_ASYNC_US)
    }

    /// On-GPU Adam step for one layer (memory-bandwidth bound).
    pub fn gpu_optim(&self, layer: &LayerSpec) -> SimTime {
        let bytes = layer.params as f64 * cal::ADAM_BYTES_PER_PARAM;
        Self::secs(bytes / (self.platform.gpu.mem_bw * cal::GPU_ADAM_BW_FRACTION))
    }

    /// CPU Adam step for one layer executed by a single pool worker.
    pub fn cpu_optim(&self, layer: &LayerSpec) -> SimTime {
        let bytes = layer.params as f64 * cal::ADAM_BYTES_PER_PARAM;
        Self::secs(bytes / self.effective_adam_worker_bw(1))
    }

    /// CPU Adam step when `workers` cooperate on one tensor (ZeRO-Offload's
    /// single fused OMP optimizer).
    pub fn cpu_optim_fused(&self, total_params: u64, workers: usize) -> SimTime {
        let bytes = total_params as f64 * cal::ADAM_BYTES_PER_PARAM;
        Self::secs(bytes / self.effective_adam_worker_bw(workers))
    }

    /// Aggregate bandwidth `workers` Adam threads sustain.
    pub fn effective_adam_worker_bw(&self, workers: usize) -> f64 {
        let linear = workers as f64 * cal::ADAM_PER_WORKER_BW;
        linear.min(self.platform.cpu.mem_bw * cal::ADAM_POOL_BW_FRACTION)
    }

    /// Number of optimizer-pool workers that still scale (beyond this the
    /// pool is memory-bandwidth bound).
    pub fn useful_optim_workers(&self) -> usize {
        let cap = self.platform.cpu.mem_bw * cal::ADAM_POOL_BW_FRACTION / cal::ADAM_PER_WORKER_BW;
        (cap.floor() as usize).clamp(1, self.platform.cpu.cores)
    }

    /// NVMe read time for `bytes` (returns `None` without an NVMe tier).
    pub fn nvme_read(&self, bytes: u64) -> Option<SimTime> {
        self.platform
            .nvme
            .map(|n| Self::secs(bytes as f64 / n.read_bw) + SimTime::from_micros(100))
    }

    /// NVMe write time for `bytes`.
    pub fn nvme_write(&self, bytes: u64) -> Option<SimTime> {
        self.platform
            .nvme
            .map(|n| Self::secs(bytes as f64 / n.write_bw) + SimTime::from_micros(100))
    }

    /// Ring all-reduce time for `bytes` across `world` ranks over links of
    /// `link_bw` bytes/s: `2·(w−1)/w · bytes / bw` plus per-step latency.
    pub fn ring_allreduce(&self, bytes: u64, world: usize, link_bw: f64) -> SimTime {
        if world <= 1 {
            return SimTime::ZERO;
        }
        let w = world as f64;
        let vol = 2.0 * (w - 1.0) / w * bytes as f64;
        Self::secs(vol / link_bw) + SimTime::from_micros(30) * (2 * (world as u64 - 1))
    }

    /// Ring all-gather time for `bytes` of *output* across `world` ranks.
    pub fn ring_allgather(&self, bytes: u64, world: usize, link_bw: f64) -> SimTime {
        if world <= 1 {
            return SimTime::ZERO;
        }
        let w = world as f64;
        let vol = (w - 1.0) / w * bytes as f64;
        Self::secs(vol / link_bw) + SimTime::from_micros(30) * (world as u64 - 1)
    }

    /// Intra-GPU gradient all-reduce among `streams` concurrent executors
    /// (§IV-A) — device-bandwidth bound.
    pub fn intra_gpu_allreduce(&self, bytes: u64, streams: usize) -> SimTime {
        if streams <= 1 {
            return SimTime::ZERO;
        }
        let vol = bytes as f64 * (streams as f64 - 1.0) / streams as f64 * 2.0;
        Self::secs(vol / self.platform.gpu.mem_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::common_1_7b;
    use stronghold_model::layer::build_layers;

    fn v100() -> CostModel {
        CostModel::new(Platform::v100_server())
    }

    #[test]
    fn fp_time_scales_superlinearly_below_saturation() {
        let layers = build_layers(&common_1_7b());
        let block = &layers[1];
        let t2 = v100().layer_fp(block, 2);
        let t4 = v100().layer_fp(block, 4);
        // More samples -> more time, but less than 2x (efficiency rises).
        assert!(t4 > t2);
        assert!(t4.as_nanos() < 2 * t2.as_nanos());
    }

    #[test]
    fn bp_slower_than_fp() {
        let layers = build_layers(&common_1_7b());
        let block = &layers[1];
        let cm = v100();
        // BP includes recompute: 3x forward FLOPs.
        let fp = cm.layer_fp(block, 4).as_secs_f64();
        let bp = cm.layer_bp(block, 4).as_secs_f64();
        assert!(bp > 2.5 * fp && bp < 3.5 * fp, "fp {fp} bp {bp}");
    }

    #[test]
    fn pinned_copies_beat_pageable() {
        let cm = v100();
        let bytes = 300 << 20;
        assert!(cm.h2d(bytes, CopyKind::PinnedBulk) < cm.h2d(bytes, CopyKind::PageableSync));
    }

    #[test]
    fn transfer_hides_under_compute_for_1_7b() {
        // The anchor behind STRONGHOLD ≥ Megatron on the 1.7B model (Fig 8a):
        // per-layer H2D must fit under per-layer FP compute at batch 4.
        let layers = build_layers(&common_1_7b());
        let block = &layers[1];
        let cm = v100();
        let fp = cm.layer_fp(block, 4);
        let h2d = cm.h2d(block.param_bytes(), CopyKind::PinnedBulk);
        assert!(fp > h2d, "fp {fp} vs h2d {h2d}");
    }

    #[test]
    fn optimizer_pool_saturates() {
        let cm = v100();
        let one = cm.effective_adam_worker_bw(1);
        let many = cm.effective_adam_worker_bw(48);
        assert!(many > one);
        assert!(many <= cm.platform.cpu.mem_bw);
        assert!(cm.useful_optim_workers() >= 4);
    }

    #[test]
    fn allreduce_costs_grow_with_world() {
        let cm = CostModel::new(Platform::a10_cluster_8());
        let b = 1 << 30;
        let bw = cm.platform.net.unwrap().bw;
        let t2 = cm.ring_allreduce(b, 2, bw);
        let t8 = cm.ring_allreduce(b, 8, bw);
        assert!(t8 > t2);
        assert_eq!(cm.ring_allreduce(b, 1, bw), SimTime::ZERO);
    }

    #[test]
    fn nvme_only_when_present() {
        let v = v100();
        assert!(v.nvme_read(1 << 30).is_some());
        let a = CostModel::new(Platform::a10_cluster_8());
        assert!(a.nvme_read(1 << 30).is_none());
    }

    #[test]
    fn gpu_adam_fast_cpu_adam_slow() {
        let layers = build_layers(&common_1_7b());
        let block = &layers[1];
        let cm = v100();
        assert!(cm.gpu_optim(block) < cm.cpu_optim(block));
    }
}
