//! Virtual time.

use serde::{Deserialize, Serialize};

/// A point in virtual time, in nanoseconds since iteration start.
///
/// `SimTime` is also used for durations; the arithmetic saturates on
/// subtraction so schedules can never go negative.
///
/// # Examples
///
/// ```
/// use stronghold_sim::SimTime;
///
/// let a = SimTime::from_millis(250);
/// let b = SimTime::from_secs_f64(0.75);
/// assert_eq!((a + b).as_secs_f64(), 1.0);
/// assert_eq!(a - b, SimTime::ZERO); // saturating
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From fractional seconds (rounds to nanoseconds; negative clamps to 0).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Raw nanoseconds.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Larger of two times.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// Smaller of two times.
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl std::ops::Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ms = self.as_millis_f64();
        if ms >= 1000.0 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{ms:.2}ms")
        }
    }
}

/// Maximum of an iterator of times (ZERO when empty).
pub fn max_time<I: IntoIterator<Item = SimTime>>(iter: I) -> SimTime {
    iter.into_iter().fold(SimTime::ZERO, SimTime::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn saturating_arithmetic() {
        let a = SimTime::from_millis(2);
        let b = SimTime::from_millis(5);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(b - a, SimTime::from_millis(3));
    }

    #[test]
    fn ordering_and_max() {
        let t = max_time([SimTime(4), SimTime(9), SimTime(2)]);
        assert_eq!(t, SimTime(9));
        assert_eq!(max_time(std::iter::empty()), SimTime::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimTime::from_secs_f64(2.5)), "2.500s");
    }
}
