//! Calibration constants for the performance model.
//!
//! Every constant is anchored to an observation in the paper or to a
//! well-known hardware characteristic; DESIGN.md §1 explains the calibration
//! policy (reproduce *shapes and ratios*, not absolute samples/s).

/// GPU kernel efficiency model: achieved FLOP/s = `peak × batch_util(bs)`.
///
/// Transformer kernels on V100-class parts are launch- and occupancy-bound at
/// small per-kernel batch; utilization saturates as the batch grows. The
/// half-saturation constant is calibrated so STRONGHOLD's measured 6–9
/// TFLOPS at 42–57% of V100 peak (§VI-B) falls out at batch 8–16.
pub const BATCH_HALF_SATURATION: f64 = 8.0;

/// Half-saturation constant of the kernel *FLOP-rate* curve. Separate from
/// the SM-packing curve: a small-batch kernel still reaches a reasonable
/// fraction of peak on the SMs it occupies (tokens parallelize within one
/// sample), which is why splitting a batch across concurrent streams wins
/// (§IV-A / Fig. 11).
pub const EFFICIENCY_HALF_SATURATION: f64 = 2.5;

/// Maximum fraction of peak FLOPs any kernel schedule reaches (memory-bound
/// ceiling; §VI-B's best case is 57% of peak).
pub const MAX_KERNEL_EFFICIENCY: f64 = 0.57;

/// Per-kernel *occupancy* of the SM array, used by the multi-stream model
/// (§IV-A): concurrent kernels pack until their summed utilization reaches
/// 1.0, after which durations stretch proportionally.
pub fn batch_util(batch: f64) -> f64 {
    (batch / (batch + BATCH_HALF_SATURATION)).clamp(0.0, 1.0)
}

/// Achieved fraction of peak FLOPs for a kernel at this batch size
/// (normalized so the ceiling is reached at batch 16, the paper's largest).
pub fn kernel_efficiency(batch: f64) -> f64 {
    let sat = |b: f64| b / (b + EFFICIENCY_HALF_SATURATION);
    (MAX_KERNEL_EFFICIENCY * sat(batch) / sat(16.0)).min(MAX_KERNEL_EFFICIENCY)
}

/// Overhead of one asynchronous runtime call (`t_async` in §III-D): hook
/// dispatch + stream-op launch through the actor layer.
pub const T_ASYNC_US: u64 = 250;

/// Fixed launch/teardown latency of one bulk CPU↔GPU transfer beyond the
/// bandwidth term (allocator round-trip + cudaMemcpyAsync launch + event).
pub const COPY_LATENCY_US: u64 = 700;

/// Fixed per-kernel launch overhead added to each layer's compute time.
pub const KERNEL_LAUNCH_US: u64 = 120;

/// Effective bytes of reads+writes a CPU Adam step touches per parameter:
/// read p, g, m, v; write p, m, v — 7 FP32 words.
pub const ADAM_BYTES_PER_PARAM: f64 = 28.0;

/// Fraction of host memory bandwidth one optimizer worker thread sustains.
/// Vectorized Adam is memory-bound; a single core drives ~8 GB/s on these
/// Xeons, and the pool saturates at roughly half the socket bandwidth.
pub const ADAM_PER_WORKER_BW: f64 = 8.0e9;

/// Cap on the aggregate optimizer-pool bandwidth as a fraction of host
/// memory bandwidth (other traffic — pinned-buffer copies, gradient
/// staging — shares the memory controllers).
pub const ADAM_POOL_BW_FRACTION: f64 = 0.5;

/// Effective fraction of GPU memory bandwidth available to the fused
/// on-device Adam kernel.
pub const GPU_ADAM_BW_FRACTION: f64 = 0.7;

/// Fraction of host RAM usable for pinned model-state storage. Anchors
/// STRONGHOLD's 39.5 B ceiling on the 755 GB V100 host: 755 GiB × 0.78 / 16 B
/// ≈ 39.6 B parameters (§VI-A1).
pub const HOST_USABLE_FRACTION: f64 = 0.78;

/// Per-node pinned (page-locked) allocation budget as a fraction of RAM on
/// the production A10 cluster. Anchors Fig. 6b: 8 nodes × 1 TiB × 0.15 /
/// 16 B ≈ 82.5 B parameters for STRONGHOLD.
pub const CLUSTER_PINNED_FRACTION: f64 = 0.15;

/// Extra *GPU* bytes per parameter that ZeRO-Infinity's runtime model
/// refactoring keeps live (the paper: "requires making a copy of the
/// refactored model parameters, incurring extra GPU memory overhead",
/// §VI-A1). Anchors its 20.6 B ceiling on the 32 GB V100.
pub const ZINF_GPU_BYTES_PER_PARAM: f64 = 1.3;

/// Derating of NVMe bandwidth for ZeRO-Infinity's demand-paged,
/// per-parameter-group swap traffic (small, scattered I/O versus
/// STRONGHOLD's asynchronous *bulk* reads/writes, §III-G). Anchors the
/// paper's "up to 29.2× slowdown when NVMe is used" for ZeRO-Infinity and
/// the ≥8× STRONGHOLD advantage of Fig. 10.
pub const ZINF_NVME_SMALL_IO_DERATE: f64 = 0.15;

/// CPU bytes per parameter ZeRO-Infinity keeps when offloading everything
/// (fp16 shards + fp32 master + Adam + partition-alignment padding and
/// staging buffers). Anchors its 56.9 B cluster ceiling (Fig. 6b).
pub const ZINF_CPU_BYTES_PER_PARAM: f64 = 23.0;

/// Bytes of Adam state per parameter L2L keeps *on the GPU* (it stores
/// optimizer state in half precision on-device; anchors its ≈6 B ceiling).
pub const L2L_GPU_OPT_BYTES_PER_PARAM: f64 = 4.0;

/// Per-layer synchronization stall of ZeRO-Infinity's partition
/// gather/refactor path (all-gather launch + re-partition bookkeeping).
pub const ZINF_LAYER_SYNC_US: u64 = 2_000;

/// Per-layer stall of L2L's fully synchronous copy-compute-copy pipeline.
pub const L2L_LAYER_SYNC_US: u64 = 1_500;

/// Multi-stream executor scheduling overhead per extra concurrent stream
/// (context switching between executors, per-stream event bookkeeping).
pub const STREAM_OVERHEAD_FRACTION: f64 = 0.06;

/// Cost of one raw device allocator call (cudaMalloc/cudaFree including the
/// implicit device synchronization the paper's §III-E3 calls "expensive
/// runtime"; under concurrent NVMe DMA traffic these stalls stretch into
/// the milliseconds). Calibrated so disabling the pooled allocator in the
/// otherwise-full system reproduces Fig. 14's 2.2x memory-management bar.
pub const ALLOC_OP_US: u64 = 8_000;

/// Effective bandwidth of ZeRO-Offload/Infinity's fused CPU Adam path
/// (fp16<->fp32 conversion passes plus the update itself; anchors the paper's
/// "less than 57% of Megatron-LM" observation for ZeRO on the 1.7B model).
pub const ZERO_CPU_ADAM_BW: f64 = 8.0e9;

/// Distinct parameter tensors per transformer block (`k` in §III-E3: two
/// layernorm pairs, fused QKV w/b, attention projection w/b, two MLP w/b).
pub const TENSORS_PER_LAYER: usize = 12;

/// Per-layer, per-pass bookkeeping overhead of ZeRO-2/3's partitioned
/// data-parallel machinery (gradient bucketing, partition hooks, launch
/// serialization — dominant at the small per-GPU batches the memory
/// pressure forces). Anchors Fig. 12's ≥2.6× STRONGHOLD advantage.
pub const ZERO_DP_LAYER_OVERHEAD_US: u64 = 45_000;

/// A calibration measured on a real host run (the closed feedback loop of
/// the autotuner PR): totals over `steps` training steps, distilled from
/// telemetry span tracks and device traffic counters by
/// `core::host::autotune::calibrate_host`. The constants above are the
/// model's *priors*; a `HostCalibration` replaces them with this box's
/// observed bandwidths and overlap so the simulator predicts host step
/// times within a tested error bound (see `tests/tests/autotune.rs`).
///
/// Plain numbers only — `sim` cannot depend on `core`, so the bridge that
/// fills this struct from live telemetry lives on the core side.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HostCalibration {
    /// Training steps the measurement covers.
    pub steps: u64,
    /// Total wall time of those steps.
    pub wall_ns: u64,
    /// Total compute-track busy time (union of compute spans).
    pub compute_ns: u64,
    /// Total host→device traffic.
    pub h2d_bytes: u64,
    /// Total H2D copy-track busy time.
    pub h2d_busy_ns: u64,
    /// Total device→host traffic.
    pub d2h_bytes: u64,
    /// Total D2H copy-track busy time.
    pub d2h_busy_ns: u64,
    /// Time copy spans ran concurrently with compute spans (the pipeline's
    /// hidden transfer time).
    pub overlap_ns: u64,
    /// Total file→host spill-tier traffic (window fills + optimizer
    /// page-ins of spilled layers; 0 without a file tier).
    pub spill_read_bytes: u64,
    /// Total "spill-read" track busy time.
    pub spill_read_busy_ns: u64,
    /// Total host→file spill-tier traffic (optimizer write-backs).
    pub spill_write_bytes: u64,
    /// Total "spill-write" track busy time.
    pub spill_write_busy_ns: u64,
}

impl HostCalibration {
    /// Measured H2D bandwidth in bytes per nanosecond (0 if nothing moved).
    pub fn h2d_bandwidth(&self) -> f64 {
        if self.h2d_busy_ns == 0 {
            0.0
        } else {
            self.h2d_bytes as f64 / self.h2d_busy_ns as f64
        }
    }

    /// Measured D2H bandwidth in bytes per nanosecond (0 if nothing moved).
    pub fn d2h_bandwidth(&self) -> f64 {
        if self.d2h_busy_ns == 0 {
            0.0
        } else {
            self.d2h_bytes as f64 / self.d2h_busy_ns as f64
        }
    }

    /// Measured file→host spill-read bandwidth in bytes per nanosecond
    /// (0 if the run had no spill tier).
    pub fn spill_read_bandwidth(&self) -> f64 {
        if self.spill_read_busy_ns == 0 {
            0.0
        } else {
            self.spill_read_bytes as f64 / self.spill_read_busy_ns as f64
        }
    }

    /// Measured host→file spill-write bandwidth in bytes per nanosecond.
    pub fn spill_write_bandwidth(&self) -> f64 {
        if self.spill_write_busy_ns == 0 {
            0.0
        } else {
            self.spill_write_bytes as f64 / self.spill_write_busy_ns as f64
        }
    }

    /// Rewrites an [`NvmeSpec`](crate::hardware::NvmeSpec)'s bandwidth
    /// terms from the measured spill-tier bandwidths, keeping its capacity:
    /// the calibration loop closed over the §III-G NVMe model. Directions
    /// that moved no bytes keep the spec's prior.
    pub fn calibrate_nvme(&self, spec: crate::hardware::NvmeSpec) -> crate::hardware::NvmeSpec {
        let read = self.spill_read_bandwidth() * 1e9; // bytes/ns → bytes/s
        let write = self.spill_write_bandwidth() * 1e9;
        crate::hardware::NvmeSpec {
            capacity: spec.capacity,
            read_bw: if read > 0.0 { read } else { spec.read_bw },
            write_bw: if write > 0.0 { write } else { spec.write_bw },
        }
    }

    /// Predicted spill-tier busy time per step for a given per-step traffic,
    /// from the measured bandwidths (0 when a direction never moved).
    pub fn predict_spill_ns_per_step(&self, read_bytes: f64, write_bytes: f64) -> f64 {
        let r = self.spill_read_bandwidth();
        let w = self.spill_write_bandwidth();
        (if r > 0.0 { read_bytes / r } else { 0.0 }) + (if w > 0.0 { write_bytes / w } else { 0.0 })
    }

    /// Fraction of copy busy time hidden under compute, clamped to [0, 1].
    pub fn overlap_efficiency(&self) -> f64 {
        let copy = (self.h2d_busy_ns + self.d2h_busy_ns) as f64;
        if copy == 0.0 {
            0.0
        } else {
            (self.overlap_ns as f64 / copy).clamp(0.0, 1.0)
        }
    }

    /// Copy time the pipeline failed to hide, per step.
    pub fn exposed_copy_ns_per_step(&self) -> f64 {
        let copy = (self.h2d_busy_ns + self.d2h_busy_ns) as f64;
        (copy - self.overlap_ns as f64).max(0.0) / self.steps.max(1) as f64
    }

    /// Compute busy time per step.
    pub fn compute_ns_per_step(&self) -> f64 {
        self.compute_ns as f64 / self.steps.max(1) as f64
    }

    /// Host work per step the phase model does not name (embedding/head,
    /// gradient folds, dispatch): measured wall minus modeled phases. May
    /// be negative when span unions over-count; consumers add it signed.
    pub fn residual_ns_per_step(&self) -> f64 {
        self.wall_ns as f64 / self.steps.max(1) as f64
            - self.compute_ns_per_step()
            - self.exposed_copy_ns_per_step()
    }

    /// Predicted step time for the *measured* shape: compute + exposed
    /// copy + residual. Exact on the calibration run by construction; the
    /// tested claim is that it transfers to a fresh run of the same shape.
    pub fn predict_step_ns(&self) -> f64 {
        self.compute_ns_per_step() + self.exposed_copy_ns_per_step() + self.residual_ns_per_step()
    }

    /// Predicted step time for a *different* shape on the same box: scale
    /// transfer terms by this box's measured bandwidths and overlap, keep
    /// the measured residual.
    pub fn predict_step_ns_for(&self, h2d_bytes: f64, d2h_bytes: f64, compute_ns: f64) -> f64 {
        let bw_up = self.h2d_bandwidth();
        let bw_down = self.d2h_bandwidth();
        let copy = (if bw_up > 0.0 { h2d_bytes / bw_up } else { 0.0 })
            + (if bw_down > 0.0 {
                d2h_bytes / bw_down
            } else {
                0.0
            });
        compute_ns + copy * (1.0 - self.overlap_efficiency()) + self.residual_ns_per_step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_util_monotone_and_bounded() {
        let mut last = 0.0;
        for bs in [1.0, 2.0, 4.0, 8.0, 16.0, 64.0] {
            let u = batch_util(bs);
            assert!(u > last);
            assert!(u < 1.0);
            last = u;
        }
    }

    #[test]
    fn efficiency_hits_paper_range_at_16() {
        // At batch 16 the model should deliver the paper's 42–57% of peak.
        let e = kernel_efficiency(16.0);
        assert!((0.42..=0.62).contains(&e), "eff(16) = {e}");
    }

    #[test]
    fn efficiency_never_exceeds_ceiling() {
        for bs in 1..1000 {
            assert!(kernel_efficiency(bs as f64) <= MAX_KERNEL_EFFICIENCY + 1e-9);
        }
    }

    #[test]
    fn host_ceiling_anchor() {
        // 755 GB × usable / 16 bytes per param ≈ 39–40 B parameters.
        let bytes = 755.0 * (1u64 << 30) as f64 * HOST_USABLE_FRACTION;
        let params_b = bytes / 16.0 / 1e9;
        assert!((39.0..41.5).contains(&params_b), "{params_b}");
    }

    #[test]
    fn cluster_pinned_anchor() {
        let bytes = 8.0 * 1024.0 * (1u64 << 30) as f64 * CLUSTER_PINNED_FRACTION;
        let params_b = bytes / 16.0 / 1e9;
        assert!((80.0..85.0).contains(&params_b), "{params_b}");
    }

    fn sample_cal() -> HostCalibration {
        HostCalibration {
            steps: 4,
            wall_ns: 40_000,
            compute_ns: 24_000,      // 6000/step
            h2d_bytes: 32_000,       // 2 B/ns
            h2d_busy_ns: 16_000,     // 4000/step
            d2h_bytes: 8_000,        // 1 B/ns
            d2h_busy_ns: 8_000,      // 2000/step
            overlap_ns: 12_000,      // half the copy time hidden
            spill_read_bytes: 6_000, // 3 B/ns
            spill_read_busy_ns: 2_000,
            spill_write_bytes: 4_000, // 0.5 B/ns
            spill_write_busy_ns: 8_000,
        }
    }

    #[test]
    fn host_calibration_bandwidths_and_overlap() {
        let c = sample_cal();
        assert!((c.h2d_bandwidth() - 2.0).abs() < 1e-12);
        assert!((c.d2h_bandwidth() - 1.0).abs() < 1e-12);
        assert!((c.overlap_efficiency() - 0.5).abs() < 1e-12);
        assert!((c.exposed_copy_ns_per_step() - 3_000.0).abs() < 1e-9);
        assert!((c.compute_ns_per_step() - 6_000.0).abs() < 1e-9);
        // wall/step 10000 − compute 6000 − exposed 3000 = 1000 residual.
        assert!((c.residual_ns_per_step() - 1_000.0).abs() < 1e-9);
        // Prediction decomposes back to wall/step on the calibrated shape.
        assert!((c.predict_step_ns() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn host_calibration_scales_to_other_shapes() {
        let c = sample_cal();
        // Same per-step traffic and compute as the measured shape must
        // reproduce the measured step time.
        let same = c.predict_step_ns_for(8_000.0, 2_000.0, 6_000.0);
        assert!((same - 10_000.0).abs() < 1e-9, "{same}");
        // Doubling traffic adds exactly the extra exposed copy time.
        let double = c.predict_step_ns_for(16_000.0, 4_000.0, 6_000.0);
        assert!(double > same);
        assert!((double - same - 3_000.0).abs() < 1e-9);
        // Empty calibration stays finite.
        let z = HostCalibration::default();
        assert!(z.predict_step_ns_for(1e9, 1e9, 5.0).is_finite());
    }

    #[test]
    fn spill_bandwidths_and_nvme_bridge() {
        let c = sample_cal();
        assert!((c.spill_read_bandwidth() - 3.0).abs() < 1e-12);
        assert!((c.spill_write_bandwidth() - 0.5).abs() < 1e-12);
        // 600 B read at 3 B/ns + 100 B written at 0.5 B/ns.
        assert!((c.predict_spill_ns_per_step(600.0, 100.0) - 400.0).abs() < 1e-9);
        let spec = crate::hardware::Platform::v100_server().nvme.unwrap();
        let cal = c.calibrate_nvme(spec);
        assert_eq!(cal.capacity, spec.capacity);
        assert!((cal.read_bw - 3.0e9).abs() < 1.0, "3 B/ns = 3 GB/s");
        assert!((cal.write_bw - 0.5e9).abs() < 1.0);
        // A run without spill traffic keeps the spec's priors.
        let keep = HostCalibration::default().calibrate_nvme(spec);
        assert_eq!(keep.read_bw, spec.read_bw);
        assert_eq!(keep.write_bw, spec.write_bw);
    }
}
