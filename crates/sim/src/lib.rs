//! Deterministic virtual-time performance simulator.
//!
//! The STRONGHOLD runtime and every baseline emit *operation schedules*
//! (compute kernels, CPU↔GPU copies, NVMe I/O, collective operations,
//! CPU-optimizer tasks) against this engine. Each hardware unit is a
//! single-server FIFO resource or a worker pool; operation completion times
//! are computed greedily (`start = max(resource free, dependencies)`), which
//! is an exact discrete-event simulation for FIFO servers. Memory occupancy
//! is tracked as a timestamped delta stream whose peak is compared against
//! device capacity to detect OOM — the mechanism behind every
//! largest-trainable-model-size experiment (Figs. 1a, 6a, 6b).
//!
//! Nothing here allocates model-sized buffers: a 524 B-parameter model is
//! simulated in microseconds of wall time.

pub mod calibration;
pub mod cost;
pub mod hardware;
pub mod memtrack;
pub mod resource;
pub mod shared;
pub mod time;
pub mod timeline;

pub use cost::CostModel;
pub use hardware::Platform;
pub use memtrack::{MemTracker, OomError};
pub use resource::{FifoResource, WorkerPool};
pub use shared::{schedule_shared, SharedOp};
pub use time::SimTime;
pub use timeline::{Lane, Segment, Timeline};
