//! Serving bench: continuous batching on the windowed offload runtime vs
//! naive static batching on a fully-resident model.
//!
//! A closed-system load: every request is submitted up front, so a
//! request's latency includes its queueing delay — exactly where static
//! batching loses (a short decode admitted behind a long one drains with
//! the whole batch: the convoy effect). The workload mixes decode lengths
//! with 8× variance so the padded compute static batching burns is
//! visible, and both engines run the **same batch-stable kernels over the
//! same weights**, so they emit identical greedy token streams — the sweep
//! measures pure scheduling, not math.
//!
//! Rows: engine × concurrency (slots) × compute workers, each with
//! tokens/sec, p50/p99 request latency, and p50 time-to-first-token. The
//! root records `cores` and `core_starved` (continuous batching's
//! prefetch/compute overlap needs ≥ 2 cores; below that the H2D staging
//! serializes with decode and the gap narrows), plus two machine-checked
//! verdicts: `continuous_beats_static` (tokens/sec at equal concurrency,
//! every level) and `p50_le_p99`.
//!
//! Results go to `BENCH_serving.json` (override with `BENCH_SERVING_OUT`).
//! `STRONGHOLD_SBENCH_QUICK=1` bounds the sweep for the `ci.sh` smoke.
//!
//! Run with `cargo bench --bench serving` (harness = false).

use std::time::Instant;

use serde_json::{Map, Value};
use stronghold_baselines::{StaticBatchConfig, StaticBatchGenerator};
use stronghold_core::serve::{GenRequest, GenResult, ServeConfig, ServeEngine};
use stronghold_core::telemetry::Telemetry;
use stronghold_model::config::ModelConfig;
use stronghold_model::transformer::Transformer;

/// Decode lengths with 8× variance: one long request convoying three
/// short ones per group.
fn workload(groups: usize, long: usize, short: usize, prompt: usize) -> Vec<GenRequest> {
    let mut reqs = Vec::new();
    for g in 0..groups {
        for s in 0..4usize {
            let i = (g * 4 + s) as u64;
            reqs.push(GenRequest {
                id: i,
                prompt: (0..prompt as u32)
                    .map(|t| (t * 7 + i as u32) % 97)
                    .collect(),
                max_new_tokens: if s == 0 { long } else { short },
                seed: 900 + i,
            });
        }
    }
    reqs
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    sorted[(sorted.len() - 1) * p / 100]
}

/// Best-of-`reps` runs of the same closed workload: keeps the run with the
/// lowest wall time (and its per-request latencies), so a scheduler noise
/// spike on a shared box cannot flip the throughput comparison.
fn timed_runs(reps: usize, mut run: impl FnMut() -> Vec<GenResult>) -> (u64, Vec<GenResult>) {
    let mut best: Option<(u64, Vec<GenResult>)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let results = run();
        let wall = t0.elapsed().as_nanos() as u64;
        if best.as_ref().is_none_or(|(w, _)| wall < *w) {
            best = Some((wall, results));
        }
    }
    best.expect("at least one rep")
}

struct RunStats {
    wall_ns: u64,
    tokens: u64,
    p50_ns: u64,
    p99_ns: u64,
    ttft_p50_ns: u64,
}

fn stats(wall_ns: u64, results: &[GenResult]) -> RunStats {
    let mut lat: Vec<u64> = results.iter().map(|r| r.latency_ns).collect();
    let mut ttft: Vec<u64> = results.iter().map(|r| r.ttft_ns).collect();
    lat.sort_unstable();
    ttft.sort_unstable();
    RunStats {
        wall_ns,
        tokens: results.iter().map(|r| r.tokens.len() as u64).sum(),
        p50_ns: percentile(&lat, 50),
        p99_ns: percentile(&lat, 99),
        ttft_p50_ns: percentile(&ttft, 50),
    }
}

fn row(engine: &str, slots: usize, workers: usize, s: &RunStats) -> Value {
    let tps = s.tokens as f64 / (s.wall_ns as f64 / 1e9);
    println!(
        "{engine:>10} slots={slots} workers={workers} {tps:>9.1} tok/s  \
         p50={:>10} ns  p99={:>10} ns  ttft_p50={:>10} ns",
        s.p50_ns, s.p99_ns, s.ttft_p50_ns
    );
    let mut r = Map::new();
    r.insert("engine".into(), Value::from(engine));
    r.insert("concurrency".into(), Value::from(slots as u64));
    r.insert("compute_workers".into(), Value::from(workers as u64));
    r.insert("tokens".into(), Value::from(s.tokens));
    r.insert("wall_ns".into(), Value::from(s.wall_ns));
    r.insert("tokens_per_sec".into(), Value::from(tps));
    r.insert("p50_latency_ns".into(), Value::from(s.p50_ns));
    r.insert("p99_latency_ns".into(), Value::from(s.p99_ns));
    r.insert("ttft_p50_ns".into(), Value::from(s.ttft_p50_ns));
    Value::Object(r)
}

fn main() {
    let quick = std::env::var("STRONGHOLD_SBENCH_QUICK").is_ok_and(|v| v == "1");
    let out_path = std::env::var("BENCH_SERVING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json").to_string()
    });

    let (mcfg, groups, long, short, prompt) = if quick {
        (
            ModelConfig::new(3, 64, 4).with_seq(24).with_vocab(64),
            2,
            16,
            2,
            3,
        )
    } else {
        (
            ModelConfig::new(4, 64, 4).with_seq(48).with_vocab(128),
            4,
            32,
            4,
            4,
        )
    };
    let slot_counts: &[usize] = &[2, 4];
    let worker_counts: &[usize] = &[1, 2];
    let reps = 3usize;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    // One core must drive compute while another stages H2D; below two
    // cores the overlap the continuous engine is built around degenerates
    // to time-slicing.
    let core_starved = cores < 2;
    println!(
        "serving sweep ({} mode, {} layers x {} hidden, {} reqs, decode {long}/{short}, \
         {cores} cores{})",
        if quick { "quick" } else { "full" },
        mcfg.layers,
        mcfg.hidden,
        groups * 4,
        if core_starved {
            " — CORE-STARVED, overlap numbers not meaningful"
        } else {
            ""
        },
    );

    let reqs = workload(groups, long, short, prompt);
    let total_new: usize = reqs.iter().map(|r| r.max_new_tokens).sum();
    let mut rows: Vec<Value> = Vec::new();
    let mut continuous_wins = true;
    let mut p50_le_p99 = true;

    for &slots in slot_counts {
        // Static reference: fully resident, padded batches, FIFO drain.
        let mut stat = StaticBatchGenerator::new(
            mcfg,
            13,
            StaticBatchConfig {
                slots,
                ..StaticBatchConfig::default()
            },
        );
        // Warm the scratch so the timed runs measure steady state.
        stat.generate(workload(1, 2, 1, 2));
        let (wall, static_results) = timed_runs(reps, || stat.generate(reqs.clone()));
        let static_stats = stats(wall, &static_results);
        assert_eq!(static_stats.tokens as usize, total_new);
        p50_le_p99 &= static_stats.p50_ns <= static_stats.p99_ns;
        rows.push(row("static", slots, 1, &static_stats));

        for &workers in worker_counts {
            let mut eng = ServeEngine::from_model(
                Transformer::new(mcfg, 13),
                ServeConfig {
                    window: 2,
                    slots,
                    compute_workers: workers,
                    ..ServeConfig::default()
                },
                Telemetry::disabled(),
            );
            eng.generate(workload(1, 2, 1, 2));
            let (wall, cont_results) = timed_runs(reps, || eng.generate(reqs.clone()));
            let cont_stats = stats(wall, &cont_results);
            assert_eq!(cont_stats.tokens as usize, total_new);
            // Same weights, same greedy sampler: the streams must agree
            // before the throughput comparison means anything.
            for (a, b) in static_results.iter().zip({
                let mut c = cont_results.clone();
                c.sort_by_key(|r| r.id);
                c.into_iter().collect::<Vec<_>>()
            }) {
                assert_eq!(a.tokens, b.tokens, "req {}: engines disagree", a.id);
            }
            p50_le_p99 &= cont_stats.p50_ns <= cont_stats.p99_ns;
            if workers == 1 {
                continuous_wins &= cont_stats.tokens as f64 / cont_stats.wall_ns as f64
                    > static_stats.tokens as f64 / static_stats.wall_ns as f64;
            }
            rows.push(row("continuous", slots, workers, &cont_stats));
        }
    }

    let mut root = Map::new();
    root.insert("bench".into(), Value::from("serving"));
    root.insert(
        "mode".into(),
        Value::from(if quick { "quick" } else { "full" }),
    );
    root.insert("requests".into(), Value::from((groups * 4) as u64));
    root.insert("decode_long".into(), Value::from(long as u64));
    root.insert("decode_short".into(), Value::from(short as u64));
    root.insert("cores".into(), Value::from(cores));
    root.insert("core_starved".into(), Value::from(core_starved));
    let mut model = Map::new();
    model.insert("layers".into(), Value::from(mcfg.layers as u64));
    model.insert("hidden".into(), Value::from(mcfg.hidden as u64));
    model.insert("seq".into(), Value::from(mcfg.seq as u64));
    model.insert("vocab".into(), Value::from(mcfg.vocab as u64));
    root.insert("model".into(), Value::Object(model));
    root.insert(
        "continuous_beats_static".into(),
        Value::from(continuous_wins),
    );
    root.insert("p50_le_p99".into(), Value::from(p50_le_p99));
    root.insert("results".into(), Value::Array(rows));
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("sweep serializes");
    std::fs::write(&out_path, json).expect("write BENCH_serving.json");
    println!("continuous_beats_static={continuous_wins} p50_le_p99={p50_le_p99}  wrote {out_path}");
}
