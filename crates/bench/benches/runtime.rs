//! Criterion benches of the STRONGHOLD runtime machinery: the virtual-time
//! scheduler, the analytic window solver, the collectives, and a functional
//! (real-threads) training step.

use criterion::{criterion_group, criterion_main, Criterion};
use stronghold_collective::real::ring_allreduce_sum;
use stronghold_core::adam::AdamParams;
use stronghold_core::analytic::solve_window;
use stronghold_core::host::{HostOffloadConfig, HostOffloadTrainer};
use stronghold_core::offload::{simulate_iteration, OffloadOptions};
use stronghold_core::profile::LayerProfile;
use stronghold_model::config::{common_1_7b, model_39_4b, tiny};
use stronghold_model::data::SyntheticCorpus;
use stronghold_model::layer::build_layers;
use stronghold_sim::{CostModel, Platform};

fn bench_scheduler(c: &mut Criterion) {
    let v100 = Platform::v100_server();
    let mut g = c.benchmark_group("sim-scheduler");
    g.bench_function("iteration_1.7B", |b| {
        let cfg = common_1_7b();
        b.iter(|| {
            simulate_iteration(&cfg, &v100, &OffloadOptions::default())
                .unwrap()
                .iter_time
        })
    });
    g.bench_function("iteration_39.4B", |b| {
        let cfg = model_39_4b();
        b.iter(|| {
            simulate_iteration(&cfg, &v100, &OffloadOptions::default())
                .unwrap()
                .iter_time
        })
    });
    g.finish();
}

fn bench_window_solver(c: &mut Criterion) {
    let v100 = Platform::v100_server();
    let cfg = model_39_4b();
    let layers = build_layers(&cfg);
    let cost = CostModel::new(v100);
    let profile = LayerProfile::from_cost_model(&layers, &cost, cfg.batch);
    c.bench_function("window_solver_500_layers", |b| {
        b.iter(|| {
            solve_window(&profile, |m| m as u64 * (1 << 30), 30 << 30)
                .unwrap()
                .m
        })
    });
}

fn bench_collectives(c: &mut Criterion) {
    c.bench_function("ring_allreduce_4x64k", |b| {
        b.iter(|| {
            let mut bufs: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32; 65_536]).collect();
            ring_allreduce_sum(&mut bufs);
            bufs[0][0]
        })
    });
}

fn bench_functional_step(c: &mut Criterion) {
    let cfg = tiny(4);
    let mut corpus = SyntheticCorpus::new(cfg.vocab, 3);
    let batch = corpus.next_batch(cfg.batch, cfg.seq - 1);
    let mut g = c.benchmark_group("functional");
    g.sample_size(10);
    g.bench_function("offloaded_train_step_tiny4", |b| {
        let mut t = HostOffloadTrainer::new(
            cfg,
            5,
            HostOffloadConfig {
                window: 2,
                optimizer_workers: 4,
                adam: AdamParams::default(),
                ..HostOffloadConfig::default()
            },
        );
        b.iter(|| t.train_step(&batch))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_window_solver,
    bench_collectives,
    bench_functional_step
);
criterion_main!(benches);
