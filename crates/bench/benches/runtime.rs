//! Benches of the STRONGHOLD runtime machinery: the virtual-time scheduler,
//! the analytic window solver, the collectives, a few criterion-style micro
//! benches, and — the headline — a **step-latency sweep** across the three
//! host trainers that measures what the overlapped offload pipeline buys.
//!
//! The sweep times `train_step` for:
//!
//! * the resident trainer (baseline: everything in memory, no pipeline),
//! * the offloaded trainer at window ∈ {1, 2, 4}, in three variants:
//!   `pre` (inline D2H + deferred dispatch — the pipeline before overlap),
//!   `post` (async D2H engine + streaming optimizer dispatch, the default),
//!   and `post_parallel` (`post` plus batch-parallel compute workers),
//! * the multi-stream trainer (2 streams), `pre` vs `post`,
//! * the spill tier (PR 9): the offloaded trainer under a host-RAM budget
//!   that forces most layers onto the NVMe swap file, at two spill-worker
//!   pool sizes, with a zero-tolerance byte-accounting verdict per row.
//!
//! Results go to `BENCH_runtime.json` (override with `BENCH_RUNTIME_OUT`)
//! so the step-latency trajectory is diffable across PRs. The `pre` rows
//! are measured live by disabling the overlap knobs (`offload_workers: 0`,
//! `streaming_dispatch: false`), so before/after always refers to the same
//! commit's kernels and differs only in pipeline structure.
//!
//! `STRONGHOLD_RBENCH_QUICK=1` switches to a bounded smoke sweep (tiny
//! model, two timed steps) used by the `ci.sh` runtime-bench step to catch
//! bench bit-rot and output-format drift without paying for the full sweep.
//!
//! Run with `cargo bench --bench runtime` (harness = false).

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use serde_json::{Map, Value};
use stronghold_collective::real::ring_allreduce_sum;
use stronghold_core::adam::AdamParams;
use stronghold_core::analytic::solve_window;
use stronghold_core::host::{
    AutotuneConfig, EngineOptions, HostOffloadConfig, HostOffloadTrainer, HostResidentTrainer,
    MultiStreamTrainer,
};
use stronghold_core::offload::{simulate_iteration, OffloadOptions};
use stronghold_core::profile::LayerProfile;
use stronghold_core::telemetry::Telemetry;
use stronghold_core::tier::RESIDENT_BYTES_PER_PARAM;
use stronghold_model::config::{common_1_7b, model_39_4b, tiny, ModelConfig};
use stronghold_model::data::SyntheticCorpus;
use stronghold_model::layer::build_layers;
use stronghold_sim::{CostModel, Platform};
use stronghold_tensor::Precision;

fn bench_scheduler(c: &mut Criterion) {
    let v100 = Platform::v100_server();
    let mut g = c.benchmark_group("sim-scheduler");
    g.bench_function("iteration_1.7B", |b| {
        let cfg = common_1_7b();
        b.iter(|| {
            simulate_iteration(&cfg, &v100, &OffloadOptions::default())
                .unwrap()
                .iter_time
        })
    });
    g.bench_function("iteration_39.4B", |b| {
        let cfg = model_39_4b();
        b.iter(|| {
            simulate_iteration(&cfg, &v100, &OffloadOptions::default())
                .unwrap()
                .iter_time
        })
    });
    g.finish();
}

fn bench_window_solver(c: &mut Criterion) {
    let v100 = Platform::v100_server();
    let cfg = model_39_4b();
    let layers = build_layers(&cfg);
    let cost = CostModel::new(v100);
    let profile = LayerProfile::from_cost_model(&layers, &cost, cfg.batch);
    c.bench_function("window_solver_500_layers", |b| {
        b.iter(|| {
            solve_window(&profile, |m| m as u64 * (1 << 30), 30 << 30)
                .unwrap()
                .m
        })
    });
}

fn bench_collectives(c: &mut Criterion) {
    c.bench_function("ring_allreduce_4x64k", |b| {
        b.iter(|| {
            let mut bufs: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32; 65_536]).collect();
            ring_allreduce_sum(&mut bufs);
            bufs[0][0]
        })
    });
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_window_solver,
    bench_collectives
);

/// Best-of-`reps` mean nanoseconds per step: one untimed warm-up step,
/// then `reps` timed runs of `steps` steps each, keeping the fastest run.
fn time_steps(reps: usize, steps: usize, mut step: impl FnMut()) -> u64 {
    step();
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..steps {
            step();
        }
        best = best.min((t0.elapsed().as_nanos() / steps as u128) as u64);
    }
    best
}

fn row(trainer: &str, window: usize, variant: &str, ns_per_step: u64) -> Value {
    println!(
        "{trainer:<12} window={window:<2} {variant:<14} {:>12} ns/step",
        ns_per_step
    );
    let mut r = Map::new();
    r.insert("trainer".into(), Value::from(trainer));
    r.insert("window".into(), Value::from(window as u64));
    r.insert("variant".into(), Value::from(variant));
    r.insert("ns_per_step".into(), Value::from(ns_per_step));
    Value::Object(r)
}

/// The offloaded-trainer config for one sweep variant. `pre` reconstructs
/// the pipeline before this PR: gradients flattened inline on the compute
/// thread (`offload_workers: 0`) and optimizer dispatch deferred to the end
/// of the step (`streaming_dispatch: false`).
fn offload_cfg(window: usize, variant: &str, par: usize) -> HostOffloadConfig {
    let base = HostOffloadConfig {
        window,
        ..HostOffloadConfig::default()
    };
    match variant {
        "pre" => HostOffloadConfig {
            offload_workers: 0,
            compute_workers: 1,
            streaming_dispatch: false,
            ..base
        },
        "post" => base,
        "post_parallel" => HostOffloadConfig {
            compute_workers: par,
            ..base
        },
        other => unreachable!("unknown variant {other}"),
    }
}

fn main() {
    let quick = std::env::var("STRONGHOLD_RBENCH_QUICK").is_ok_and(|v| v == "1");
    // cargo runs benches with cwd = the package dir; default the output
    // to the workspace root so the sweep lands next to the other BENCH
    // artifacts regardless of invocation directory.
    let out_path = std::env::var("BENCH_RUNTIME_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json").to_string()
    });

    if !quick {
        benches();
    }

    // Quick mode shrinks the model and the timing loop; the sweep structure
    // (trainers, windows, variants — hence the JSON schema) is identical.
    let (cfg, reps, steps) = if quick {
        (tiny(4), 1, 2)
    } else {
        (
            ModelConfig::new(6, 128, 4)
                .with_seq(64)
                .with_vocab(512)
                .with_batch(4),
            5,
            5,
        )
    };
    let par = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1);
    let mut corpus = SyntheticCorpus::new(cfg.vocab, 3);
    let batch = corpus.next_batch(cfg.batch, cfg.seq - 1);

    println!(
        "step-latency sweep ({} mode, best of {reps} x {steps} steps, {} layers x {} hidden)",
        if quick { "quick" } else { "full" },
        cfg.layers,
        cfg.hidden,
    );

    let mut rows: Vec<Value> = Vec::new();

    let mut resident = HostResidentTrainer::new(cfg, 5, AdamParams::default());
    let ns = time_steps(reps, steps, || {
        resident.train_step(&batch);
    });
    rows.push(row("resident", cfg.layers, "baseline", ns));

    // Every step moves the same bytes (full-model streaming per step), so
    // cumulative device counters divide exactly by the step count —
    // including the untimed warm-up step `time_steps` runs first.
    let steps_total = (1 + reps * steps) as u64;
    let sweep_row = |rows: &mut Vec<Value>, precision: Precision, window: usize, variant: &str| {
        let mut t = HostOffloadTrainer::new(
            cfg,
            5,
            HostOffloadConfig {
                precision,
                ..offload_cfg(window, variant, par)
            },
        );
        let ns = time_steps(reps, steps, || {
            t.train_step(&batch);
        });
        let h2d = t.device().h2d_bytes() / steps_total;
        let d2h = t.device().d2h_bytes() / steps_total;
        let label = format!("{variant}[{}]", precision.name());
        let Value::Object(mut r) = row("offloaded", window, &label, ns) else {
            unreachable!("row is an object")
        };
        r.insert("variant".into(), Value::from(variant));
        r.insert("precision".into(), Value::from(precision.name()));
        r.insert("h2d_bytes_per_step".into(), Value::from(h2d));
        r.insert("d2h_bytes_per_step".into(), Value::from(d2h));
        rows.push(Value::Object(r));
    };

    for window in [1usize, 2, 4] {
        for variant in ["pre", "post", "post_parallel"] {
            sweep_row(&mut rows, Precision::F32, window, variant);
        }
    }

    // Mixed-precision rows: bf16 at the same windows, two worker
    // configurations (`post`: single-threaded compute; `post_parallel`:
    // batch-parallel compute). Per-row transfer counters let the committed
    // artifact carry the headline byte claim.
    for window in [1usize, 2, 4] {
        for variant in ["post", "post_parallel"] {
            sweep_row(&mut rows, Precision::Bf16, window, variant);
        }
    }

    // ---- spill-tier rows: layers file-backed under a host-RAM budget ----
    // The same model trained with room for only two resident layers, so the
    // cost-aware plan spills the rest to the NVMe swap file, at two
    // spill-worker pool sizes. Each row carries the measured per-step spill
    // traffic plus the zero-tolerance verdict: the `spill.*` telemetry
    // counters must equal the tier plan's per-step byte formulas times the
    // step count, exactly — any drift means the engine touched the file
    // outside the schedule.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let mut spill_exact = true;
    for spill_workers in [1usize, 2] {
        let tel = Telemetry::enabled();
        let mut t = HostOffloadTrainer::with_telemetry(
            cfg,
            5,
            HostOffloadConfig {
                window: 2,
                host_capacity: Some(2 * RESIDENT_BYTES_PER_PARAM * cfg.block_params()),
                spill_workers,
                ..HostOffloadConfig::default()
            },
            tel.clone(),
        );
        let spilled = t.spilled_layers() as u64;
        let ns = time_steps(reps, steps, || {
            t.train_step(&batch);
        });
        t.flush();
        let plan = t.tier_plan().clone();
        let m = t.window();
        let f2h: u64 = (0..cfg.layers).map(|l| plan.f2h_bytes_per_step(l, m)).sum();
        let h2f: u64 = (0..cfg.layers).map(|l| plan.h2f_bytes_per_step(l)).sum();
        let got_f2h = tel.counter("spill.f2h_bytes").get();
        let got_h2f = tel.counter("spill.h2f_bytes").get();
        let exact = got_f2h == steps_total * f2h && got_h2f == steps_total * h2f;
        if !exact {
            println!(
                "SPILL BYTE CLAIM VIOLATED: workers={spill_workers}: f2h {got_f2h} vs \
                 {} predicted, h2f {got_h2f} vs {} predicted",
                steps_total * f2h,
                steps_total * h2f
            );
            spill_exact = false;
        }
        let label = format!("spill[w{spill_workers}]");
        let Value::Object(mut r) = row("offloaded", 2, &label, ns) else {
            unreachable!("row is an object")
        };
        r.insert("variant".into(), Value::from("spill"));
        r.insert("precision".into(), Value::from("f32"));
        r.insert("spill_workers".into(), Value::from(spill_workers as u64));
        r.insert("spilled_layers".into(), Value::from(spilled));
        r.insert("spill_bytes_per_step".into(), Value::from(f2h + h2f));
        r.insert("f2h_bytes_per_step".into(), Value::from(f2h));
        r.insert("h2f_bytes_per_step".into(), Value::from(h2f));
        r.insert("spill_bytes_exact".into(), Value::from(exact));
        r.insert("cores".into(), Value::from(cores));
        // The spill pipeline wants the driver, the prefetcher, and its
        // spill workers live at once; with fewer cores the row times
        // contention, not the tier.
        r.insert(
            "core_starved".into(),
            Value::from(cores < spill_workers as u64 + 2),
        );
        rows.push(Value::Object(r));
    }
    println!(
        "spill bytes exactly match the tier plan at every worker config: {}",
        if spill_exact { "yes" } else { "NO" }
    );

    // ---- autotuned rows: the closed-loop controller picks the knobs ----
    // Two worker configurations ride the sweep: compute capped at 1 (the
    // static `post` shape) and at `par` (the `post_parallel` shape). Each
    // run starts from the smallest window and lets the controller climb;
    // the probe lock keeps it at the smallest *profitable* window, and the
    // core-count clamp keeps worker pools honest on a starved box. Quick
    // mode runs with telemetry enabled so the ci smoke can assert the
    // `autotune.*` gauges were emitted; full mode times with telemetry
    // off, exactly like the static rows it is compared against.
    for (variant, ccap) in [("autotuned", 1usize), ("autotuned_parallel", par)] {
        let tel = if quick {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let mut t = HostOffloadTrainer::with_telemetry(
            cfg,
            5,
            HostOffloadConfig {
                window: 1,
                autotune: Some(AutotuneConfig {
                    max_compute_workers: ccap,
                    ..AutotuneConfig::default()
                }),
                ..HostOffloadConfig::default()
            },
            tel.clone(),
        );
        // Untimed convergence warmup: let the controller settle before the
        // timed window (a probe mid-measurement is noise, not signal).
        let settle = if quick { 2 } else { 15 };
        for _ in 0..settle {
            t.train_step(&batch);
        }
        let ns = time_steps(reps, steps, || {
            t.train_step(&batch);
        });
        let ctrl = t.autotune().expect("autotune controller");
        let cur = ctrl.current();
        println!(
            "autotune[{variant}]: evals={} resizes={} locked={} gauge_window={} \
             workers=o{}/c{}/u{}",
            ctrl.evaluations(),
            ctrl.resizes(),
            ctrl.window_locked(),
            if quick {
                tel.gauge("autotune.window").get() // the real emitted gauge
            } else {
                cur.window as i64 // telemetry off: gauges are no-ops
            },
            cur.offload_workers,
            cur.compute_workers,
            cur.optimizer_workers,
        );
        let Value::Object(mut r) = row("offloaded", cur.window, variant, ns) else {
            unreachable!("row is an object")
        };
        r.insert("autotuned".into(), Value::Bool(true));
        r.insert(
            "offload_workers".into(),
            Value::from(cur.offload_workers as u64),
        );
        r.insert(
            "compute_workers".into(),
            Value::from(cur.compute_workers as u64),
        );
        r.insert(
            "optimizer_workers".into(),
            Value::from(cur.optimizer_workers as u64),
        );
        r.insert("autotune_evals".into(), Value::from(ctrl.evaluations()));
        r.insert("autotune_resizes".into(), Value::from(ctrl.resizes()));
        r.insert("window_locked".into(), Value::from(ctrl.window_locked()));
        rows.push(Value::Object(r));
    }

    for (variant, streaming) in [("pre", false), ("post", true)] {
        let mut t = MultiStreamTrainer::with_options(
            cfg,
            5,
            2,
            4,
            EngineOptions {
                streaming_dispatch: streaming,
                ..EngineOptions::default()
            },
            Telemetry::disabled(),
        );
        let ns = time_steps(reps, steps, || {
            t.train_step(&batch);
        });
        // For the multi-stream trainer the "window" column is the stream
        // count (each stream holds one slot block).
        rows.push(row("multistream", 2, variant, ns));
    }

    // Headline comparison: the autotuned run against the best *static*
    // offloaded/multistream row (the resident baseline has no window to
    // tune). The committed artifact carries the verdict.
    let ns_of = |r: &Value| {
        r.get("ns_per_step")
            .and_then(Value::as_u64)
            .unwrap_or(u64::MAX)
    };
    let is_autotuned = |r: &Value| r.get("autotuned").and_then(Value::as_bool) == Some(true);
    let precision_of = |r: &Value| {
        r.get("precision")
            .and_then(Value::as_str)
            .unwrap_or("f32")
            .to_string()
    };
    let is_spill = |r: &Value| r.get("spill_workers").is_some();
    let autotuned_best = rows.iter().filter(|r| is_autotuned(r)).map(ns_of).min();
    // The autotuner runs FP32 with everything host-resident; compare it only
    // against FP32 static rows without the spill tier (those time file I/O,
    // not pipeline structure).
    let static_best = rows
        .iter()
        .filter(|r| {
            !is_autotuned(r)
                && !is_spill(r)
                && r.get("trainer").and_then(Value::as_str) != Some("resident")
                && precision_of(r) == "f32"
        })
        .map(ns_of)
        .min();

    // ---- mixed-precision verdicts ----
    // Per window: best bf16 step time vs best FP32 step time (over the
    // variants both precisions ran), and the zero-tolerance byte claim:
    // each bf16 row's H2D/D2H traffic is exactly half its FP32 twin's.
    let offloaded_rows = |window: usize, prec: &str| {
        let prec = prec.to_string();
        rows.iter()
            .filter(move |r| {
                r.get("trainer").and_then(Value::as_str) == Some("offloaded")
                    && !is_autotuned(r)
                    && !is_spill(r)
                    && r.get("window").and_then(Value::as_u64) == Some(window as u64)
                    && precision_of(r) == prec
            })
            .collect::<Vec<_>>()
    };
    let mut precision_summary: Vec<Value> = Vec::new();
    let mut bf16_halved = true;
    for window in [1usize, 2, 4] {
        let f32_rows = offloaded_rows(window, "f32");
        let bf16_rows = offloaded_rows(window, "bf16");
        for b in &bf16_rows {
            let variant = b.get("variant").and_then(Value::as_str).unwrap_or("");
            let Some(f) = f32_rows
                .iter()
                .find(|r| r.get("variant").and_then(Value::as_str) == Some(variant))
            else {
                continue;
            };
            for dir in ["h2d_bytes_per_step", "d2h_bytes_per_step"] {
                let fb = f.get(dir).and_then(Value::as_u64).unwrap_or(0);
                let bb = b.get(dir).and_then(Value::as_u64).unwrap_or(0);
                if fb == 0 || 2 * bb != fb {
                    println!(
                        "BYTE CLAIM VIOLATED: window={window} {variant} {dir}: \
                         bf16 {bb} vs f32 {fb}"
                    );
                    bf16_halved = false;
                }
            }
        }
        let best_f32 = f32_rows.iter().map(|r| ns_of(r)).min();
        let best_bf16 = bf16_rows.iter().map(|r| ns_of(r)).min();
        if let (Some(f), Some(b)) = (best_f32, best_bf16) {
            println!(
                "precision window={window}: best bf16 {b} ns/step vs best f32 {f} ns/step \
                 ({:+.1}%)",
                (b as f64 / f as f64 - 1.0) * 100.0
            );
            let mut s = Map::new();
            s.insert("window".into(), Value::from(window as u64));
            s.insert("best_f32_ns".into(), Value::from(f));
            s.insert("best_bf16_ns".into(), Value::from(b));
            precision_summary.push(Value::Object(s));
        }
    }
    println!(
        "bf16 transfer bytes exactly half of FP32 at every window: {}",
        if bf16_halved { "yes" } else { "NO" }
    );

    let mut root = Map::new();
    root.insert("bench".into(), Value::from("runtime"));
    if let (Some(a), Some(s)) = (autotuned_best, static_best) {
        println!(
            "autotuned best {a} ns/step vs static best {s} ns/step — {}",
            if a < s {
                "autotuned beats every static row"
            } else {
                "autotuned DOES NOT beat the static sweep"
            }
        );
        root.insert("autotuned_ns_best".into(), Value::from(a));
        root.insert("static_ns_best".into(), Value::from(s));
        root.insert("autotuned_beats_static".into(), Value::from(a < s));
    }
    root.insert(
        "mode".into(),
        Value::from(if quick { "quick" } else { "full" }),
    );
    root.insert("reps".into(), Value::from(reps as u64));
    root.insert("steps".into(), Value::from(steps as u64));
    root.insert("compute_workers_parallel".into(), Value::from(par as u64));
    // Batch-parallel compute (`post_parallel`) can only beat `post` when
    // there are cores to spare; record the machine so the rows read right.
    root.insert("cores".into(), Value::from(cores));
    // The `post_parallel` / `autotuned_parallel` rows want `par` compute
    // workers *plus* the prefetcher and the driver thread; on a box that
    // cannot grant that, their timings reflect contention, not the
    // pipeline — flag it so cross-machine diffs read right.
    root.insert("core_starved".into(), Value::from(cores < par as u64 + 2));
    root.insert("precision_summary".into(), Value::Array(precision_summary));
    root.insert("bf16_h2d_exactly_half".into(), Value::from(bf16_halved));
    root.insert("spill_bytes_exact".into(), Value::from(spill_exact));
    let mut model = Map::new();
    model.insert("layers".into(), Value::from(cfg.layers as u64));
    model.insert("hidden".into(), Value::from(cfg.hidden as u64));
    model.insert("seq".into(), Value::from(cfg.seq as u64));
    model.insert("batch".into(), Value::from(cfg.batch as u64));
    root.insert("model".into(), Value::Object(model));
    root.insert("results".into(), Value::Array(rows));
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("sweep serializes");
    std::fs::write(&out_path, json).expect("write BENCH_runtime.json");
    println!("wrote {out_path}");
}
