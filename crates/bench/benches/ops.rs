//! Non-GEMM kernel sweep: vectorized row/elementwise engine vs frozen
//! scalar seed kernels.
//!
//! Covers layernorm fwd/bwd, GELU fwd/bwd, row softmax fwd/bwd, bias
//! add/grad, add/axpy, and the fused Adam step over GPT activation row
//! shapes (`[tokens, d_model]`) and cache-resident flat Adam sizes.
//! Reports per-op wall time and the speedup over the frozen baseline,
//! and writes the whole sweep to `BENCH_ops.json` (override the path
//! with `BENCH_OPS_OUT`) so the op perf trajectory is diffable across
//! PRs.
//!
//! `STRONGHOLD_OBENCH_QUICK=1` switches to a bounded smoke sweep (small
//! shapes, one rep) used by the `ci.sh` op-bench step to catch bench
//! bit-rot and output-format drift without paying for the full sweep.
//!
//! Run with `cargo bench --bench ops` (harness = false).

use std::time::Instant;

use serde_json::{Map, Value};
use stronghold_tensor::init::{normal, seeded_rng};
use stronghold_tensor::ops::{self, seed};
use stronghold_tensor::{scratch, Tensor};

/// Best-of-`reps` wall nanoseconds for `f`. One untimed warmup call
/// first, so one-time costs (ISA detection, scratch-pool growth) don't
/// skew small shapes.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

struct Row {
    op: &'static str,
    rows: usize,
    cols: usize,
    ns_new: f64,
    ns_seed: f64,
}

/// Benchmarks every row-shaped op at `[rows, cols]`, pushing one result
/// row per op.
fn sweep_row_ops(rows: usize, cols: usize, reps: usize, out: &mut Vec<Row>) {
    let mut rng = seeded_rng(0x0B5);
    let x = normal([rows, cols], 1.0, &mut rng);
    let dy = normal([rows, cols], 1.0, &mut rng);
    let gamma = normal([cols], 0.2, &mut rng);
    let beta = normal([cols], 0.2, &mut rng);
    let bias = normal([cols], 0.2, &mut rng);
    let sm = ops::softmax_rows(&x);
    let mut push = |op, ns_new, ns_seed| {
        out.push(Row {
            op,
            rows,
            cols,
            ns_new,
            ns_seed,
        })
    };

    // The vectorized path draws outputs from the thread-local scratch
    // pool and the trainers give them back each step; the bench mirrors
    // that steady state with `scratch::give`. The seed path predates the
    // pool and allocates per call — that allocation is part of the
    // frozen baseline being measured.
    push(
        "layernorm_fwd",
        time_ns(reps, || {
            let (y, c) = ops::layernorm(&x, &gamma, &beta, 1e-5);
            std::hint::black_box((&y, &c));
            scratch::give(y);
        }),
        time_ns(reps, || {
            std::hint::black_box(seed::layernorm(&x, &gamma, &beta, 1e-5));
        }),
    );

    let (_, cache) = ops::layernorm(&x, &gamma, &beta, 1e-5);
    let mut dg = Tensor::zeros([cols]);
    let mut db = Tensor::zeros([cols]);
    push(
        "layernorm_bwd",
        time_ns(reps, || {
            let dx = ops::layernorm_backward(&dy, &x, &gamma, &cache, &mut dg, &mut db);
            std::hint::black_box(&dx);
            scratch::give(dx);
        }),
        time_ns(reps, || {
            std::hint::black_box(seed::layernorm_backward(
                &dy, &x, &gamma, &cache, &mut dg, &mut db,
            ));
        }),
    );

    push(
        "gelu_fwd",
        time_ns(reps, || {
            let y = ops::gelu(&x);
            std::hint::black_box(&y);
            scratch::give(y);
        }),
        time_ns(reps, || {
            std::hint::black_box(seed::gelu(&x));
        }),
    );
    push(
        "gelu_bwd",
        time_ns(reps, || {
            let y = ops::gelu_backward(&dy, &x);
            std::hint::black_box(&y);
            scratch::give(y);
        }),
        time_ns(reps, || {
            std::hint::black_box(seed::gelu_backward(&dy, &x));
        }),
    );

    push(
        "softmax_fwd",
        time_ns(reps, || {
            let y = ops::softmax_rows(&x);
            std::hint::black_box(&y);
            scratch::give(y);
        }),
        time_ns(reps, || {
            std::hint::black_box(seed::softmax_rows(&x));
        }),
    );
    push(
        "softmax_bwd",
        time_ns(reps, || {
            let y = ops::softmax_rows_backward(&dy, &sm);
            std::hint::black_box(&y);
            scratch::give(y);
        }),
        time_ns(reps, || {
            std::hint::black_box(seed::softmax_rows_backward(&dy, &sm));
        }),
    );

    let mut buf = x.clone();
    push(
        "bias_add",
        time_ns(reps, || {
            ops::add_bias(&mut buf, &bias);
            std::hint::black_box(&buf);
        }),
        time_ns(reps, || {
            seed::add_bias(&mut buf, &bias);
            std::hint::black_box(&buf);
        }),
    );
    let mut dbias = Tensor::zeros([cols]);
    push(
        "bias_grad",
        time_ns(reps, || {
            ops::bias_grad_acc(&dy, &mut dbias);
            std::hint::black_box(&dbias);
        }),
        time_ns(reps, || {
            seed::bias_grad_acc(&dy, &mut dbias);
            std::hint::black_box(&dbias);
        }),
    );

    push(
        "add",
        time_ns(reps, || {
            let y = ops::add(&x, &dy);
            std::hint::black_box(&y);
            scratch::give(y);
        }),
        time_ns(reps, || {
            std::hint::black_box(seed::add(&x, &dy));
        }),
    );
    let mut acc = x.clone();
    push(
        "axpy",
        time_ns(reps, || {
            ops::axpy(&mut acc, 1e-6, &dy);
            std::hint::black_box(&acc);
        }),
        time_ns(reps, || {
            seed::axpy(&mut acc, 1e-6, &dy);
            std::hint::black_box(&acc);
        }),
    );
}

/// Same memory traffic as an Adam step (read p/g/m/v, write p/m/v) with
/// near-zero arithmetic: one multiply-add per stream, which LLVM
/// auto-vectorizes. Establishes the machine's bandwidth floor for the
/// `adam_bw_floor` row — no correct Adam kernel can run faster, so the
/// row's `speedup` column is the ceiling any fused implementation can
/// reach over the seed on this host.
fn adam_traffic_floor(p: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32]) {
    for (((pi, &gi), mi), vi) in p.iter_mut().zip(g).zip(m.iter_mut()).zip(v.iter_mut()) {
        *mi = 0.999 * *mi + 0.001 * gi;
        *vi = 0.999 * *vi + 0.001 * gi;
        *pi = 0.999 * *pi + 0.001 * *mi;
    }
}

/// Benchmarks the fused Adam step over a flat `n`-parameter group.
fn sweep_adam(n: usize, reps: usize, out: &mut Vec<Row>) {
    let mut rng = seeded_rng(0xADA);
    let mut params: Vec<f32> = normal([n], 0.5, &mut rng).into_vec();
    let grads: Vec<f32> = normal([n], 0.5, &mut rng).into_vec();
    let mut m = vec![0.0f32; n];
    let mut v = vec![0.0f32; n];
    let ns_new = time_ns(reps, || {
        ops::adam_fused(
            &mut params,
            &grads,
            &mut m,
            &mut v,
            0.9,
            0.999,
            1.5e-4,
            1.5e-6,
            1e-8,
        );
        std::hint::black_box(&params);
    });
    let ns_seed = time_ns(reps, || {
        seed::adam_step(
            &mut params,
            &grads,
            &mut m,
            &mut v,
            0.9,
            0.999,
            1.5e-4,
            1.5e-6,
            1e-8,
        );
        std::hint::black_box(&params);
    });
    out.push(Row {
        op: "adam",
        rows: 1,
        cols: n,
        ns_new,
        ns_seed,
    });
    let ns_floor = time_ns(reps, || {
        adam_traffic_floor(&mut params, &grads, &mut m, &mut v);
        std::hint::black_box(&params);
    });
    out.push(Row {
        op: "adam_bw_floor",
        rows: 1,
        cols: n,
        ns_new: ns_floor,
        ns_seed,
    });
}

fn main() {
    let quick = std::env::var("STRONGHOLD_OBENCH_QUICK").is_ok_and(|v| v == "1");
    // cargo runs benches with cwd = the package dir; default the output
    // to the workspace root so the sweep lands next to the other BENCH
    // artifacts regardless of invocation directory.
    let out_path = std::env::var("BENCH_OPS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ops.json").to_string()
    });
    // Row shapes are GPT activations [tokens, d_model] (plus the 4·d MLP
    // width); Adam sizes are cache-resident square parameter groups, so
    // the sweep measures kernel throughput rather than DRAM bandwidth.
    let (row_shapes, adam_sizes, reps): (&[(usize, usize)], &[usize], usize) = if quick {
        (&[(64, 96)], &[96 * 96], 1)
    } else {
        // Best-of-11: this host is a shared/virtualized single core and
        // per-call jitter from CPU steal is routinely 2×, so a small rep
        // count misattributes noise to whichever side it lands on.
        (
            &[(1024, 512), (1024, 768), (1024, 1024), (1024, 4096)],
            &[512 * 512, 768 * 768, 1024 * 1024],
            11,
        )
    };

    println!(
        "non-GEMM op sweep ({} mode, {reps} rep(s), {} rayon threads) — vectorized vs seed",
        if quick { "quick" } else { "full" },
        rayon::current_num_threads(),
    );

    let mut results = Vec::new();
    for &(rows, cols) in row_shapes {
        sweep_row_ops(rows, cols, reps, &mut results);
    }
    for &n in adam_sizes {
        sweep_adam(n, reps, &mut results);
    }

    println!(
        "{:<15} {:>6} {:>6}  {:>12} {:>12} {:>8}",
        "op", "rows", "cols", "new ns", "seed ns", "speedup"
    );
    let mut rows_json: Vec<Value> = Vec::new();
    for r in &results {
        let speedup = r.ns_seed / r.ns_new;
        println!(
            "{:<15} {:>6} {:>6}  {:>12.0} {:>12.0} {:>7.2}x",
            r.op, r.rows, r.cols, r.ns_new, r.ns_seed, speedup
        );
        let mut row = Map::new();
        row.insert("op".into(), Value::from(r.op));
        row.insert("rows".into(), Value::from(r.rows as u64));
        row.insert("cols".into(), Value::from(r.cols as u64));
        row.insert("ns_new".into(), Value::from(r.ns_new));
        row.insert("ns_seed".into(), Value::from(r.ns_seed));
        row.insert("speedup".into(), Value::from(speedup));
        rows_json.push(Value::Object(row));
    }

    let mut root = Map::new();
    root.insert("bench".into(), Value::from("ops"));
    root.insert(
        "mode".into(),
        Value::from(if quick { "quick" } else { "full" }),
    );
    root.insert("reps".into(), Value::from(reps as u64));
    root.insert(
        "threads".into(),
        Value::from(rayon::current_num_threads() as u64),
    );
    // Same machine stamp the other sweeps carry: op timings from a box
    // whose rayon pool exceeds its cores measure time-slicing, not kernels.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    root.insert("cores".into(), Value::from(cores));
    root.insert(
        "core_starved".into(),
        Value::from(cores < rayon::current_num_threads() as u64),
    );
    root.insert("results".into(), Value::Array(rows_json));
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("sweep serializes");
    std::fs::write(&out_path, json).expect("write BENCH_ops.json");
    println!("wrote {out_path}");
}
