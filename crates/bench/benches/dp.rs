//! Weak-scaling bench for the real data-parallel trainer: step latency of
//! `DataParallelTrainer` at replicas ∈ {1, 2, 4} × a window sweep, with the
//! **per-replica** batch held fixed (so the global batch grows with the
//! replica count — classic weak scaling: perfect scaling is flat ns/step).
//!
//! Each row records the measured step latency, the exact all-reduce bytes
//! the in-process collective carried per step (which the traffic-validation
//! suite pins to the §III-F formula), and the weak-scaling efficiency
//! against the single-replica row of the same window.
//!
//! Results go to `BENCH_dp.json` (override with `BENCH_DP_OUT`). The file
//! records `cores` and sets `core_starved: true` when the machine cannot
//! give each replica its own core (`cores < 4`, or just 1 on a serial CI
//! box) — scaling numbers from such a run measure oversubscription, not
//! the collective, and must not be compared across machines.
//!
//! `STRONGHOLD_DPBENCH_QUICK=1` switches to a bounded smoke sweep (tiny
//! model, two timed steps) used by the `ci.sh` dp-bench step to catch
//! bench bit-rot and output-format drift without paying for the full sweep.
//!
//! Run with `cargo bench --bench dp` (harness = false).

use std::time::Instant;

use serde_json::{Map, Value};
use stronghold_core::adam::AdamParams;
use stronghold_core::host::{DataParallelConfig, DataParallelTrainer};
use stronghold_model::config::{tiny, ModelConfig};
use stronghold_model::data::SyntheticCorpus;

/// Best-of-`reps` mean nanoseconds per step: one untimed warm-up step,
/// then `reps` timed runs of `steps` steps each, keeping the fastest run.
fn time_steps(reps: usize, steps: usize, mut step: impl FnMut()) -> u64 {
    step();
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..steps {
            step();
        }
        best = best.min((t0.elapsed().as_nanos() / steps as u128) as u64);
    }
    best
}

fn main() {
    let quick = std::env::var("STRONGHOLD_DPBENCH_QUICK").is_ok_and(|v| v == "1");
    // cargo runs benches with cwd = the package dir; default the output
    // to the workspace root so the sweep lands next to the other BENCH
    // artifacts regardless of invocation directory.
    let out_path = std::env::var("BENCH_DP_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dp.json").to_string()
    });

    // Weak scaling: the per-replica batch stays fixed; the global batch
    // (and the synthetic corpus slice each step consumes) grows with the
    // replica count.
    let per_replica_batch = 4usize;
    let (cfg, reps, steps) = if quick {
        (tiny(4), 1, 2)
    } else {
        (
            ModelConfig::new(6, 128, 4).with_seq(64).with_vocab(512),
            5,
            5,
        )
    };
    let windows: &[usize] = if quick { &[2] } else { &[1, 2, 4] };
    let replica_counts = [1usize, 2, 4];

    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    // Weak scaling needs one core per replica (plus slack for the offload
    // and optimizer workers); below that the sweep measures time-slicing.
    let core_starved = cores < *replica_counts.last().unwrap() as u64;
    println!(
        "dp weak-scaling sweep ({} mode, best of {reps} x {steps} steps, \
         {} layers x {} hidden, batch {per_replica_batch}/replica, {cores} cores{})",
        if quick { "quick" } else { "full" },
        cfg.layers,
        cfg.hidden,
        if core_starved {
            " — CORE-STARVED, scaling numbers not meaningful"
        } else {
            ""
        },
    );

    let mut rows: Vec<Value> = Vec::new();
    for &window in windows {
        let mut baseline_ns = None;
        for replicas in replica_counts {
            let global_batch = replicas * per_replica_batch;
            let cfg = cfg.with_batch(global_batch);
            let batch = SyntheticCorpus::new(cfg.vocab, 9).next_batch(global_batch, cfg.seq - 1);
            let mut t = DataParallelTrainer::new(
                cfg,
                5,
                DataParallelConfig {
                    replicas,
                    window,
                    adam: AdamParams::default(),
                    ..DataParallelConfig::default()
                },
            );
            let ns = time_steps(reps, steps, || {
                t.train_step(&batch);
            });
            let base = *baseline_ns.get_or_insert(ns);
            // Perfect weak scaling keeps ns/step flat as replicas grow, so
            // efficiency = t(1 replica) / t(w replicas).
            let efficiency = base as f64 / ns as f64;
            let bytes_per_step = t.allreduce_bytes() / t.steps();
            println!(
                "replicas={replicas} window={window} {ns:>12} ns/step  \
                 eff={efficiency:.2}  {bytes_per_step} allreduce B/step"
            );
            let mut r = Map::new();
            r.insert("replicas".into(), Value::from(replicas as u64));
            r.insert("window".into(), Value::from(window as u64));
            r.insert("global_batch".into(), Value::from(global_batch as u64));
            r.insert("ns_per_step".into(), Value::from(ns));
            r.insert("weak_scaling_efficiency".into(), Value::from(efficiency));
            r.insert(
                "allreduce_bytes_per_step".into(),
                Value::from(bytes_per_step),
            );
            rows.push(Value::Object(r));
        }
    }

    let mut root = Map::new();
    root.insert("bench".into(), Value::from("dp"));
    root.insert(
        "mode".into(),
        Value::from(if quick { "quick" } else { "full" }),
    );
    root.insert("reps".into(), Value::from(reps as u64));
    root.insert("steps".into(), Value::from(steps as u64));
    root.insert(
        "per_replica_batch".into(),
        Value::from(per_replica_batch as u64),
    );
    root.insert("cores".into(), Value::from(cores));
    root.insert("core_starved".into(), Value::from(core_starved));
    let mut model = Map::new();
    model.insert("layers".into(), Value::from(cfg.layers as u64));
    model.insert("hidden".into(), Value::from(cfg.hidden as u64));
    model.insert("seq".into(), Value::from(cfg.seq as u64));
    root.insert("model".into(), Value::Object(model));
    root.insert("results".into(), Value::Array(rows));
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("sweep serializes");
    std::fs::write(&out_path, json).expect("write BENCH_dp.json");
    println!("wrote {out_path}");
}
