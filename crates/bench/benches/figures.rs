//! Criterion benches over the figure harnesses: one bench per paper
//! artifact, measuring the full regeneration (search + schedule) cost.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper-figures");
    g.sample_size(10);
    // fig6b/fig7b sweep the cluster search space and are benched separately
    // below with a reduced sample count; everything else runs here.
    for id in [
        "table1", "fig4", "fig8a", "fig9", "fig11", "fig12", "fig13", "fig14", "comms",
    ] {
        g.bench_function(id, |b| {
            b.iter(|| {
                let exp = stronghold_bench::run(std::hint::black_box(id)).expect("experiment");
                std::hint::black_box(exp.verdict.len())
            })
        });
    }
    g.finish();

    let mut slow = c.benchmark_group("paper-figures-search");
    slow.sample_size(10);
    for id in ["fig1", "fig6a", "fig6b", "fig7a", "fig7b", "fig8b", "fig10"] {
        slow.bench_function(id, |b| {
            b.iter(|| {
                let exp = stronghold_bench::run(std::hint::black_box(id)).expect("experiment");
                std::hint::black_box(exp.verdict.len())
            })
        });
    }
    slow.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
