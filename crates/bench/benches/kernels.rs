//! Criterion benches of the tensor substrate's hot kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stronghold_tensor::init::{normal, seeded_rng};
use stronghold_tensor::matmul::{matmul, matmul_nt, matmul_tn};
use stronghold_tensor::ops::{gelu, layernorm, softmax_rows};
use stronghold_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        let mut rng = seeded_rng(1);
        let a = normal([n, n], 1.0, &mut rng);
        let b = normal([n, n], 1.0, &mut rng);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_function(format!("nn_{n}"), |bch| bch.iter(|| matmul(&a, &b)));
        g.bench_function(format!("nt_{n}"), |bch| bch.iter(|| matmul_nt(&a, &b)));
        g.bench_function(format!("tn_{n}"), |bch| bch.iter(|| matmul_tn(&a, &b)));
    }
    g.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut g = c.benchmark_group("elementwise");
    let mut rng = seeded_rng(2);
    let x = normal([64, 1024], 1.0, &mut rng);
    let gamma = Tensor::full([1024], 1.0);
    let beta = Tensor::zeros([1024]);
    g.throughput(Throughput::Elements(x.numel() as u64));
    g.bench_function("gelu", |b| b.iter(|| gelu(&x)));
    g.bench_function("softmax_rows", |b| b.iter(|| softmax_rows(&x)));
    g.bench_function("layernorm", |b| {
        b.iter(|| layernorm(&x, &gamma, &beta, 1e-5))
    });
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_elementwise);
criterion_main!(benches);
