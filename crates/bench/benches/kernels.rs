//! GEMM kernel shape sweep: blocked engine vs frozen seed kernels.
//!
//! Runs every layout (`nn`, `nt`, `tn`) over the square sizes and the
//! GPT-block shapes the paper experiments exercise, reports GFLOP/s for
//! the blocked engine and the seed baselines, and writes the whole sweep
//! to `BENCH_kernels.json` (override the path with `BENCH_KERNELS_OUT`)
//! so the kernel perf trajectory is diffable across PRs.
//!
//! `STRONGHOLD_KBENCH_QUICK=1` switches to a bounded smoke sweep (small
//! shapes, one rep) used by the `ci.sh` kernel-bench step to catch bench
//! bit-rot and output-format drift without paying for the full sweep.
//!
//! Run with `cargo bench --bench kernels` (harness = false).

use std::time::Instant;

use serde_json::{Map, Value};
use stronghold_tensor::init::{normal, seeded_rng};
use stronghold_tensor::matmul::{self, matmul, matmul_nt, matmul_tn};
use stronghold_tensor::Tensor;

/// One benchmarked GEMM shape: `C[m,n] = op(A) · op(B)` with depth `k`.
struct SweepShape {
    label: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

const fn shape(label: &'static str, m: usize, k: usize, n: usize) -> SweepShape {
    SweepShape { label, m, k, n }
}

/// Square sizes plus the GPT block shapes from the experiment configs:
/// fused QKV projection, MLP up/down, a per-head attention-score GEMM,
/// and the tall-K weight-gradient shape the old `m·n` parallel threshold
/// mis-classified.
const FULL_SWEEP: &[SweepShape] = &[
    shape("sq256", 256, 256, 256),
    shape("sq512", 512, 512, 512),
    shape("sq1024", 1024, 1024, 1024),
    shape("qkv_proj", 1024, 1024, 3072),
    shape("mlp_up", 1024, 1024, 4096),
    shape("mlp_down", 1024, 4096, 1024),
    shape("attn_scores_head", 1024, 64, 1024),
    shape("grad_tall_k", 256, 8192, 256),
];

/// Smoke sweep: tiny, deliberately non-multiple-of-tile shapes.
const QUICK_SWEEP: &[SweepShape] = &[shape("sq96", 96, 96, 96), shape("odd", 129, 67, 93)];

/// Best-of-`reps` wall time for `f`, as mean GFLOP/s of the fastest rep.
/// One untimed warmup call first, so one-time costs (ISA detection,
/// thread-local pack-scratch growth) don't skew small shapes.
fn time_gflops(flops: u64, reps: usize, mut f: impl FnMut() -> Tensor) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(out);
        best = best.min(dt);
    }
    flops as f64 / best / 1e9
}

fn main() {
    let quick = std::env::var("STRONGHOLD_KBENCH_QUICK").is_ok_and(|v| v == "1");
    // cargo runs benches with cwd = the package dir; default the output
    // to the workspace root so the sweep lands next to the other BENCH
    // artifacts regardless of invocation directory.
    let out_path = std::env::var("BENCH_KERNELS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").to_string()
    });
    let (shapes, reps) = if quick {
        (QUICK_SWEEP, 1)
    } else {
        (FULL_SWEEP, 3)
    };

    println!(
        "GEMM kernel sweep ({} mode, {reps} rep(s), {} threads) — blocked engine vs seed",
        if quick { "quick" } else { "full" },
        rayon::current_num_threads(),
    );
    println!(
        "{:<18} {:>5} {:>5} {:>5}  {:>3}  {:>10} {:>10} {:>8}",
        "shape", "m", "k", "n", "op", "new GF/s", "seed GF/s", "speedup"
    );

    let mut rows: Vec<Value> = Vec::new();
    for s in shapes {
        let (m, k, n) = (s.m, s.k, s.n);
        let flops = 2 * (m * k * n) as u64;
        let mut rng = seeded_rng(0xB00C);
        let a_nn = normal([m, k], 1.0, &mut rng); // NN / NT left operand
        let b_nn = normal([k, n], 1.0, &mut rng); // NN right operand
        let b_nt = normal([n, k], 1.0, &mut rng); // NT right operand (stored [N,K])
        let a_tn = normal([k, m], 1.0, &mut rng); // TN left operand (stored [K,M])

        type Runner<'t> = Box<dyn FnMut() -> Tensor + 't>;
        let cases: [(&str, Runner, Runner); 3] = [
            (
                "nn",
                Box::new(|| matmul(&a_nn, &b_nn)),
                Box::new(|| matmul::seed::matmul(&a_nn, &b_nn)),
            ),
            (
                "nt",
                Box::new(|| matmul_nt(&a_nn, &b_nt)),
                Box::new(|| matmul::seed::matmul_nt(&a_nn, &b_nt)),
            ),
            (
                "tn",
                Box::new(|| matmul_tn(&a_tn, &b_nn)),
                Box::new(|| matmul::seed::matmul_tn(&a_tn, &b_nn)),
            ),
        ];

        for (layout, new_kernel, seed_kernel) in cases {
            let gf_new = time_gflops(flops, reps, new_kernel);
            let gf_seed = time_gflops(flops, reps, seed_kernel);
            let speedup = gf_new / gf_seed;
            println!(
                "{:<18} {:>5} {:>5} {:>5}  {:>3}  {:>10.2} {:>10.2} {:>7.2}x",
                s.label, m, k, n, layout, gf_new, gf_seed, speedup
            );
            let mut row = Map::new();
            row.insert("shape".into(), Value::from(s.label));
            row.insert("m".into(), Value::from(m as u64));
            row.insert("k".into(), Value::from(k as u64));
            row.insert("n".into(), Value::from(n as u64));
            row.insert("layout".into(), Value::from(layout));
            row.insert("flops".into(), Value::from(flops));
            row.insert("gflops_new".into(), Value::from(gf_new));
            row.insert("gflops_seed".into(), Value::from(gf_seed));
            row.insert("speedup".into(), Value::from(speedup));
            rows.push(Value::Object(row));
        }
    }

    let mut root = Map::new();
    root.insert("bench".into(), Value::from("kernels"));
    root.insert(
        "mode".into(),
        Value::from(if quick { "quick" } else { "full" }),
    );
    root.insert("reps".into(), Value::from(reps as u64));
    root.insert(
        "threads".into(),
        Value::from(rayon::current_num_threads() as u64),
    );
    // Threaded GFLOP/s depend on physical parallelism; flag runs where the
    // rayon pool outnumbers the cores so figures aren't compared across
    // differently-starved machines.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    root.insert("cores".into(), Value::from(cores));
    root.insert(
        "core_starved".into(),
        Value::from(cores < rayon::current_num_threads() as u64),
    );
    root.insert("results".into(), Value::Array(rows));
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("sweep serializes");
    std::fs::write(&out_path, json).expect("write BENCH_kernels.json");
    println!("wrote {out_path}");
}
