//! `paperbench` — regenerates the STRONGHOLD paper's tables and figures.
//!
//! ```text
//! paperbench <experiment-id>|all [--json <dir>]
//! ```

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: paperbench <id>|all [--json <dir>] [--trace <dir>]");
        eprintln!(
            "experiments: {}",
            stronghold_bench::ALL_EXPERIMENTS.join(", ")
        );
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_dir = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let ids: Vec<&str> = if args[0] == "all" {
        stronghold_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        vec![args[0].as_str()]
    };

    for id in ids {
        let Some(exp) = stronghold_bench::run(id) else {
            eprintln!("unknown experiment '{id}'");
            eprintln!(
                "experiments: {}",
                stronghold_bench::ALL_EXPERIMENTS.join(", ")
            );
            std::process::exit(2);
        };
        println!("{}", exp.render());
        if id == "fig4" {
            if let Some(dir) = &trace_dir {
                let path = stronghold_bench::experiments::fig4::write_chrome_trace(
                    std::path::Path::new(dir),
                )
                .expect("write chrome trace");
                eprintln!(
                    "wrote {} (load in chrome://tracing or Perfetto)",
                    path.display()
                );
            }
        }
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = std::path::Path::new(dir).join(format!("{id}.json"));
            let mut f = std::fs::File::create(&path).expect("create json file");
            writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&exp.to_json()).unwrap()
            )
            .expect("write json");
            eprintln!("wrote {}", path.display());
        }
    }
}
