//! Experiment result containers and table rendering.

use serde_json::{json, Value};

/// A rendered table: header + rows of strings.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:<w$} | ", w = w));
            }
            line.trim_end().to_string() + "\n"
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push_str(&format!(
            "|{}|\n",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// JSON form (array of objects keyed by header).
    pub fn to_json(&self) -> Value {
        Value::Array(
            self.rows
                .iter()
                .map(|row| {
                    let mut obj = serde_json::Map::new();
                    for (h, c) in self.headers.iter().zip(row) {
                        obj.insert(h.clone(), Value::String(c.clone()));
                    }
                    Value::Object(obj)
                })
                .collect(),
        )
    }
}

/// Renders the headline metrics of a telemetry snapshot
/// (`Telemetry::snapshot_json`) as a report table, so figure runs emit
/// measured overlap efficiency alongside throughput.
pub fn telemetry_table(snapshot: &Value) -> Table {
    let mut t = Table::new(&["telemetry metric", "value"]);
    let ov = &snapshot["overlap"];
    let eff = ov["overlap_efficiency"].as_f64().unwrap_or(0.0);
    t.row(vec![
        "measured overlap efficiency".into(),
        format!("{:.1}%", eff * 100.0),
    ]);
    let ms = |key: &str| format!("{:.3} ms", ov[key].as_f64().unwrap_or(0.0) / 1e6);
    t.row(vec!["copy busy".into(), ms("copy_busy_ns")]);
    t.row(vec!["compute busy".into(), ms("compute_busy_ns")]);
    t.row(vec!["copy hidden under compute".into(), ms("overlap_ns")]);
    if let Some(counters) = snapshot["counters"].as_object() {
        for (name, v) in counters.iter() {
            t.row(vec![
                format!("counter {name}"),
                format!("{}", v.as_u64().unwrap_or(0)),
            ]);
        }
    }
    t
}

/// One completed experiment.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Id, e.g. `"fig6a"`.
    pub id: &'static str,
    /// Title echoing the paper artifact.
    pub title: &'static str,
    /// What the paper reported (for EXPERIMENTS.md side-by-side).
    pub paper_claim: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Free-form rendered extras (e.g. the Fig. 4 trace).
    pub extra: String,
    /// One-line verdict comparing measured shape with the paper claim.
    pub verdict: String,
}

impl Experiment {
    /// Renders the whole experiment for the terminal.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {} — {}\n   paper: {}\n\n",
            self.id, self.title, self.paper_claim
        );
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        if !self.extra.is_empty() {
            out.push_str(&self.extra);
            out.push('\n');
        }
        out.push_str(&format!("   measured: {}\n", self.verdict));
        out
    }

    /// JSON form for archiving.
    pub fn to_json(&self) -> Value {
        json!({
            "id": self.id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "tables": self.tables.iter().map(Table::to_json).collect::<Vec<_>>(),
            "verdict": self.verdict,
        })
    }
}

/// Formats a throughput value.
pub fn tp(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a billions-of-parameters value.
pub fn billions(v: f64) -> String {
    format!("{v:.1}B")
}

/// Formats a ratio.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["method", "size"]);
        t.row(vec!["Megatron-LM".into(), "1.7B".into()]);
        t.row(vec!["SH".into(), "39.5B".into()]);
        let r = t.render();
        assert!(r.contains("| Megatron-LM | 1.7B"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn json_round_trip() {
        let mut t = Table::new(&["k"]);
        t.row(vec!["v".into()]);
        let j = t.to_json();
        assert_eq!(j[0]["k"], "v");
    }
}
