//! `shtrain` — the artifact-style driver, mirroring the paper's AE script
//! interface (`run.sh -m METHOD -l NUM_LAYERS -h HIDDEN_SIZE -b BATCH_SIZE
//! -w WINDOW_SIZE`):
//!
//! ```text
//! shtrain -m stronghold -l 50 -d 2560 -b 4 -w 8
//! shtrain -m all -l 20 -d 2560 -b 4
//! ```
//!
//! Methods: `megatron-lm`, `l2l`, `zero-offload`, `zero-infinity`,
//! `zero-infinity-nvme`, `stronghold`, `stronghold-nvme`, `all`.
//! (`-d` is the hidden size; `-h` prints help, unlike the paper's script.)

use stronghold_baselines::{L2L, MegatronLM, ZeroInfinity, ZeroOffload};
use stronghold_core::method::TrainingMethod;
use stronghold_core::{Stronghold, StrongholdOptions};
use stronghold_model::config::ModelConfig;
use stronghold_sim::Platform;

struct Args {
    method: String,
    layers: usize,
    hidden: usize,
    heads: usize,
    seq: usize,
    batch: usize,
    window: Option<usize>,
    platform: String,
}

impl Default for Args {
    fn default() -> Self {
        // The AE script's defaults: 16 layers, hidden 2048, 16 heads,
        // seq 1024, batch 4, window 4.
        Args {
            method: "all".into(),
            layers: 16,
            hidden: 2048,
            heads: 16,
            seq: 1024,
            batch: 4,
            window: None,
            platform: "v100".into(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: shtrain -m METHOD [-l LAYERS] [-d HIDDEN] [-n HEADS] [-s SEQ] [-b BATCH] [-w WINDOW] [-p v100|a10]\n\
         methods: megatron-lm, l2l, zero-offload, zero-infinity, zero-infinity-nvme, stronghold, stronghold-nvme, all"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> &str {
            argv.get(i + 1).map(String::as_str).unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "-m" => args.method = need(i).to_string(),
            "-l" => args.layers = need(i).parse().unwrap_or_else(|_| usage()),
            "-d" => args.hidden = need(i).parse().unwrap_or_else(|_| usage()),
            "-n" => args.heads = need(i).parse().unwrap_or_else(|_| usage()),
            "-s" => args.seq = need(i).parse().unwrap_or_else(|_| usage()),
            "-b" => args.batch = need(i).parse().unwrap_or_else(|_| usage()),
            "-w" => args.window = Some(need(i).parse().unwrap_or_else(|_| usage())),
            "-p" => args.platform = need(i).to_string(),
            "-h" | "--help" => usage(),
            _ => usage(),
        }
        i += 2;
    }
    args
}

fn methods_for(name: &str, window: Option<usize>) -> Vec<Box<dyn TrainingMethod>> {
    let stronghold = |nvme: bool| -> Box<dyn TrainingMethod> {
        Box::new(Stronghold::with_options(StrongholdOptions {
            window,
            nvme_cache_layers: if nvme { Some(64) } else { None },
            ..StrongholdOptions::default()
        }))
    };
    match name {
        "megatron-lm" => vec![Box::new(MegatronLM)],
        "l2l" => vec![Box::new(L2L)],
        "zero-offload" => vec![Box::new(ZeroOffload)],
        "zero-infinity" => vec![Box::new(ZeroInfinity::cpu_only())],
        "zero-infinity-nvme" => vec![Box::new(ZeroInfinity::with_nvme())],
        "stronghold" => vec![stronghold(false)],
        "stronghold-nvme" => vec![stronghold(true)],
        "all" => vec![
            Box::new(MegatronLM),
            Box::new(L2L),
            Box::new(ZeroOffload),
            Box::new(ZeroInfinity::cpu_only()),
            stronghold(false),
        ],
        _ => usage(),
    }
}

fn main() {
    let args = parse_args();
    let platform = match args.platform.as_str() {
        "v100" => Platform::v100_server(),
        "a10" => Platform::a10_cluster(1),
        _ => usage(),
    };
    let cfg = ModelConfig {
        layers: args.layers,
        hidden: args.hidden,
        heads: args.heads,
        seq: args.seq,
        vocab: stronghold_model::config::DEFAULT_VOCAB,
        batch: args.batch,
        mp_degree: 1,
    };
    println!(
        "model: {} ({} layers x hidden {}, heads {}, seq {}), batch {} | platform {}",
        cfg.size_label(),
        cfg.layers,
        cfg.hidden,
        cfg.heads,
        cfg.seq,
        cfg.batch,
        args.platform
    );
    println!(
        "\n{:<22} {:>12} {:>9} {:>10} {:>10} {:>8}",
        "method", "samples/s", "TFLOPS", "GPU GiB", "CPU GiB", "window"
    );
    for m in methods_for(&args.method, args.window) {
        match m.iteration(&cfg, &platform) {
            Ok(r) => println!(
                "{:<22} {:>12.4} {:>9.2} {:>10.2} {:>10.1} {:>8}",
                m.name(),
                r.throughput,
                r.tflops,
                r.gpu_peak as f64 / (1u64 << 30) as f64,
                r.cpu_peak as f64 / (1u64 << 30) as f64,
                r.window
            ),
            Err(e) => println!("{:<22} OOM ({e})", m.name()),
        }
    }
}
