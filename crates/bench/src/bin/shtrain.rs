//! `shtrain` — the artifact-style driver, mirroring the paper's AE script
//! interface (`run.sh -m METHOD -l NUM_LAYERS -h HIDDEN_SIZE -b BATCH_SIZE
//! -w WINDOW_SIZE`):
//!
//! ```text
//! shtrain -m stronghold -l 50 -d 2560 -b 4 -w 8
//! shtrain -m all -l 20 -d 2560 -b 4
//! ```
//!
//! Methods: `megatron-lm`, `l2l`, `zero-offload`, `zero-infinity`,
//! `zero-infinity-nvme`, `stronghold`, `stronghold-nvme`, `all`.
//! (`-d` is the hidden size; `-h` prints help, unlike the paper's script.)

use stronghold_baselines::{MegatronLM, ZeroInfinity, ZeroOffload, L2L};
use stronghold_core::method::TrainingMethod;
use stronghold_core::offload::bridge_timeline;
use stronghold_core::{Stronghold, StrongholdOptions, Telemetry};
use stronghold_model::config::ModelConfig;
use stronghold_sim::Platform;

struct Args {
    method: String,
    layers: usize,
    hidden: usize,
    heads: usize,
    seq: usize,
    batch: usize,
    window: Option<usize>,
    platform: String,
    /// `--telemetry FILE`: write the JSON metrics snapshot here.
    telemetry: Option<String>,
    /// `--trace FILE`: write the Chrome-trace (`chrome://tracing`) here.
    trace: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        // The AE script's defaults: 16 layers, hidden 2048, 16 heads,
        // seq 1024, batch 4, window 4.
        Args {
            method: "all".into(),
            layers: 16,
            hidden: 2048,
            heads: 16,
            seq: 1024,
            batch: 4,
            window: None,
            platform: "v100".into(),
            telemetry: None,
            trace: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: shtrain -m METHOD [-l LAYERS] [-d HIDDEN] [-n HEADS] [-s SEQ] [-b BATCH] [-w WINDOW] [-p v100|a10]\n\
         \x20             [--telemetry FILE] [--trace FILE]\n\
         methods: megatron-lm, l2l, zero-offload, zero-infinity, zero-infinity-nvme, stronghold, stronghold-nvme, all\n\
         --telemetry writes the JSON metrics snapshot (counters, histograms, overlap efficiency);\n\
         --trace writes a chrome://tracing / Perfetto event file of the iteration"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> &str {
            argv.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "-m" => args.method = need(i).to_string(),
            "-l" => args.layers = need(i).parse().unwrap_or_else(|_| usage()),
            "-d" => args.hidden = need(i).parse().unwrap_or_else(|_| usage()),
            "-n" => args.heads = need(i).parse().unwrap_or_else(|_| usage()),
            "-s" => args.seq = need(i).parse().unwrap_or_else(|_| usage()),
            "-b" => args.batch = need(i).parse().unwrap_or_else(|_| usage()),
            "-w" => args.window = Some(need(i).parse().unwrap_or_else(|_| usage())),
            "-p" => args.platform = need(i).to_string(),
            "-t" | "--telemetry" => args.telemetry = Some(need(i).to_string()),
            "-c" | "--trace" => args.trace = Some(need(i).to_string()),
            "-h" | "--help" => usage(),
            _ => usage(),
        }
        i += 2;
    }
    args
}

fn methods_for(name: &str, window: Option<usize>) -> Vec<Box<dyn TrainingMethod>> {
    let stronghold = |nvme: bool| -> Box<dyn TrainingMethod> {
        Box::new(Stronghold::with_options(StrongholdOptions {
            window,
            nvme_cache_layers: if nvme { Some(64) } else { None },
            ..StrongholdOptions::default()
        }))
    };
    match name {
        "megatron-lm" => vec![Box::new(MegatronLM)],
        "l2l" => vec![Box::new(L2L)],
        "zero-offload" => vec![Box::new(ZeroOffload)],
        "zero-infinity" => vec![Box::new(ZeroInfinity::cpu_only())],
        "zero-infinity-nvme" => vec![Box::new(ZeroInfinity::with_nvme())],
        "stronghold" => vec![stronghold(false)],
        "stronghold-nvme" => vec![stronghold(true)],
        "all" => vec![
            Box::new(MegatronLM),
            Box::new(L2L),
            Box::new(ZeroOffload),
            Box::new(ZeroInfinity::cpu_only()),
            stronghold(false),
        ],
        _ => usage(),
    }
}

fn main() {
    let args = parse_args();
    let platform = match args.platform.as_str() {
        "v100" => Platform::v100_server(),
        "a10" => Platform::a10_cluster(1),
        _ => usage(),
    };
    let cfg = ModelConfig {
        layers: args.layers,
        hidden: args.hidden,
        heads: args.heads,
        seq: args.seq,
        vocab: stronghold_model::config::DEFAULT_VOCAB,
        batch: args.batch,
        mp_degree: 1,
    };
    println!(
        "model: {} ({} layers x hidden {}, heads {}, seq {}), batch {} | platform {}",
        cfg.size_label(),
        cfg.layers,
        cfg.hidden,
        cfg.heads,
        cfg.seq,
        cfg.batch,
        args.platform
    );
    println!(
        "\n{:<22} {:>12} {:>9} {:>10} {:>10} {:>8} {:>9}",
        "method", "samples/s", "TFLOPS", "GPU GiB", "CPU GiB", "window", "overlap%"
    );
    let methods = methods_for(&args.method, args.window);
    let multi = methods.len() > 1;
    let want_tel = args.telemetry.is_some() || args.trace.is_some();
    for m in methods {
        match m.iteration(&cfg, &platform) {
            Ok(r) => {
                println!(
                    "{:<22} {:>12.4} {:>9.2} {:>10.2} {:>10.1} {:>8} {:>9.1}",
                    m.name(),
                    r.throughput,
                    r.tflops,
                    r.gpu_peak as f64 / (1u64 << 30) as f64,
                    r.cpu_peak as f64 / (1u64 << 30) as f64,
                    r.window,
                    r.overlap * 100.0
                );
                if want_tel {
                    write_telemetry(&args, m.name(), multi, &r);
                }
            }
            Err(e) => println!("{:<22} OOM ({e})", m.name()),
        }
    }
}

/// Replays the iteration's timeline into a telemetry handle and writes the
/// requested sinks. With `-m all`, file names are prefixed by the method so
/// runs don't clobber each other.
fn write_telemetry(args: &Args, method: &str, multi: bool, r: &stronghold_core::IterationReport) {
    let dest = |base: &str| {
        if multi {
            let p = std::path::Path::new(base);
            let file = p.file_name().and_then(|f| f.to_str()).unwrap_or(base);
            p.with_file_name(format!("{method}-{file}"))
                .to_string_lossy()
                .into_owned()
        } else {
            base.to_string()
        }
    };
    let tel = Telemetry::enabled();
    bridge_timeline(&tel, &r.timeline);
    // Kernel throughput gauges for whatever GEMM work ran in-process
    // (zero for pure cost-model runs; the host substrate populates them).
    stronghold_core::telemetry::record_kernel_stats(&tel);
    let snap = tel.snapshot_json();
    let eff = snap["overlap"]["overlap_efficiency"]
        .as_f64()
        .unwrap_or(0.0);
    println!(
        "  {method}: measured overlap efficiency {:.1}%",
        eff * 100.0
    );
    if let Some(base) = &args.telemetry {
        let path = dest(base);
        let body = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
        std::fs::write(&path, body).expect("write telemetry snapshot");
        println!("  {method}: telemetry snapshot -> {path}");
    }
    if let Some(base) = &args.trace {
        let path = dest(base);
        std::fs::write(&path, tel.to_chrome_trace()).expect("write chrome trace");
        println!("  {method}: chrome trace -> {path}");
    }
}
