//! `shsweep` — grid sweeps over model and runtime parameters, CSV output.
//!
//! A downstream user's capacity-planning tool: for one method, sweep layers
//! × hidden × batch (and optionally window), emitting one CSV row per
//! configuration with throughput, TFLOPS, memory peaks and OOM markers.
//!
//! ```text
//! shsweep -m stronghold -l 20,50,100 -d 2560,5120 -b 2,4,8 [-w 1,4,8] [-p v100|a10]
//! ```

use stronghold_baselines::{MegatronLM, ZeroInfinity, ZeroOffload, L2L};
use stronghold_core::method::TrainingMethod;
use stronghold_core::{Stronghold, StrongholdOptions};
use stronghold_model::config::ModelConfig;
use stronghold_sim::Platform;

fn usage() -> ! {
    eprintln!(
        "usage: shsweep -m METHOD [-l L1,L2,..] [-d H1,H2,..] [-b B1,B2,..] [-w W1,W2,..] [-p v100|a10]"
    );
    std::process::exit(2);
}

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',')
        .map(|v| v.trim().parse().unwrap_or_else(|_| usage()))
        .collect()
}

fn method_named(name: &str, window: Option<usize>) -> Box<dyn TrainingMethod> {
    match name {
        "megatron-lm" => Box::new(MegatronLM),
        "l2l" => Box::new(L2L),
        "zero-offload" => Box::new(ZeroOffload),
        "zero-infinity" => Box::new(ZeroInfinity::cpu_only()),
        "stronghold" => Box::new(Stronghold::with_options(StrongholdOptions {
            window,
            ..StrongholdOptions::default()
        })),
        _ => usage(),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut method = "stronghold".to_string();
    let mut layers = vec![20usize, 50];
    let mut hiddens = vec![2560usize];
    let mut batches = vec![4usize];
    let mut windows: Vec<Option<usize>> = vec![None];
    let mut platform = Platform::v100_server();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> &str {
            argv.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "-m" => method = need(i).to_string(),
            "-l" => layers = parse_list(need(i)),
            "-d" => hiddens = parse_list(need(i)),
            "-b" => batches = parse_list(need(i)),
            "-w" => windows = parse_list(need(i)).into_iter().map(Some).collect(),
            "-p" => {
                platform = match need(i) {
                    "v100" => Platform::v100_server(),
                    "a10" => Platform::a10_cluster(1),
                    _ => usage(),
                }
            }
            _ => usage(),
        }
        i += 2;
    }

    println!(
        "method,layers,hidden,batch,window,params_b,samples_per_s,tflops,gpu_gib,cpu_gib,status"
    );
    for &l in &layers {
        for &h in &hiddens {
            for &b in &batches {
                for &w in &windows {
                    let m = method_named(&method, w);
                    let cfg = ModelConfig::new(l, h, 16).with_batch(b);
                    match m.iteration(&cfg, &platform) {
                        Ok(r) => println!(
                            "{},{},{},{},{},{:.2},{:.4},{:.2},{:.2},{:.1},ok",
                            m.name(),
                            l,
                            h,
                            b,
                            r.window,
                            cfg.billions(),
                            r.throughput,
                            r.tflops,
                            r.gpu_peak as f64 / (1u64 << 30) as f64,
                            r.cpu_peak as f64 / (1u64 << 30) as f64,
                        ),
                        Err(_) => println!(
                            "{},{},{},{},{},{:.2},,,,,OOM",
                            m.name(),
                            l,
                            h,
                            b,
                            w.map(|v| v.to_string()).unwrap_or_default(),
                            cfg.billions(),
                        ),
                    }
                }
            }
        }
    }
}
