//! Fig. 6 — the largest trainable model size.

use stronghold_baselines::{MegatronLM, ZeroInfinity, ZeroOffload, L2L};
use stronghold_cluster::{MegatronMP, StrongholdMP};
use stronghold_core::{Stronghold, TrainingMethod};
use stronghold_sim::Platform;

use crate::experiments::size_range;
use crate::report::{billions, Experiment, Table};

const V100_WIDTHS: &[usize] = &[2560, 4096, 5120];
const A10_WIDTHS: &[usize] = &[5120, 8192];

/// Fig. 6a: largest trainable size on the 32 GB V100.
pub fn run_6a() -> Experiment {
    let v100 = Platform::v100_server();
    let methods: Vec<(Box<dyn TrainingMethod>, f64)> = vec![
        (Box::new(MegatronLM), 1.7),
        (Box::new(L2L), 6.0),
        (Box::new(ZeroOffload), 6.0),
        (Box::new(ZeroInfinity::cpu_only()), 20.6),
        (Box::new(Stronghold::new()), 39.5),
    ];
    let mut t = Table::new(&["method", "min", "max", "paper"]);
    let mut measured = Vec::new();
    for (m, paper) in &methods {
        let (lo, hi) = size_range(m.as_ref(), &v100, V100_WIDTHS, 1, 4000).unwrap_or((0.0, 0.0));
        measured.push(hi);
        t.row(vec![
            m.name().to_string(),
            billions(lo),
            billions(hi),
            billions(*paper),
        ]);
    }
    let sh_over_zo = measured[4] / measured[2];
    let sh_over_zi = measured[4] / measured[3];
    Experiment {
        id: "fig6a",
        title: "Fig. 6a: largest trainable model size, single 32 GB V100",
        paper_claim: "Megatron 1.7B < L2L/ZeRO-Offload ~6B < ZeRO-Infinity 20.6B < STRONGHOLD 39.5B (6.5x over L2L/ZO, 1.9x over ZI)",
        tables: vec![t],
        extra: String::new(),
        verdict: format!(
            "STRONGHOLD {} = {:.1}x over ZeRO-Offload, {:.1}x over ZeRO-Infinity",
            billions(measured[4]),
            sh_over_zo,
            sh_over_zi
        ),
    }
}

/// Fig. 6b: largest trainable size on the 8-node A10 cluster (MP = 8 for
/// the methods that support it; L2L/ZeRO-Offload remain single-GPU bound).
pub fn run_6b() -> Experiment {
    let a10 = Platform::a10_cluster_8();
    let a10_single = Platform::a10_cluster(1);
    let mut t = Table::new(&["method", "min", "max", "paper"]);

    let mega = size_range(&MegatronMP, &a10, A10_WIDTHS, 8, 3000).unwrap_or((0.0, 0.0));
    t.row(vec![
        "Megatron-LM (MP)".into(),
        billions(mega.0),
        billions(mega.1),
        "13.6B".into(),
    ]);

    let l2l = size_range(&L2L, &a10_single, A10_WIDTHS, 1, 1000).unwrap_or((0.0, 0.0));
    t.row(vec![
        "L2L".into(),
        billions(l2l.0),
        billions(l2l.1),
        "GPU-bound".into(),
    ]);

    let zo = size_range(&ZeroOffload, &a10_single, A10_WIDTHS, 1, 1000).unwrap_or((0.0, 0.0));
    t.row(vec![
        "ZeRO-Offload".into(),
        billions(zo.0),
        billions(zo.1),
        "GPU-bound".into(),
    ]);

    let zi = size_range(&ZeroInfinity::cpu_only(), &a10, A10_WIDTHS, 8, 3000).unwrap_or((0.0, 0.0));
    t.row(vec![
        "ZeRO-Infinity".into(),
        billions(zi.0),
        billions(zi.1),
        "56.9B".into(),
    ]);

    let sh = size_range(&StrongholdMP, &a10, A10_WIDTHS, 8, 3000).unwrap_or((0.0, 0.0));
    t.row(vec![
        "STRONGHOLD (MP)".into(),
        billions(sh.0),
        billions(sh.1),
        "82.1B".into(),
    ]);

    Experiment {
        id: "fig6b",
        title: "Fig. 6b: largest trainable model size, 8-node A10 cluster (MP=8)",
        paper_claim:
            "ZeRO-Infinity 56.9B, STRONGHOLD 82.1B; L2L/ZeRO-Offload stay single-GPU bound",
        tables: vec![t],
        extra: String::new(),
        verdict: format!(
            "STRONGHOLD {} vs ZeRO-Infinity {} ({:.2}x)",
            billions(sh.1),
            billions(zi.1),
            sh.1 / zi.1.max(1e-9)
        ),
    }
}
