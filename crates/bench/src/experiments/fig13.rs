//! Fig. 13 — FP-only inference for knowledge distillation.

use stronghold_baselines::PlainInference;
use stronghold_core::inference::simulate_inference;
use stronghold_model::config::ModelConfig;
use stronghold_sim::Platform;

use crate::report::{tp, Experiment, Table};

/// Sweeps teacher model sizes: plain-framework inference vs STRONGHOLD's
/// windowed FP-only mode.
pub fn run() -> Experiment {
    let v100 = Platform::v100_server();
    let ladder = [20usize, 50, 83, 150, 300, 500, 700];
    let mut t = Table::new(&["model", "PyTorch samples/s", "STRONGHOLD samples/s"]);
    let mut crossover = None;
    for layers in ladder {
        let cfg = ModelConfig::new(layers, 2560, 16);
        let plain = PlainInference::inference(&cfg, &v100);
        let sh = simulate_inference(&cfg, &v100, 8);
        let plain_cell = match &plain {
            Ok(r) => tp(r.throughput),
            Err(_) => {
                if crossover.is_none() {
                    crossover = Some(cfg.size_label());
                }
                "OOM".to_string()
            }
        };
        let sh_cell = match &sh {
            Ok(r) => tp(r.throughput),
            Err(_) => "OOM".to_string(),
        };
        t.row(vec![cfg.size_label(), plain_cell, sh_cell]);
    }
    Experiment {
        id: "fig13",
        title: "Fig. 13: large-model inference for knowledge distillation, V100",
        paper_claim: "similar performance to PyTorch for small models, linear scaling where PyTorch OOMs; inference supports larger models than training",
        tables: vec![t],
        extra: String::new(),
        verdict: format!(
            "plain inference OOMs from {}; STRONGHOLD serves the whole ladder",
            crossover.unwrap_or_else(|| "none".into())
        ),
    }
}
