//! One module per paper artifact.

pub mod comms;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;

use stronghold_core::method::{max_trainable_layers, TrainingMethod};
use stronghold_model::config::ModelConfig;
use stronghold_sim::Platform;

/// Searches a method's largest trainable size across the paper's widths
/// (the min–max bars of Fig. 6); returns `(min, max)` in billions.
pub fn size_range(
    method: &dyn TrainingMethod,
    platform: &Platform,
    widths: &[usize],
    mp: usize,
    max_layers: usize,
) -> Option<(f64, f64)> {
    let mut best: Vec<f64> = Vec::new();
    for &h in widths {
        let base = ModelConfig::new(1, h, 16).with_mp(mp);
        if let Some(cfg) = max_trainable_layers(method, &base, platform, max_layers) {
            best.push(cfg.billions());
        }
    }
    if best.is_empty() {
        return None;
    }
    let min = best.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = best.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Some((min, max))
}

/// The largest model (in layers at width `h`) a method trains, as a config.
pub fn max_config(
    method: &dyn TrainingMethod,
    platform: &Platform,
    h: usize,
    mp: usize,
    max_layers: usize,
) -> Option<ModelConfig> {
    let base = ModelConfig::new(1, h, 16).with_mp(mp);
    max_trainable_layers(method, &base, platform, max_layers)
}
