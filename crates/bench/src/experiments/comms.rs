//! §III-F — the cross-server communication-volume model.

use stronghold_collective::volume::{
    v_dp, v_mp, volume_ratio, volume_ratio_simplified, VolumeParams,
};

use crate::report::{Experiment, Table};

/// Evaluates `V_mp / V_dp` for representative configurations, including the
/// paper's own 20B example.
pub fn run() -> Experiment {
    let cases = [
        (
            "paper 20B example",
            VolumeParams {
                w: 8,
                n: 50,
                hd: 4096,
                bs: 16,
                seq: 1024,
                vs: 30_000,
            },
        ),
        (
            "deep narrow",
            VolumeParams {
                w: 8,
                n: 200,
                hd: 1024,
                bs: 64,
                seq: 1024,
                vs: 30_000,
            },
        ),
        (
            "wide shallow",
            VolumeParams {
                w: 8,
                n: 24,
                hd: 8192,
                bs: 8,
                seq: 1024,
                vs: 30_000,
            },
        ),
        (
            "1.7B-ish",
            VolumeParams {
                w: 8,
                n: 20,
                hd: 2560,
                bs: 16,
                seq: 1024,
                vs: 30_000,
            },
        ),
    ];
    let mut t = Table::new(&[
        "case",
        "V_mp (elems)",
        "V_dp (elems)",
        "V_mp/V_dp",
        "simplified",
    ]);
    for (name, p) in &cases {
        t.row(vec![
            name.to_string(),
            format!("{:.3e}", v_mp(p) as f64),
            format!("{:.3e}", v_dp(p) as f64),
            format!("{:.3}", volume_ratio(p)),
            format!("{:.3}", volume_ratio_simplified(p)),
        ]);
    }
    Experiment {
        id: "comms",
        title: "§III-F: cross-server traffic of MP vs DP",
        paper_claim: "V_mp/V_dp = bs/(3·hd/256 + 30/n); converting MP to DP halves traffic for the 20B example",
        tables: vec![t],
        extra: String::new(),
        verdict: "exact and simplified forms agree; note the paper's own 20B example evaluates to ~0.33, not 2 — the DP conversion wins when activations outweigh gradients (deep/narrow models or large batch)".into(),
    }
}
