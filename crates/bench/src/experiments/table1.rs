//! Table I — the transformer model configurations.

use stronghold_model::config::table1;

use crate::report::{Experiment, Table};

/// Regenerates Table I, verifying parameter counts against the paper's
/// size labels.
pub fn run() -> Experiment {
    let mut t = Table::new(&["size", "layers", "hidden", "heads", "mp", "params"]);
    for cfg in table1() {
        t.row(vec![
            cfg.size_label(),
            cfg.layers.to_string(),
            cfg.hidden.to_string(),
            cfg.heads.to_string(),
            cfg.mp_degree.to_string(),
            cfg.total_params().to_string(),
        ]);
    }
    let n = t.rows.len();
    Experiment {
        id: "table1",
        title: "Table I: Transformer-based model configurations",
        paper_claim: "26 configurations from 1.7B to 524.5B parameters",
        tables: vec![t],
        extra: String::new(),
        verdict: format!("{n} configurations; parameter counts match the paper's size labels"),
    }
}
