//! Fig. 9 — impact of the working-window size.

use stronghold_core::offload::{derive_window, simulate_iteration, OffloadOptions};
use stronghold_model::config::{common_1_7b, model_39_4b};
use stronghold_sim::Platform;

use crate::report::{tp, Experiment, Table};

/// Sweeps the window size on the 1.7B and 39.4B models and marks the
/// analytically chosen value.
pub fn run() -> Experiment {
    let v100 = Platform::v100_server();
    let mut t = Table::new(&["window", "1.7B samples/s", "39.4B samples/s"]);
    let small = common_1_7b();
    let big = model_39_4b();
    let auto_small = derive_window(&small, &v100, &OffloadOptions::default()).unwrap();
    let auto_big = derive_window(&big, &v100, &OffloadOptions::default()).unwrap();

    let mut best_small = (0usize, 0.0f64);
    let mut at_auto_small = 0.0;
    for m in 1..=16usize {
        let opts = OffloadOptions {
            window: Some(m),
            ..OffloadOptions::default()
        };
        let ts = simulate_iteration(&small, &v100, &opts)
            .map(|r| r.throughput)
            .unwrap_or(0.0);
        let tb = simulate_iteration(&big, &v100, &opts)
            .map(|r| r.throughput)
            .unwrap_or(0.0);
        if ts > best_small.1 {
            best_small = (m, ts);
        }
        if m == auto_small {
            at_auto_small = ts;
        }
        t.row(vec![
            format!("{m}{}", if m == auto_small { " (auto)" } else { "" }),
            tp(ts),
            tp(tb),
        ]);
    }
    Experiment {
        id: "fig9",
        title: "Fig. 9: throughput vs GPU working-window size",
        paper_claim: "throughput rises with the window then plateaus; larger windows only add memory pressure; the analytic model picks the plateau point",
        tables: vec![t],
        extra: String::new(),
        verdict: format!(
            "analytic window {auto_small} (1.7B) / {auto_big} (39.4B); auto choice reaches {:.1}% of the best swept throughput",
            at_auto_small / best_small.1.max(1e-12) * 100.0
        ),
    }
}
