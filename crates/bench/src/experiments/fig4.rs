//! Fig. 4 — the compute/offload overlap trace of one training iteration.

use stronghold_core::offload::{
    simulate_iteration, simulate_iteration_with_telemetry, OffloadOptions,
};
use stronghold_core::Telemetry;
use stronghold_model::config::model_4b;
use stronghold_sim::{Lane, Platform};

use crate::report::{telemetry_table, Experiment, Table};

/// Writes the Fig. 4 iteration as a Chrome-tracing / Perfetto JSON file and
/// returns the path.
pub fn write_chrome_trace(dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
    let r = simulate_iteration(
        &model_4b(),
        &Platform::v100_server(),
        &OffloadOptions::default(),
    )
    .expect("4B on V100");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("fig4_trace.json");
    std::fs::write(&path, r.timeline.to_chrome_trace())?;
    Ok(path)
}

/// Renders the ASCII Gantt trace of one STRONGHOLD iteration on the 4B
/// model — the analogue of the paper's profiling trace.
pub fn run() -> Experiment {
    let v100 = Platform::v100_server();
    let cfg = model_4b();
    let tel = Telemetry::enabled();
    let r = simulate_iteration_with_telemetry(&cfg, &v100, &OffloadOptions::default(), &tel)
        .expect("4B on V100");

    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["window".into(), r.window.to_string()]);
    t.row(vec!["iteration time".into(), format!("{}", r.iter_time)]);
    t.row(vec![
        "GPU compute utilization".into(),
        format!("{:.1}%", r.gpu_util * 100.0),
    ]);
    t.row(vec![
        "copy overlap".into(),
        format!("{:.1}%", r.overlap * 100.0),
    ]);
    t.row(vec![
        "H2D busy".into(),
        format!("{}", r.timeline.busy(Lane::CopyIn)),
    ]);
    t.row(vec![
        "D2H busy".into(),
        format!("{}", r.timeline.busy(Lane::CopyOut)),
    ]);

    Experiment {
        id: "fig4",
        title: "Fig. 4: GPU computation and offloading trace, 4B model on V100",
        paper_claim:
            "CPU-directed offloading is largely overlapped by GPU computation when P1 and P2 hold",
        extra: r.timeline.render_ascii(100),
        tables: vec![t, telemetry_table(&tel.snapshot_json())],
        verdict: format!(
            "{:.1}% of copy time hides under compute at window {}",
            r.overlap * 100.0,
            r.window
        ),
    }
}
