//! Fig. 12 — distributed training vs ZeRO-2 / ZeRO-3.

use stronghold_cluster::{StrongholdDP, ZeroDP};
use stronghold_core::method::{max_trainable_layers, TrainingMethod};
use stronghold_model::config::ModelConfig;
use stronghold_sim::Platform;

use crate::report::{ratio, tp, Experiment, Table};

/// Runs the 8-node comparison at ZeRO-2's largest supported model (≈3B,
/// batch 1 per GPU), as §VI-D2 specifies.
pub fn run() -> Experiment {
    let a10 = Platform::a10_cluster_8();
    let base = ModelConfig::new(1, 2560, 16).with_batch(1);
    let cfg = max_trainable_layers(&ZeroDP::stage2(), &base, &a10, 400)
        .expect("ZeRO-2 supports some model");

    let methods: Vec<Box<dyn TrainingMethod>> = vec![
        Box::new(ZeroDP::stage2()),
        Box::new(ZeroDP::stage3()),
        Box::new(StrongholdDP),
    ];
    let mut t = Table::new(&["method", "samples/s (global)", "vs ZeRO-2"]);
    let z2 = methods[0].iteration(&cfg, &a10).expect("zero-2 at its cap");
    let mut sh_gain = 0.0;
    for m in &methods {
        let r = m.iteration(&cfg, &a10).expect("3B fits all");
        let rel = r.throughput / z2.throughput;
        if m.name().starts_with("STRONGHOLD") {
            sh_gain = rel;
        }
        t.row(vec![m.name().to_string(), tp(r.throughput), ratio(rel)]);
    }
    Experiment {
        id: "fig12",
        title: "Fig. 12: 8-node A10 cluster on ZeRO-2's largest model (bs=1/GPU)",
        paper_claim: "STRONGHOLD runs the whole model per node and exploits pure data parallelism, >2.6x over the ZeRO baselines",
        tables: vec![t],
        extra: format!("model: {} ({} layers, hidden {})\n", cfg.size_label(), cfg.layers, cfg.hidden),
        verdict: format!("STRONGHOLD-DP = {sh_gain:.2}x over ZeRO-2"),
    }
}
