//! Fig. 14 — optimization breakdown (ablation) on the 4B model with NVMe.
//!
//! The paper's three bars cannot all be measured against one
//! no-optimization baseline (the time fractions they would remove sum past
//! 100%), so we report both readings: the leave-one-out attribution
//! (disable one optimization in the otherwise-full system — this matches
//! the paper's magnitudes) and the turn-one-on deltas over the bare
//! offloader.

use stronghold_core::memplan::ColdTier;
use stronghold_core::multistream::choose_streams;
use stronghold_core::offload::{simulate_iteration, OffloadOptions};
use stronghold_model::config::model_4b;
use stronghold_sim::Platform;

use crate::report::{ratio, Experiment, Table};

/// Runs both ablation readings on the 4B + NVMe configuration.
pub fn run() -> Experiment {
    let v100 = Platform::v100_server();
    let cfg = model_4b();
    let tier = ColdTier::Nvme {
        cpu_cache_layers: 64,
    };

    let bare = OffloadOptions {
        cold_tier: tier,
        concurrent_optimizers: false,
        pooled_allocator: false,
        streams: 1,
        ..OffloadOptions::default()
    };
    let k = choose_streams(&cfg, &v100, &bare).unwrap_or(2).max(2);
    let full = OffloadOptions {
        cold_tier: tier,
        concurrent_optimizers: true,
        pooled_allocator: true,
        streams: k,
        ..OffloadOptions::default()
    };
    let run_opts = |o: &OffloadOptions| {
        simulate_iteration(&cfg, &v100, o)
            .expect("4B NVMe")
            .throughput
    };
    let tp_full = run_opts(&full);
    let tp_bare = run_opts(&bare);

    let mut t = Table::new(&["optimization", "leave-one-out", "turn-one-on", "paper"]);
    let mut loo = Vec::new();
    let mut add = |label: &str,
                   without: OffloadOptions,
                   with_only: OffloadOptions,
                   paper: &str,
                   t: &mut Table| {
        let attributed = tp_full / run_opts(&without);
        let delta = run_opts(&with_only) / tp_bare;
        loo.push(attributed);
        t.row(vec![
            label.into(),
            ratio(attributed),
            ratio(delta),
            paper.into(),
        ]);
    };

    add(
        "concurrent update & hetero comm (III-E1/E2)",
        OffloadOptions {
            concurrent_optimizers: false,
            ..full
        },
        OffloadOptions {
            concurrent_optimizers: true,
            ..bare
        },
        "1.5x",
        &mut t,
    );
    add(
        "memory management (III-E3)",
        OffloadOptions {
            pooled_allocator: false,
            ..full
        },
        OffloadOptions {
            pooled_allocator: true,
            ..bare
        },
        "2.2x",
        &mut t,
    );
    add(
        "multi-streamed execution (IV-A)",
        OffloadOptions { streams: 1, ..full },
        OffloadOptions { streams: k, ..bare },
        "2.0x",
        &mut t,
    );

    Experiment {
        id: "fig14",
        title: "Fig. 14: per-optimization speedup, 4B model with NVMe",
        paper_claim: "concurrent update + hetero comm 1.5x; memory management 2.2x; multi-stream up to 2x",
        tables: vec![t],
        extra: format!(
            "full system: {tp_full:.3} samples/s ({k} streams) | bare offloader: {tp_bare:.3} samples/s ({:.2}x total)\n",
            tp_full / tp_bare
        ),
        verdict: format!(
            "leave-one-out attribution: {:.2}x / {:.2}x / {:.2}x",
            loo[0], loo[1], loo[2]
        ),
    }
}
