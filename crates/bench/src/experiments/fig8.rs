//! Fig. 8 — throughput on the common 1.7B model and scaling with size.

use stronghold_baselines::{MegatronLM, ZeroInfinity, ZeroOffload, L2L};
use stronghold_core::method::TrainingMethod;
use stronghold_core::offload::{simulate_iteration, OffloadOptions};
use stronghold_core::Stronghold;
use stronghold_model::config::{common_1_7b, ModelConfig};
use stronghold_sim::Platform;

use crate::report::{ratio, tp, Experiment, Table};

/// Fig. 8a: every method on the 1.7B model (Megatron-LM's ceiling).
pub fn run_8a() -> Experiment {
    let v100 = Platform::v100_server();
    let cfg = common_1_7b();
    let mega = MegatronLM.iteration(&cfg, &v100).expect("megatron on 1.7B");
    let methods: Vec<Box<dyn TrainingMethod>> = vec![
        Box::new(MegatronLM),
        Box::new(L2L),
        Box::new(ZeroOffload),
        Box::new(ZeroInfinity::cpu_only()),
        Box::new(Stronghold::new()),
    ];
    let mut t = Table::new(&["method", "samples/s", "vs Megatron", "paper"]);
    let paper = ["1.00x", "0.22x", "<0.57x", "<0.57x", ">1.0x"];
    let mut sh_ratio = 0.0;
    for (m, p) in methods.iter().zip(paper) {
        let r = m.iteration(&cfg, &v100).expect("1.7B fits every method");
        let rel = r.throughput / mega.throughput;
        if m.name() == "STRONGHOLD" {
            sh_ratio = rel;
        }
        t.row(vec![
            m.name().to_string(),
            tp(r.throughput),
            ratio(rel),
            p.to_string(),
        ]);
    }
    Experiment {
        id: "fig8a",
        title: "Fig. 8a: throughput on the common 1.7B model, V100",
        paper_claim: "L2L 22.2% of Megatron; ZeRO-Offload/Infinity <57%; STRONGHOLD is the only offloader above Megatron-LM",
        tables: vec![t],
        extra: String::new(),
        verdict: format!("STRONGHOLD reaches {sh_ratio:.2}x of Megatron-LM on its own ceiling model"),
    }
}

/// Fig. 8b: iteration time scales ~linearly with model size under
/// STRONGHOLD (single-stream, so the curve isolates offloading overhead).
pub fn run_8b() -> Experiment {
    let v100 = Platform::v100_server();
    // The paper's hidden-2560 ladder (Table I row 1) up to the 39.4B ceiling.
    let ladder = [20usize, 50, 74, 83, 260, 300, 500];
    let opts = OffloadOptions::default();
    let base = simulate_iteration(&common_1_7b(), &v100, &opts).expect("1.7B");
    let base_time = base.iter_time.as_secs_f64();
    let base_layers = 20.0;
    let mut t = Table::new(&["model", "layers", "iter time (s)", "linear proj (s)", "dev"]);
    let mut worst_dev: f64 = 0.0;
    for layers in ladder {
        let cfg = ModelConfig::new(layers, 2560, 16);
        let r = simulate_iteration(&cfg, &v100, &opts).expect("ladder model");
        let measured = r.iter_time.as_secs_f64();
        let projected = base_time * layers as f64 / base_layers;
        let dev = (measured - projected) / projected;
        worst_dev = worst_dev.max(dev.abs());
        t.row(vec![
            cfg.size_label(),
            layers.to_string(),
            format!("{measured:.2}"),
            format!("{projected:.2}"),
            format!("{:+.1}%", dev * 100.0),
        ]);
    }
    Experiment {
        id: "fig8b",
        title: "Fig. 8b: STRONGHOLD iteration time vs model size (lower is better)",
        paper_claim: "nearly linear scaling up to the 39.4B ceiling, with small fluctuations from window/cache effects",
        tables: vec![t],
        extra: String::new(),
        verdict: format!("scaling stays within {:.1}% of the linear projection", worst_dev * 100.0),
    }
}
