//! Fig. 10 — throughput with the NVMe tier vs ZeRO-Infinity.

use stronghold_baselines::ZeroInfinity;
use stronghold_core::method::TrainingMethod;
use stronghold_core::{Stronghold, StrongholdOptions};
use stronghold_model::config::ModelConfig;
use stronghold_sim::Platform;

use crate::report::{ratio, tp, Experiment, Table};

/// Runs the NVMe-backed sweep over the paper's large hidden-2560/5120
/// configurations.
pub fn run() -> Experiment {
    let v100 = Platform::v100_server();
    let sh = Stronghold::with_options(StrongholdOptions {
        nvme_cache_layers: Some(64),
        ..StrongholdOptions::default()
    });
    let zi = ZeroInfinity::with_nvme();
    // Models beyond the CPU-RAM ceiling: 66.7B…524.5B (Table I tail) at
    // hidden 2560 equivalents plus the 39.4B reference point.
    let ladder: &[(usize, usize)] = &[(500, 2560), (850, 2560), (1300, 2560), (1174, 5120)];
    let mut t = Table::new(&[
        "model",
        "STRONGHOLD samples/s",
        "ZeRO-Infinity samples/s",
        "gain",
    ]);
    let mut min_gain = f64::INFINITY;
    for &(layers, hidden) in ladder {
        let cfg = ModelConfig::new(layers, hidden, 16);
        let a = sh.iteration(&cfg, &v100);
        let b = zi.iteration(&cfg, &v100);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                let gain = a.throughput / b.throughput;
                min_gain = min_gain.min(gain);
                t.row(vec![
                    cfg.size_label(),
                    tp(a.throughput),
                    tp(b.throughput),
                    ratio(gain),
                ]);
            }
            _ => {
                t.row(vec![
                    cfg.size_label(),
                    "OOM".into(),
                    "OOM".into(),
                    "-".into(),
                ]);
            }
        }
    }
    Experiment {
        id: "fig10",
        title: "Fig. 10: NVMe tier throughput, STRONGHOLD vs ZeRO-Infinity",
        paper_claim: "both reach ~0.5T parameters with NVMe; STRONGHOLD's bulk asynchronous I/O improves throughput by over 8x",
        tables: vec![t],
        extra: String::new(),
        verdict: format!("STRONGHOLD ≥ {min_gain:.1}x over ZeRO-Infinity across the NVMe ladder"),
    }
}
