//! Fig. 1 — the motivation figure: trainable size and 1.7B throughput for
//! Megatron-LM and the ZeRO family.

use stronghold_baselines::{MegatronLM, ZeroInfinity, ZeroOffload};
use stronghold_core::method::TrainingMethod;
use stronghold_model::config::common_1_7b;
use stronghold_sim::Platform;

use crate::experiments::max_config;
use crate::report::{billions, ratio, tp, Experiment, Table};

/// Regenerates both panels of Fig. 1 on the V100 platform.
pub fn run() -> Experiment {
    let v100 = Platform::v100_server();
    let methods: Vec<Box<dyn TrainingMethod>> = vec![
        Box::new(MegatronLM),
        Box::new(ZeroOffload),
        Box::new(ZeroInfinity::cpu_only()),
        Box::new(ZeroInfinity::with_nvme()),
    ];

    // Panel (a): trainable size.
    let mut ta = Table::new(&["method", "largest trainable"]);
    let mega_size = max_config(&MegatronLM, &v100, 2560, 1, 4000)
        .map(|c| c.billions())
        .unwrap_or(0.0);
    for m in &methods {
        let size = max_config(m.as_ref(), &v100, 2560, 1, 9000)
            .map(|c| c.billions())
            .unwrap_or(0.0);
        ta.row(vec![m.name().to_string(), billions(size)]);
    }

    // Panel (b): throughput on the 1.7B model.
    let cfg = common_1_7b();
    let mega = MegatronLM.iteration(&cfg, &v100).expect("megatron");
    let mut tb = Table::new(&["method", "samples/s", "vs Megatron"]);
    let mut zi_nvme_slowdown = 0.0;
    for m in &methods {
        let r = m.iteration(&cfg, &v100).expect("1.7B");
        let rel = r.throughput / mega.throughput;
        if m.name().contains("NVMe") {
            zi_nvme_slowdown = 1.0 / rel;
        }
        tb.row(vec![m.name().to_string(), tp(r.throughput), ratio(rel)]);
    }

    Experiment {
        id: "fig1",
        title: "Fig. 1: motivation — trainable size (a) and 1.7B throughput (b)",
        paper_claim: "ZeRO scales size 3x-29x over Megatron-LM but throughput collapses (6.7x less for ZeRO-Offload, ~800x for ZeRO-Infinity+NVMe)",
        tables: vec![ta, tb],
        extra: format!("Megatron-LM ceiling: {}\n", billions(mega_size)),
        verdict: format!(
            "offloading baselines trade throughput for size; ZeRO-Infinity+NVMe is {zi_nvme_slowdown:.0}x below Megatron-LM"
        ),
    }
}
