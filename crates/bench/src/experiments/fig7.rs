//! Fig. 7 — throughput at each method's largest trainable model.

use stronghold_baselines::{MegatronLM, ZeroInfinity, ZeroOffload, L2L};
use stronghold_cluster::{MegatronMP, StrongholdMP};
use stronghold_core::{Stronghold, TrainingMethod};
use stronghold_sim::Platform;

use crate::experiments::max_config;
use crate::report::{billions, tp, Experiment, Table};

fn throughput_row(
    m: &dyn TrainingMethod,
    platform: &Platform,
    h: usize,
    mp: usize,
    max_layers: usize,
    t: &mut Table,
) -> Option<(f64, f64)> {
    let cfg = max_config(m, platform, h, mp, max_layers)?;
    let r = m.iteration(&cfg, platform).ok()?;
    t.row(vec![
        m.name().to_string(),
        billions(cfg.billions()),
        tp(r.throughput),
        format!("{:.2}", r.tflops),
        format!("{:.0}%", r.overlap * 100.0),
    ]);
    Some((r.throughput, r.tflops))
}

/// Fig. 7a: single V100, every method at its own ceiling.
pub fn run_7a() -> Experiment {
    let v100 = Platform::v100_server();
    let mut t = Table::new(&["method", "model", "samples/s", "TFLOPS", "overlap"]);
    let mut sh_tflops = 0.0;
    for m in [
        Box::new(MegatronLM) as Box<dyn TrainingMethod>,
        Box::new(L2L),
        Box::new(ZeroOffload),
        Box::new(ZeroInfinity::cpu_only()),
        Box::new(Stronghold::new()),
    ] {
        if let Some((_, fl)) = throughput_row(m.as_ref(), &v100, 2560, 1, 4000, &mut t) {
            sh_tflops = fl; // last row = STRONGHOLD
        }
    }
    Experiment {
        id: "fig7a",
        title: "Fig. 7a: throughput at each method's largest model, V100",
        paper_claim: "STRONGHOLD reaches 6-9 TFLOPS (42-57% of peak) vs L2L 1.88, ZeRO-Offload 0.59, ZeRO-Infinity 0.53",
        tables: vec![t],
        extra: String::new(),
        verdict: format!("STRONGHOLD sustains {sh_tflops:.1} TFLOPS at its 39B-scale ceiling"),
    }
}

/// Fig. 7b: A10 cluster, MP methods at their ceilings.
pub fn run_7b() -> Experiment {
    let a10 = Platform::a10_cluster_8();
    let a10_single = Platform::a10_cluster(1);
    let mut t = Table::new(&["method", "model", "samples/s", "TFLOPS", "overlap"]);
    throughput_row(&MegatronMP, &a10, 5120, 8, 3000, &mut t);
    throughput_row(&L2L, &a10_single, 5120, 1, 1000, &mut t);
    throughput_row(&ZeroOffload, &a10_single, 5120, 1, 1000, &mut t);
    throughput_row(&ZeroInfinity::cpu_only(), &a10, 5120, 8, 3000, &mut t);
    throughput_row(&StrongholdMP, &a10, 5120, 8, 3000, &mut t);
    let verdict = {
        let sh = t.rows.last().cloned().unwrap_or_default();
        format!(
            "STRONGHOLD trains {} at {} samples/s on the cluster",
            sh[1], sh[2]
        )
    };
    Experiment {
        id: "fig7b",
        title: "Fig. 7b: throughput at each method's largest model, A10 cluster",
        paper_claim:
            "STRONGHOLD outperforms all baselines while training the largest (82.1B) model",
        tables: vec![t],
        extra: String::new(),
        verdict,
    }
}
