//! Fig. 11 — multi-stream speedup over Megatron-LM across batch sizes.

use stronghold_baselines::MegatronLM;
use stronghold_core::method::TrainingMethod;
use stronghold_core::multistream::choose_streams;
use stronghold_core::offload::{simulate_iteration, OffloadOptions};
use stronghold_model::config::common_1_7b;
use stronghold_sim::Platform;

use crate::report::{ratio, tp, Experiment, Table};

/// Sweeps the paper's batch sizes on the 1.7B model with the multi-stream
/// optimization enabled.
pub fn run() -> Experiment {
    let v100 = Platform::v100_server();
    let mut t = Table::new(&[
        "batch",
        "streams",
        "Megatron samples/s",
        "STRONGHOLD samples/s",
        "speedup",
    ]);
    let mut min_sp = f64::INFINITY;
    let mut max_sp = 0.0f64;
    let mut last_mega: Option<(usize, f64)> = None;
    for bs in [2usize, 4, 8, 16] {
        let cfg = common_1_7b().with_batch(bs);
        // Megatron's activation footprint at batch 16 can exceed the device;
        // extrapolate the reference from the last feasible batch via the
        // kernel-efficiency curve (throughput ∝ achieved FLOP rate), and
        // mark the row.
        let (mega_tp, extrapolated) = match MegatronLM.iteration(&cfg, &v100) {
            Ok(r) => {
                last_mega = Some((bs, r.throughput));
                (r.throughput, false)
            }
            Err(_) => {
                let (b0, tp0) = last_mega.expect("some batch fits");
                let scale = stronghold_sim::calibration::kernel_efficiency(bs as f64)
                    / stronghold_sim::calibration::kernel_efficiency(b0 as f64);
                (tp0 * scale, true)
            }
        };
        let k = choose_streams(&cfg, &v100, &OffloadOptions::default()).expect("stream choice");
        let sh = simulate_iteration(
            &cfg,
            &v100,
            &OffloadOptions {
                streams: k,
                ..OffloadOptions::default()
            },
        )
        .expect("stronghold 1.7B");
        let sp = sh.throughput / mega_tp;
        min_sp = min_sp.min(sp);
        max_sp = max_sp.max(sp);
        t.row(vec![
            bs.to_string(),
            k.to_string(),
            format!("{}{}", tp(mega_tp), if extrapolated { "*" } else { "" }),
            tp(sh.throughput),
            ratio(sp),
        ]);
    }
    Experiment {
        id: "fig11",
        title: "Fig. 11: multi-stream speedup over Megatron-LM, 1.7B model",
        paper_claim: "at least 1.7x and up to 2.1x speedup across batch sizes (memory footprint reduced ~60% enables multiple CUDA streams)",
        tables: vec![t],
        extra: "* reference extrapolated from Megatron-LM's largest feasible batch\n".into(),
        verdict: format!("speedup ranges {min_sp:.2}x - {max_sp:.2}x across batch sizes"),
    }
}
