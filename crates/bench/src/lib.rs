//! The `paperbench` harness: one experiment per table/figure of the paper's
//! evaluation (§V–§VI). Each experiment prints a human-readable table and
//! returns a JSON value so results can be archived and diffed.

pub mod experiments;
pub mod report;

pub use report::{Experiment, Table};

/// All experiment ids in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1", "fig1", "fig4", "fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b", "fig9",
    "fig10", "fig11", "fig12", "fig13", "fig14", "comms",
];

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<Experiment> {
    use experiments::*;
    let exp = match id {
        "table1" => table1::run(),
        "fig1" => fig1::run(),
        "fig4" => fig4::run(),
        "fig6a" => fig6::run_6a(),
        "fig6b" => fig6::run_6b(),
        "fig7a" => fig7::run_7a(),
        "fig7b" => fig7::run_7b(),
        "fig8a" => fig8::run_8a(),
        "fig8b" => fig8::run_8b(),
        "fig9" => fig9::run(),
        "fig10" => fig10::run(),
        "fig11" => fig11::run(),
        "fig12" => fig12::run(),
        "fig13" => fig13::run(),
        "fig14" => fig14::run(),
        "comms" => comms::run(),
        _ => return None,
    };
    Some(exp)
}
