//! Cross-server collective costs for the cluster methods.

use stronghold_model::config::ModelConfig;
use stronghold_model::layer::F32_BYTES;
use stronghold_sim::{CostModel, Platform, SimTime};

/// Network bandwidth of the platform (panics if the platform has none).
pub fn net_bw(platform: &Platform) -> f64 {
    platform.net.expect("cluster platform needs a network").bw
}

/// Per-layer model-parallel communication during FP: Megatron-style tensor
/// parallelism all-reduces the activations twice per block (after attention
/// and after the MLP).
pub fn mp_fp_comm_per_layer(cfg: &ModelConfig, platform: &Platform) -> SimTime {
    let cost = CostModel::new(*platform);
    let act_bytes = cfg.batch as u64 * cfg.seq as u64 * cfg.hidden as u64 * F32_BYTES;
    cost.ring_allreduce(act_bytes, cfg.mp_degree, net_bw(platform)) * 2
}

/// Per-layer model-parallel communication during BP (gradient of the same
/// two all-reduces).
pub fn mp_bp_comm_per_layer(cfg: &ModelConfig, platform: &Platform) -> SimTime {
    mp_fp_comm_per_layer(cfg, platform)
}

/// Whole-model data-parallel gradient all-reduce across `world` nodes.
pub fn dp_allreduce(cfg: &ModelConfig, platform: &Platform, world: usize) -> SimTime {
    let cost = CostModel::new(*platform);
    let grad_bytes = cfg.total_params() * F32_BYTES;
    cost.ring_allreduce(grad_bytes, world, net_bw(platform))
}

/// Ring all-gather of the full parameter set across `world` ranks (ZeRO-3's
/// per-iteration parameter traffic, and ZeRO-2's post-update gather).
pub fn param_allgather(cfg: &ModelConfig, platform: &Platform, world: usize) -> SimTime {
    let cost = CostModel::new(*platform);
    let bytes = cfg.total_params() * F32_BYTES;
    cost.ring_allgather(bytes, world, net_bw(platform))
}

/// Exact data-parallel gradient traffic per step across `world` ranks, in
/// bytes: `4 · w·(w−1)·E` with `E` the full gradient element count (§III-F).
///
/// This is *counted*, not modeled: the in-process collective
/// (`stronghold_collective::real::Communicator`) reports exactly this many
/// bytes per training step, which the traffic-validation suite asserts with
/// zero tolerance — the analytic [`dp_allreduce`] *time* above and this
/// byte count share one volume formula.
pub fn dp_traffic_bytes(cfg: &ModelConfig, world: usize) -> u64 {
    stronghold_collective::v_dp_exact(world as u64, cfg.total_params()) * F32_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::ModelConfig;

    fn a10() -> Platform {
        Platform::a10_cluster_8()
    }

    #[test]
    fn mp_comm_grows_with_batch() {
        let small = ModelConfig::new(24, 5120, 16).with_mp(8).with_batch(2);
        let big = small.with_batch(16);
        assert!(mp_fp_comm_per_layer(&big, &a10()) > mp_fp_comm_per_layer(&small, &a10()));
    }

    #[test]
    fn dp_allreduce_independent_of_batch() {
        let a = ModelConfig::new(24, 5120, 16).with_batch(2);
        let b = a.with_batch(16);
        assert_eq!(dp_allreduce(&a, &a10(), 8), dp_allreduce(&b, &a10(), 8));
    }

    #[test]
    fn single_rank_comm_is_free() {
        let cfg = ModelConfig::new(4, 1024, 16);
        assert_eq!(dp_allreduce(&cfg, &a10(), 1), SimTime::ZERO);
        assert_eq!(mp_fp_comm_per_layer(&cfg, &a10()), SimTime::ZERO);
        assert_eq!(dp_traffic_bytes(&cfg, 1), 0);
    }

    #[test]
    fn dp_traffic_is_quadratic_in_world_size() {
        let cfg = ModelConfig::new(4, 1024, 16);
        let w2 = dp_traffic_bytes(&cfg, 2);
        assert_eq!(w2, 2 * cfg.total_params() * F32_BYTES);
        // w·(w−1): 2 → 2, 4 → 12, so 4 ranks move 6× the bytes of 2.
        assert_eq!(dp_traffic_bytes(&cfg, 4), 6 * w2);
    }
}
