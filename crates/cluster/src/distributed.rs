//! Distributed training methods on the A10 cluster.
//!
//! * [`StrongholdMP`] / [`MegatronMP`] — tensor model parallelism across the
//!   8 GPUs (Figs. 6b, 7b): per-layer activation all-reduces are added to
//!   the single-node schedule.
//! * [`StrongholdDP`] — the §III-F conversion: because STRONGHOLD fits the
//!   whole model per node, the cluster runs data parallelism; the gradient
//!   all-reduce rides the heterogeneous CPU collective channel and overlaps
//!   backward compute.
//! * [`ZeroDP`] — ZeRO-2 (optimizer+gradient partitioning) and ZeRO-3
//!   (adds parameter partitioning), the Fig. 12 comparators.

use stronghold_baselines::megatron::MegatronLM;
use stronghold_core::error::{Result, RuntimeError};
use stronghold_core::method::{flops_per_sample, IterationReport, TrainingMethod};
use stronghold_core::Stronghold;
use stronghold_model::config::ModelConfig;
use stronghold_model::layer::build_layers;
use stronghold_model::memory;
use stronghold_sim::calibration as cal;
use stronghold_sim::{CostModel, Platform, SimTime};

use crate::comm;

/// Adds serialized per-layer MP collectives to a single-node report.
fn add_mp_comm(
    mut report: IterationReport,
    cfg: &ModelConfig,
    platform: &Platform,
) -> IterationReport {
    let per_layer =
        comm::mp_fp_comm_per_layer(cfg, platform) + comm::mp_bp_comm_per_layer(cfg, platform);
    let extra = per_layer * cfg.layers as u64;
    report.iter_time += extra;
    let secs = report.iter_time.as_secs_f64();
    report.throughput = cfg.batch as f64 / secs;
    report.tflops =
        flops_per_sample(cfg) as f64 * cfg.mp_degree as f64 * cfg.batch as f64 / secs / 1e12;
    report
}

/// STRONGHOLD under `w`-way tensor model parallelism (one shard per node).
#[derive(Clone, Copy, Debug, Default)]
pub struct StrongholdMP;

impl TrainingMethod for StrongholdMP {
    fn name(&self) -> &'static str {
        "STRONGHOLD (MP)"
    }

    fn feasible(&self, cfg: &ModelConfig, platform: &Platform) -> bool {
        cfg.mp_degree == platform.nodes && Stronghold::new().feasible(cfg, platform)
    }

    fn iteration(&self, cfg: &ModelConfig, platform: &Platform) -> Result<IterationReport> {
        if cfg.mp_degree != platform.nodes {
            return Err(RuntimeError::Config(format!(
                "mp degree {} != nodes {}",
                cfg.mp_degree, platform.nodes
            )));
        }
        let mut r = add_mp_comm(Stronghold::new().iteration(cfg, platform)?, cfg, platform);
        r.method = self.name().into();
        Ok(r)
    }
}

/// Megatron-LM under tensor model parallelism.
#[derive(Clone, Copy, Debug, Default)]
pub struct MegatronMP;

impl TrainingMethod for MegatronMP {
    fn name(&self) -> &'static str {
        "Megatron-LM (MP)"
    }

    fn feasible(&self, cfg: &ModelConfig, platform: &Platform) -> bool {
        cfg.mp_degree == platform.nodes && MegatronLM.feasible(cfg, platform)
    }

    fn iteration(&self, cfg: &ModelConfig, platform: &Platform) -> Result<IterationReport> {
        let mut r = add_mp_comm(MegatronLM.iteration(cfg, platform)?, cfg, platform);
        r.method = self.name().into();
        Ok(r)
    }
}

/// STRONGHOLD run as pure data parallelism across the cluster (§III-F,
/// Fig. 12): every node holds the full model through offloading.
#[derive(Clone, Copy, Debug, Default)]
pub struct StrongholdDP;

impl TrainingMethod for StrongholdDP {
    fn name(&self) -> &'static str {
        "STRONGHOLD (DP)"
    }

    fn feasible(&self, cfg: &ModelConfig, platform: &Platform) -> bool {
        cfg.mp_degree == 1 && Stronghold::new().feasible(cfg, platform)
    }

    fn iteration(&self, cfg: &ModelConfig, platform: &Platform) -> Result<IterationReport> {
        let mut report = Stronghold::new().iteration(cfg, platform)?;
        // Gradient all-reduce over the heterogeneous CPU channel (§III-E2):
        // issued layer-wise as gradients land on the host, it overlaps the
        // remaining backward compute; only the tail beyond the overlap
        // budget is exposed.
        let ar = comm::dp_allreduce(cfg, platform, platform.nodes);
        let overlap_budget = SimTime::from_secs_f64(report.iter_time.as_secs_f64() * 0.6);
        let exposed = ar.saturating_sub(overlap_budget);
        report.iter_time += exposed;
        let secs = report.iter_time.as_secs_f64();
        report.throughput = cfg.batch as f64 * platform.nodes as f64 / secs;
        report.tflops =
            flops_per_sample(cfg) as f64 * cfg.batch as f64 * platform.nodes as f64 / secs / 1e12;
        report.method = self.name().into();
        Ok(report)
    }
}

/// ZeRO data-parallel stages 2 and 3 (§V-C).
#[derive(Clone, Copy, Debug)]
pub struct ZeroDP {
    /// ZeRO stage: 2 partitions optimizer+gradients; 3 adds parameters.
    pub stage: u8,
}

impl ZeroDP {
    /// ZeRO-2.
    pub fn stage2() -> Self {
        ZeroDP { stage: 2 }
    }

    /// ZeRO-3.
    pub fn stage3() -> Self {
        ZeroDP { stage: 3 }
    }

    /// Per-GPU device bytes.
    pub fn gpu_usage(&self, cfg: &ModelConfig, world: usize) -> u64 {
        let params = cfg.total_params();
        let residual = memory::activation_checkpoint_bytes(cfg) + memory::peak_workspace_bytes(cfg);
        let w = world as u64;
        match self.stage {
            2 => params * 4 + params * 12 / w + residual,
            _ => {
                let layers = build_layers(cfg);
                let max_layer = layers.iter().map(|l| l.bp_state_bytes()).max().unwrap_or(0);
                params * 16 / w + 2 * max_layer + residual
            }
        }
    }
}

impl TrainingMethod for ZeroDP {
    fn name(&self) -> &'static str {
        if self.stage == 2 {
            "ZeRO-2"
        } else {
            "ZeRO-3"
        }
    }

    fn feasible(&self, cfg: &ModelConfig, platform: &Platform) -> bool {
        self.gpu_usage(cfg, platform.nodes) <= memory::usable_device_bytes(platform.gpu.mem_bytes)
    }

    fn iteration(&self, cfg: &ModelConfig, platform: &Platform) -> Result<IterationReport> {
        if !self.feasible(cfg, platform) {
            return Err(RuntimeError::Infeasible {
                method: self.name().into(),
                reason: "partitioned state exceeds device memory".into(),
            });
        }
        let cost = CostModel::new(*platform);
        let layers = build_layers(cfg);
        let world = platform.nodes;

        // Compute sweep (per-GPU batch).
        let mut compute = SimTime::ZERO;
        for l in &layers {
            compute += cost.layer_fp(l, cfg.batch) + cost.layer_bp(l, cfg.batch);
        }
        // Partitioning machinery: per-layer hooks/bucketing on both passes
        // (twice per layer for stage 3, which also re-gathers in BP).
        let passes = if self.stage == 2 { 2 } else { 3 };
        let machinery =
            SimTime::from_micros(cal::ZERO_DP_LAYER_OVERHEAD_US) * (layers.len() as u64 * passes);

        // Collectives on the critical path.
        let bw = comm::net_bw(platform);
        let grad_bytes = cfg.total_params() * 4;
        let mut comm_time = cost.ring_allreduce(grad_bytes, world, bw); // reduce-scatter + gather of grads
        if self.stage == 2 {
            // Post-update parameter all-gather.
            comm_time += comm::param_allgather(cfg, platform, world);
        } else {
            // Per-layer parameter all-gathers in FP and BP; depth-1 overlap
            // hides what fits under the layer compute.
            for l in &layers {
                let gather = cost.ring_allgather(l.param_bytes(), world, bw);
                let fp_hide = cost.layer_fp(l, cfg.batch);
                let bp_hide = cost.layer_bp(l, cfg.batch);
                comm_time += gather.saturating_sub(fp_hide) + gather.saturating_sub(bp_hide);
            }
        }
        // Sharded on-GPU optimizer (1/w of the parameters).
        let opt = SimTime::from_secs_f64(
            cfg.total_params() as f64 / world as f64 * cal::ADAM_BYTES_PER_PARAM
                / (platform.gpu.mem_bw * cal::GPU_ADAM_BW_FRACTION),
        );

        let iter_time = compute + machinery + comm_time + opt;
        let secs = iter_time.as_secs_f64();
        let report = IterationReport {
            method: self.name().into(),
            cfg: *cfg,
            iter_time,
            throughput: cfg.batch as f64 * world as f64 / secs,
            tflops: flops_per_sample(cfg) as f64 * cfg.batch as f64 * world as f64 / secs / 1e12,
            gpu_peak: self.gpu_usage(cfg, world),
            cpu_peak: 0,
            overlap: 0.0,
            gpu_util: (compute.as_secs_f64() / secs).min(1.0),
            timeline: stronghold_sim::Timeline::new(),
            window: 0,
        };
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_core::method::max_trainable_layers;

    fn a10() -> Platform {
        Platform::a10_cluster_8()
    }

    fn base_mp8() -> ModelConfig {
        ModelConfig::new(1, 5120, 16).with_mp(8)
    }

    #[test]
    fn fig6b_stronghold_mp_ceiling() {
        // Fig. 6b: STRONGHOLD reaches ~82.1B across the 8-node cluster.
        let best = max_trainable_layers(&StrongholdMP, &base_mp8(), &a10(), 3000).unwrap();
        let b = best.billions();
        assert!(
            (74.0..92.0).contains(&b),
            "STRONGHOLD MP ceiling {b:.1}B, paper 82.1B"
        );
    }

    #[test]
    fn fig6b_megatron_mp_ceiling() {
        // Fig. 6b: Megatron-LM at MP=8 lands around 8-14B.
        let best = max_trainable_layers(&MegatronMP, &base_mp8(), &a10(), 3000).unwrap();
        let b = best.billions();
        assert!((6.0..16.0).contains(&b), "Megatron MP ceiling {b:.1}B");
    }

    #[test]
    fn fig12_zero2_caps_near_3b() {
        // §VI-D2: the largest model ZeRO-2 supports (bs=1) is ~3B.
        let base = ModelConfig::new(1, 2560, 16).with_batch(1);
        let best = max_trainable_layers(&ZeroDP::stage2(), &base, &a10(), 400).unwrap();
        let b = best.billions();
        assert!((2.0..4.5).contains(&b), "ZeRO-2 ceiling {b:.1}B, paper ≈3B");
    }

    #[test]
    fn fig12_stronghold_dp_beats_zero() {
        // §VI-D2: STRONGHOLD-DP delivers >2.6x over the ZeRO baselines.
        let cfg = ModelConfig::new(37, 2560, 16).with_batch(1); // ~3B
        let p = a10();
        let sh = StrongholdDP.iteration(&cfg, &p).unwrap();
        let z2 = ZeroDP::stage2().iteration(&cfg, &p).unwrap();
        let z3 = ZeroDP::stage3().iteration(&cfg, &p).unwrap();
        assert!(
            sh.throughput > z2.throughput,
            "SH {} vs Z2 {}",
            sh.throughput,
            z2.throughput
        );
        assert!(
            z2.throughput > z3.throughput,
            "Z2 {} vs Z3 {}",
            z2.throughput,
            z3.throughput
        );
        let gain = sh.throughput / z3.throughput;
        assert!(
            gain > 1.8,
            "SH/Z3 = {gain:.2}, paper reports >2.6x over ZeRO"
        );
    }

    #[test]
    fn mp_comm_slows_iteration() {
        let cfg = ModelConfig::new(24, 5120, 16).with_mp(8);
        let p = a10();
        let mp = StrongholdMP.iteration(&cfg, &p).unwrap();
        let solo = Stronghold::new().iteration(&cfg, &p).unwrap();
        assert!(mp.iter_time > solo.iter_time);
    }
}
