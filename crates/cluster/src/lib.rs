//! Distributed training on the simulated A10 cluster (§V-A, §VI-A2,
//! §VI-D2).
//!
//! * [`comm`] — per-layer model-parallel and whole-model data-parallel
//!   collective costs over the cluster network.
//! * [`distributed`] — the distributed methods: STRONGHOLD under tensor
//!   model parallelism (Fig. 6b/7b), STRONGHOLD as pure data parallelism
//!   (the §III-F conversion, Fig. 12), Megatron-MP, and ZeRO-2/ZeRO-3.

pub mod comm;
pub mod distributed;

pub use distributed::{MegatronMP, StrongholdDP, StrongholdMP, ZeroDP};
