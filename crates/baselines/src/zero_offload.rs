//! ZeRO-Offload (Ren et al., ATC'21): static offload of optimizer state
//! (§V-C).
//!
//! Memory: the full parameter set (and transient gradients) stays in device
//! memory — 4 B/param FP32 — which caps the trainable size at ≈6 B on a
//! 32 GB V100 (Fig. 6a); Adam moments (12 B/param with gradients) live on
//! the host. Iteration: FP/BP run at full speed and per-layer gradient
//! transfers overlap BP, but the *fused single CPU optimizer* runs after BP
//! and the updated parameters return over PCIe before the next iteration —
//! the serialization the paper blames for ZeRO's <57%-of-Megatron
//! throughput (Fig. 8a).

use stronghold_core::error::{Result, RuntimeError};
use stronghold_core::method::{flops_per_sample, IterationReport, TrainingMethod};
use stronghold_model::config::ModelConfig;
use stronghold_model::layer::LayerKind;
use stronghold_sim::calibration as cal;
use stronghold_sim::cost::CopyKind;
use stronghold_sim::{CostModel, FifoResource, Lane, Platform, SimTime, Timeline};

use crate::common::{gpu_capacity, layers_of, residual_gpu_bytes};

/// The ZeRO-Offload baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct ZeroOffload;

impl ZeroOffload {
    /// Device bytes: parameters + a two-layer gradient staging buffer +
    /// residual state.
    pub fn gpu_usage(cfg: &ModelConfig) -> u64 {
        let layers = layers_of(cfg);
        let params: u64 = layers.iter().map(|l| l.param_bytes()).sum();
        let max_grad = layers.iter().map(|l| l.grad_bytes()).max().unwrap_or(0);
        params + 2 * max_grad + residual_gpu_bytes(cfg)
    }

    /// Host bytes: gradients + Adam moments (12 B/param).
    pub fn cpu_usage(cfg: &ModelConfig) -> u64 {
        let layers = layers_of(cfg);
        layers
            .iter()
            .map(|l| l.grad_bytes() + l.opt_state_bytes())
            .sum()
    }
}

impl TrainingMethod for ZeroOffload {
    fn name(&self) -> &'static str {
        "ZeRO-Offload"
    }

    fn feasible(&self, cfg: &ModelConfig, platform: &Platform) -> bool {
        Self::gpu_usage(cfg) <= gpu_capacity(platform)
            && Self::cpu_usage(cfg)
                <= (platform.cpu.ram_bytes as f64 * cal::HOST_USABLE_FRACTION) as u64
    }

    fn iteration(&self, cfg: &ModelConfig, platform: &Platform) -> Result<IterationReport> {
        if !self.feasible(cfg, platform) {
            return Err(RuntimeError::Infeasible {
                method: "ZeRO-Offload".into(),
                reason: "exceeds device or host memory".into(),
            });
        }
        let cost = CostModel::new(*platform);
        let layers = layers_of(cfg);
        let mut compute = FifoResource::new("compute");
        let mut d2h = FifoResource::new("d2h");
        let mut h2d = FifoResource::new("h2d");
        let mut tl = Timeline::new();

        // FP: parameters are resident, pure compute.
        let mut prev = SimTime::ZERO;
        for (i, l) in layers.iter().enumerate() {
            let (s, e) = compute.schedule(prev, cost.layer_fp(l, cfg.batch));
            tl.record(Lane::Compute(0), format!("fp L{i}"), s, e);
            prev = e;
        }
        // BP: per-layer gradient offload overlapping the remaining backward.
        let mut last_grad_out = SimTime::ZERO;
        for (i, l) in layers.iter().enumerate().rev() {
            let (s, e) = compute.schedule(prev, cost.layer_bp(l, cfg.batch));
            tl.record(Lane::Compute(0), format!("bp L{i}"), s, e);
            prev = e;
            if l.kind == LayerKind::Block {
                let (s2, e2) = d2h.schedule(e, cost.d2h(l.grad_bytes(), CopyKind::PinnedBulk));
                tl.record(Lane::CopyOut, format!("d2h g L{i}"), s2, e2);
                last_grad_out = last_grad_out.max(e2);
            }
        }
        // Fused single CPU optimizer over all offloaded parameters, after BP.
        let total_params: u64 = layers.iter().map(|l| l.params).sum();
        let opt_secs = total_params as f64 * cal::ADAM_BYTES_PER_PARAM / cal::ZERO_CPU_ADAM_BW;
        let opt_start = prev.max(last_grad_out);
        let opt_end = opt_start + SimTime::from_secs_f64(opt_secs);
        tl.record(Lane::CpuOptim, "fused adam", opt_start, opt_end);
        // Updated parameters return to the device before the next iteration.
        let param_bytes: u64 = layers.iter().map(|l| l.param_bytes()).sum();
        let (s, e) = h2d.schedule(opt_end, cost.h2d(param_bytes, CopyKind::PinnedBulk));
        tl.record(Lane::CopyIn, "params back", s, e);

        tl.assert_lanes_serialized();
        let report = IterationReport {
            method: self.name().into(),
            cfg: *cfg,
            iter_time: tl.makespan(),
            throughput: 0.0,
            tflops: 0.0,
            gpu_peak: Self::gpu_usage(cfg),
            cpu_peak: Self::cpu_usage(cfg),
            overlap: tl.overlap_fraction(),
            gpu_util: tl.utilization(Lane::Compute(0)),
            timeline: tl,
            window: 0,
        };
        Ok(report.finish(flops_per_sample(cfg), cfg.batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_core::method::max_trainable_layers;
    use stronghold_model::config::common_1_7b;

    #[test]
    fn max_size_around_6b_on_v100() {
        // Fig. 6a: ZeRO-Offload ≈ 6B on the 32 GB V100.
        let best = max_trainable_layers(
            &ZeroOffload,
            &ModelConfig::new(1, 2560, 16),
            &Platform::v100_server(),
            400,
        )
        .unwrap();
        let b = best.billions();
        assert!(
            (4.5..7.5).contains(&b),
            "ZeRO-Offload ceiling {b:.2}B, paper ≈6B"
        );
    }

    #[test]
    fn below_megatron_but_above_l2l() {
        let v100 = Platform::v100_server();
        let cfg = common_1_7b();
        let zo = ZeroOffload.iteration(&cfg, &v100).unwrap();
        let mega = crate::megatron::MegatronLM.iteration(&cfg, &v100).unwrap();
        let l2l = crate::l2l::L2L.iteration(&cfg, &v100).unwrap();
        let ratio = zo.throughput / mega.throughput;
        assert!(
            (0.35..0.75).contains(&ratio),
            "ZO/Megatron = {ratio:.3}, paper <0.57"
        );
        assert!(zo.throughput > l2l.throughput, "ZO must beat L2L");
    }

    #[test]
    fn cpu_side_holds_12_bytes_per_param() {
        let cfg = common_1_7b();
        let per_param = ZeroOffload::cpu_usage(&cfg) as f64 / cfg.total_params() as f64;
        assert!((11.9..12.1).contains(&per_param));
    }
}
