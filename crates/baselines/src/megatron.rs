//! Megatron-LM (v2.6): NVIDIA's fully GPU-resident reference (§V-C).
//!
//! Memory: the entire model state (parameters, gradients, Adam moments —
//! 16 B/param in FP32) plus residual state lives in device memory, which is
//! why it tops out at 1.7 B parameters on a 32 GB V100 (Fig. 6a). Iteration:
//! pure compute plus a fast fused on-device optimizer — the throughput
//! reference every offloading method is measured against (Figs. 1b, 8a).

use stronghold_core::error::{Result, RuntimeError};
use stronghold_core::method::{flops_per_sample, IterationReport, TrainingMethod};
use stronghold_model::config::ModelConfig;
use stronghold_model::memory;
use stronghold_sim::{CostModel, FifoResource, Lane, Platform, SimTime, Timeline};

use crate::common::{gpu_capacity, layers_of, residual_gpu_bytes, schedule_fp_bp};

/// The Megatron-LM baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct MegatronLM;

impl MegatronLM {
    /// Device bytes Megatron-LM needs for a configuration.
    pub fn gpu_usage(cfg: &ModelConfig) -> u64 {
        memory::model_state_bytes(cfg) + residual_gpu_bytes(cfg)
    }
}

impl TrainingMethod for MegatronLM {
    fn name(&self) -> &'static str {
        "Megatron-LM"
    }

    fn feasible(&self, cfg: &ModelConfig, platform: &Platform) -> bool {
        Self::gpu_usage(cfg) <= gpu_capacity(platform)
    }

    fn iteration(&self, cfg: &ModelConfig, platform: &Platform) -> Result<IterationReport> {
        if !self.feasible(cfg, platform) {
            return Err(RuntimeError::Infeasible {
                method: "Megatron-LM".into(),
                reason: "model state exceeds device memory".into(),
            });
        }
        let cost = CostModel::new(*platform);
        let layers = layers_of(cfg);
        let mut compute = FifoResource::new("compute");
        let mut tl = Timeline::new();
        let bp_done = schedule_fp_bp(&layers, &cost, cfg.batch, &mut compute, &mut tl);
        // Fused on-GPU Adam across all layers.
        let mut end = bp_done;
        for (i, l) in layers.iter().enumerate() {
            let (s, e) = compute.schedule(SimTime::ZERO, cost.gpu_optim(l));
            tl.record(Lane::Compute(0), format!("gopt L{i}"), s, e);
            end = e;
        }
        tl.assert_lanes_serialized();
        let report = IterationReport {
            method: self.name().into(),
            cfg: *cfg,
            iter_time: end,
            throughput: 0.0,
            tflops: 0.0,
            gpu_peak: Self::gpu_usage(cfg),
            cpu_peak: 0,
            overlap: 1.0,
            gpu_util: tl.utilization(Lane::Compute(0)),
            timeline: tl,
            window: 0,
        };
        Ok(report.finish(flops_per_sample(cfg), cfg.batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_core::method::max_trainable_layers;
    use stronghold_model::config::common_1_7b;

    #[test]
    fn trains_1_7b_but_not_2_5b_on_v100() {
        let v100 = Platform::v100_server();
        assert!(MegatronLM.feasible(&common_1_7b(), &v100));
        let big = ModelConfig::new(30, 2560, 16);
        assert!(!MegatronLM.feasible(&big, &v100));
    }

    #[test]
    fn max_size_matches_paper_fig6a() {
        // Fig. 6a: Megatron-LM supports up to ~1.7B on the 32 GB V100.
        let best = max_trainable_layers(
            &MegatronLM,
            &ModelConfig::new(1, 2560, 16),
            &Platform::v100_server(),
            100,
        )
        .unwrap();
        let b = best.billions();
        assert!(
            (1.4..2.2).contains(&b),
            "Megatron ceiling {b:.2}B, paper 1.7B"
        );
    }

    #[test]
    fn iteration_reports_throughput() {
        let r = MegatronLM
            .iteration(&common_1_7b(), &Platform::v100_server())
            .unwrap();
        assert!(r.throughput > 0.0);
        assert!(r.gpu_util > 0.99, "compute-only method must be fully busy");
    }

    #[test]
    fn infeasible_iteration_errors() {
        let big = ModelConfig::new(100, 2560, 16);
        assert!(MegatronLM
            .iteration(&big, &Platform::v100_server())
            .is_err());
    }
}
