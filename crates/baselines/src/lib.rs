//! The paper's competing baselines (§V-C), each re-implemented from its
//! published description as a memory-placement policy plus an iteration
//! schedule priced on the shared cost model:
//!
//! * [`megatron::MegatronLM`] — everything resident on the GPU; the
//!   trainable-size reference and throughput reference (Megatron-LM v2.6).
//! * [`l2l::L2L`] — one transformer layer on the GPU at a time, fully
//!   synchronous pageable transfers, optimizer state kept on-device.
//! * [`zero_offload::ZeroOffload`] — parameters/gradients on the GPU,
//!   optimizer states + fused CPU Adam on the host.
//! * [`zero_infinity::ZeroInfinity`] — fine-grained partitioning across
//!   GPU/CPU (and optionally NVMe) with per-layer gather/refactor overhead.
//! * [`pytorch_infer::PlainInference`] — a plain framework forward pass
//!   (the Fig. 13 comparator that OOMs beyond device memory).
//!
//! All implement [`stronghold_core::TrainingMethod`], so the harnesses can
//! sweep them interchangeably with STRONGHOLD.

pub mod common;
pub mod l2l;
pub mod megatron;
pub mod pytorch_infer;
pub mod zero_infinity;
pub mod zero_offload;

pub use l2l::L2L;
pub use megatron::MegatronLM;
pub use pytorch_infer::{PlainInference, StaticBatchConfig, StaticBatchGenerator};
pub use zero_infinity::ZeroInfinity;
pub use zero_offload::ZeroOffload;

use stronghold_core::TrainingMethod;

/// All training baselines plus STRONGHOLD, in the order the paper's figures
/// list them.
pub fn all_methods() -> Vec<Box<dyn TrainingMethod>> {
    vec![
        Box::new(MegatronLM),
        Box::new(L2L),
        Box::new(ZeroOffload),
        Box::new(ZeroInfinity::cpu_only()),
        Box::new(stronghold_core::Stronghold::new()),
    ]
}
