//! L2L (layer-to-layer, Pudipeddi et al.): one transformer layer on the GPU
//! at a time (§V-C).
//!
//! Memory: optimizer state stays on the device (in half precision — the
//! calibrated 4 B/param of `L2L_GPU_OPT_BYTES_PER_PARAM`), so the trainable
//! size is still GPU-bound at ≈6 B on a 32 GB V100 (Fig. 6a). Iteration:
//! fully *synchronous* — every layer's parameters move over the pageable
//! per-tensor copy path before its compute may start, and the GPU stalls on
//! each transfer, which is why L2L lands at ~22% of Megatron-LM's throughput
//! on the common 1.7 B model (Fig. 8a).

use stronghold_core::error::{Result, RuntimeError};
use stronghold_core::method::{flops_per_sample, IterationReport, TrainingMethod};
use stronghold_model::config::ModelConfig;
use stronghold_model::layer::LayerKind;
use stronghold_model::memory;
use stronghold_sim::calibration as cal;
use stronghold_sim::cost::CopyKind;
use stronghold_sim::{CostModel, FifoResource, Lane, Platform, SimTime, Timeline};

use crate::common::{gpu_capacity, layers_of, residual_gpu_bytes};

/// The L2L baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct L2L;

impl L2L {
    /// Device bytes: on-device optimizer state for the whole model, two
    /// layer-sized parameter buffers, and residual state.
    pub fn gpu_usage(cfg: &ModelConfig) -> u64 {
        let layers = layers_of(cfg);
        let opt: u64 = layers
            .iter()
            .map(|l| (l.params as f64 * cal::L2L_GPU_OPT_BYTES_PER_PARAM) as u64)
            .sum();
        let max_layer = layers
            .iter()
            .map(|l| l.param_bytes() + l.grad_bytes())
            .max()
            .unwrap_or(0);
        opt + 2 * max_layer + residual_gpu_bytes(cfg)
    }

    /// Host bytes: the parameter image L2L pages layers from.
    pub fn cpu_usage(cfg: &ModelConfig) -> u64 {
        memory::param_bytes(cfg)
    }
}

impl TrainingMethod for L2L {
    fn name(&self) -> &'static str {
        "L2L"
    }

    fn feasible(&self, cfg: &ModelConfig, platform: &Platform) -> bool {
        Self::gpu_usage(cfg) <= gpu_capacity(platform)
            && Self::cpu_usage(cfg)
                <= (platform.cpu.ram_bytes as f64 * cal::HOST_USABLE_FRACTION) as u64
    }

    fn iteration(&self, cfg: &ModelConfig, platform: &Platform) -> Result<IterationReport> {
        if !self.feasible(cfg, platform) {
            return Err(RuntimeError::Infeasible {
                method: "L2L".into(),
                reason: "exceeds device or host memory".into(),
            });
        }
        let cost = CostModel::new(*platform);
        let layers = layers_of(cfg);
        let mut compute = FifoResource::new("compute");
        let mut h2d = FifoResource::new("h2d");
        let mut d2h = FifoResource::new("d2h");
        let mut tl = Timeline::new();
        let sync = SimTime::from_micros(cal::L2L_LAYER_SYNC_US);
        let mut prev = SimTime::ZERO;

        // FP: synchronous copy-in then compute, layer by layer.
        for (i, l) in layers.iter().enumerate() {
            let mut ready = prev;
            if l.kind == LayerKind::Block {
                let (s, e) = h2d.schedule(
                    prev + sync,
                    cost.h2d(l.param_bytes(), CopyKind::PageableSync),
                );
                tl.record(Lane::CopyIn, format!("h2d L{i}"), s, e);
                ready = e; // GPU stalls until the copy lands
            }
            let (s, e) = compute.schedule(ready, cost.layer_fp(l, cfg.batch));
            tl.record(Lane::Compute(0), format!("fp L{i}"), s, e);
            prev = e;
        }
        // BP: copy-in, compute, on-device optimizer, write updated params out.
        for (i, l) in layers.iter().enumerate().rev() {
            let mut ready = prev;
            if l.kind == LayerKind::Block {
                let (s, e) = h2d.schedule(
                    prev + sync,
                    cost.h2d(l.param_bytes(), CopyKind::PageableSync),
                );
                tl.record(Lane::CopyIn, format!("h2d' L{i}"), s, e);
                ready = e;
            }
            let (s, e) = compute.schedule(ready, cost.layer_bp(l, cfg.batch));
            tl.record(Lane::Compute(0), format!("bp L{i}"), s, e);
            let (s2, e2) = compute.schedule(e, cost.gpu_optim(l));
            tl.record(Lane::Compute(0), format!("gopt L{i}"), s2, e2);
            prev = e2;
            if l.kind == LayerKind::Block {
                let (s3, e3) =
                    d2h.schedule(e2 + sync, cost.d2h(l.param_bytes(), CopyKind::PageableSync));
                tl.record(Lane::CopyOut, format!("d2h L{i}"), s3, e3);
                prev = e3; // fully synchronous: compute waits for the writeback
            }
        }

        tl.assert_lanes_serialized();
        let report = IterationReport {
            method: self.name().into(),
            cfg: *cfg,
            iter_time: tl.makespan(),
            throughput: 0.0,
            tflops: 0.0,
            gpu_peak: Self::gpu_usage(cfg),
            cpu_peak: Self::cpu_usage(cfg),
            overlap: tl.overlap_fraction(),
            gpu_util: tl.utilization(Lane::Compute(0)),
            timeline: tl,
            window: 1,
        };
        Ok(report.finish(flops_per_sample(cfg), cfg.batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_core::method::max_trainable_layers;
    use stronghold_model::config::common_1_7b;

    #[test]
    fn max_size_around_6b_on_v100() {
        // Fig. 6a: L2L ≈ 6B on the 32 GB V100 (3.5x over Megatron-LM).
        let best = max_trainable_layers(
            &L2L,
            &ModelConfig::new(1, 2560, 16),
            &Platform::v100_server(),
            400,
        )
        .unwrap();
        let b = best.billions();
        assert!((4.5..7.5).contains(&b), "L2L ceiling {b:.2}B, paper ≈6B");
    }

    #[test]
    fn much_slower_than_compute_only() {
        let v100 = Platform::v100_server();
        let r = L2L.iteration(&common_1_7b(), &v100).unwrap();
        let mega = crate::megatron::MegatronLM
            .iteration(&common_1_7b(), &v100)
            .unwrap();
        let ratio = r.throughput / mega.throughput;
        // Fig. 8a: 22.2% of Megatron-LM; accept a generous band.
        assert!((0.1..0.45).contains(&ratio), "L2L/Megatron = {ratio:.3}");
    }

    #[test]
    fn overlap_is_poor_by_design() {
        let r = L2L
            .iteration(&common_1_7b(), &Platform::v100_server())
            .unwrap();
        assert!(
            r.overlap < 0.3,
            "L2L must expose its transfers, got {}",
            r.overlap
        );
    }
}
