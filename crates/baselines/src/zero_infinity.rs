//! ZeRO-Infinity (Rajbhandari et al., SC'21): fine-grained partitioning
//! across GPU, CPU and optionally NVMe (§V-C).
//!
//! Memory model:
//! * *CPU-RAM mode* — parameters stream through the device per layer, but
//!   the runtime model refactoring keeps an extra per-parameter device
//!   footprint (`ZINF_GPU_BYTES_PER_PARAM` of the local shard; anchors the
//!   20.6 B V100 ceiling of Fig. 6a), and the host image carries fp16
//!   shards + fp32 master + staging (`ZINF_CPU_BYTES_PER_PARAM`; anchors
//!   56.9 B on the cluster, Fig. 6b). Activations are offloaded (a
//!   ZeRO-Infinity feature), so only transient workspace stays on device.
//! * *NVMe mode* — the state image is demand-paged from disk with small,
//!   scattered I/O (`ZINF_NVME_SMALL_IO_DERATE`), and the fused optimizer
//!   pages its 28 B/param of state through the same channel after BP: the
//!   source of the paper's "up to 29.2×" NVMe slowdown and STRONGHOLD's
//!   ≥8× advantage in Fig. 10.

use stronghold_core::error::{Result, RuntimeError};
use stronghold_core::method::{flops_per_sample, IterationReport, TrainingMethod};
use stronghold_model::config::ModelConfig;
use stronghold_model::layer::LayerKind;
use stronghold_model::memory;
use stronghold_sim::calibration as cal;
use stronghold_sim::cost::CopyKind;
use stronghold_sim::{CostModel, FifoResource, Lane, Platform, SimTime, Timeline};

use crate::common::{gpu_capacity, layers_of};

/// The ZeRO-Infinity baseline.
#[derive(Clone, Copy, Debug)]
pub struct ZeroInfinity {
    /// Whether the NVMe tier is enabled (§VI-C3 / Fig. 10).
    pub use_nvme: bool,
}

impl ZeroInfinity {
    /// CPU-RAM-only configuration (the paper's default comparison).
    pub fn cpu_only() -> Self {
        ZeroInfinity { use_nvme: false }
    }

    /// NVMe-backed configuration.
    pub fn with_nvme() -> Self {
        ZeroInfinity { use_nvme: true }
    }

    /// Device bytes. Activations are offloaded, so residual state is
    /// transient workspace only.
    pub fn gpu_usage(&self, cfg: &ModelConfig) -> u64 {
        let layers = layers_of(cfg);
        let params: u64 = layers.iter().map(|l| l.params).sum();
        let max_layer = layers.iter().map(|l| l.bp_state_bytes()).max().unwrap_or(0);
        let ws = memory::peak_workspace_bytes(cfg);
        let refactor = if self.use_nvme {
            // Demand paging bounds the resident partition to a staging pool.
            4 * (1u64 << 30)
        } else {
            (params as f64 * cal::ZINF_GPU_BYTES_PER_PARAM) as u64
        };
        refactor + 2 * max_layer + ws
    }

    /// Host bytes.
    pub fn cpu_usage(&self, cfg: &ModelConfig) -> u64 {
        let params: u64 = layers_of(cfg).iter().map(|l| l.params).sum();
        if self.use_nvme {
            // Staging cache only; the state image lives on disk.
            64 * (1 << 30)
        } else {
            (params as f64 * cal::ZINF_CPU_BYTES_PER_PARAM) as u64
        }
    }

    /// NVMe bytes (parameter image, as for STRONGHOLD's tier).
    pub fn nvme_usage(&self, cfg: &ModelConfig) -> u64 {
        if self.use_nvme {
            layers_of(cfg).iter().map(|l| l.param_bytes()).sum()
        } else {
            0
        }
    }

    fn host_capacity(platform: &Platform) -> u64 {
        if platform.nodes > 1 {
            (platform.cpu.ram_bytes as f64 * cal::CLUSTER_PINNED_FRACTION) as u64
        } else {
            (platform.cpu.ram_bytes as f64 * cal::HOST_USABLE_FRACTION) as u64
        }
    }

    fn nvme_read_time(&self, platform: &Platform, bytes: u64) -> SimTime {
        let n = platform.nvme.expect("nvme");
        SimTime::from_secs_f64(bytes as f64 / (n.read_bw * cal::ZINF_NVME_SMALL_IO_DERATE))
    }

    fn nvme_write_time(&self, platform: &Platform, bytes: u64) -> SimTime {
        let n = platform.nvme.expect("nvme");
        SimTime::from_secs_f64(bytes as f64 / (n.write_bw * cal::ZINF_NVME_SMALL_IO_DERATE))
    }

    /// Per-iteration NVMe traffic of the paging model as `(file→host,
    /// host→file)` bytes: every block's parameters page in once for FP and
    /// once for BP, the fused optimizer reads 16 B and writes 12 B per
    /// parameter. `(0, 0)` in CPU-RAM mode.
    pub fn spill_bytes_per_iteration(&self, cfg: &ModelConfig) -> (u64, u64) {
        if !self.use_nvme {
            return (0, 0);
        }
        let layers = layers_of(cfg);
        let total_params: u64 = layers.iter().map(|l| l.params).sum();
        let fetches: u64 = layers
            .iter()
            .filter(|l| l.kind == LayerKind::Block)
            .map(|l| 2 * l.param_bytes())
            .sum();
        (fetches + total_params * 16, total_params * 12)
    }

    /// Records one iteration's paging traffic into the same
    /// `spill.f2h_bytes` / `spill.h2f_bytes` counters STRONGHOLD's file
    /// tier meters, so baseline and STRONGHOLD runs report NVMe traffic
    /// under one telemetry contract.
    pub fn record_spill_counters(&self, cfg: &ModelConfig, tel: &stronghold_core::Telemetry) {
        let (f2h, h2f) = self.spill_bytes_per_iteration(cfg);
        tel.counter("spill.f2h_bytes").add(f2h);
        tel.counter("spill.h2f_bytes").add(h2f);
    }
}

impl TrainingMethod for ZeroInfinity {
    fn name(&self) -> &'static str {
        if self.use_nvme {
            "ZeRO-Infinity (NVMe)"
        } else {
            "ZeRO-Infinity"
        }
    }

    fn feasible(&self, cfg: &ModelConfig, platform: &Platform) -> bool {
        if self.gpu_usage(cfg) > gpu_capacity(platform) {
            return false;
        }
        if self.cpu_usage(cfg) > Self::host_capacity(platform) {
            return false;
        }
        match platform.nvme {
            Some(n) => self.nvme_usage(cfg) <= n.capacity,
            None => self.nvme_usage(cfg) == 0,
        }
    }

    fn iteration(&self, cfg: &ModelConfig, platform: &Platform) -> Result<IterationReport> {
        if !self.feasible(cfg, platform) {
            return Err(RuntimeError::Infeasible {
                method: "ZeRO-Infinity".into(),
                reason: "exceeds memory hierarchy capacity".into(),
            });
        }
        let cost = CostModel::new(*platform);
        let layers = layers_of(cfg);
        let mut compute = FifoResource::new("compute");
        let mut h2d = FifoResource::new("h2d");
        let mut d2h = FifoResource::new("d2h");
        let mut nvme_ch = FifoResource::new("nvme");
        let mut tl = Timeline::new();
        let sync = SimTime::from_micros(cal::ZINF_LAYER_SYNC_US);
        let zero = SimTime::ZERO;

        // Depth-1 prefetch: layer i's gather may start once layer i-1's
        // compute starts; with NVMe the (derated) disk read precedes the
        // PCIe hop on the same chain.
        let fetch = |prev_compute: SimTime,
                     bytes: u64,
                     label: String,
                     tl: &mut Timeline,
                     h2d: &mut FifoResource,
                     nvme_ch: &mut FifoResource| {
            let issue = prev_compute + sync;
            let ready = if self.use_nvme {
                let (s, e) = nvme_ch.schedule(issue, self.nvme_read_time(platform, bytes));
                tl.record(Lane::Nvme, format!("nv {label}"), s, e);
                e
            } else {
                issue
            };
            let (s, e) = h2d.schedule(ready, cost.h2d(bytes, CopyKind::PinnedBulk));
            tl.record(Lane::CopyIn, label, s, e);
            e
        };

        let mut prev_compute = zero;
        for (i, l) in layers.iter().enumerate() {
            let mut ready = prev_compute;
            if l.kind == LayerKind::Block {
                let e = fetch(
                    prev_compute,
                    l.param_bytes(),
                    format!("h2d L{i}"),
                    &mut tl,
                    &mut h2d,
                    &mut nvme_ch,
                );
                ready = ready.max(e);
            }
            let (s, e) = compute.schedule(ready, cost.layer_fp(l, cfg.batch));
            tl.record(Lane::Compute(0), format!("fp L{i}"), s, e);
            prev_compute = e;
        }
        let mut last_grad = zero;
        for (i, l) in layers.iter().enumerate().rev() {
            let mut ready = prev_compute;
            if l.kind == LayerKind::Block {
                let e = fetch(
                    prev_compute,
                    l.param_bytes(),
                    format!("h2d' L{i}"),
                    &mut tl,
                    &mut h2d,
                    &mut nvme_ch,
                );
                ready = ready.max(e);
            }
            let (s, e) = compute.schedule(ready, cost.layer_bp(l, cfg.batch));
            tl.record(Lane::Compute(0), format!("bp L{i}"), s, e);
            prev_compute = e;
            if l.kind == LayerKind::Block {
                let (s2, e2) = d2h.schedule(e, cost.d2h(l.grad_bytes(), CopyKind::PinnedBulk));
                tl.record(Lane::CopyOut, format!("d2h g L{i}"), s2, e2);
                last_grad = last_grad.max(e2);
            }
        }

        // Fused post-BP CPU optimizer. With NVMe the optimizer state pages
        // through the (derated) disk channel: 16 B/param read, 12 B written.
        let total_params: u64 = layers.iter().map(|l| l.params).sum();
        let opt_start = prev_compute.max(last_grad);
        let opt_end = if self.use_nvme {
            let rd = self.nvme_read_time(platform, total_params * 16);
            let wr = self.nvme_write_time(platform, total_params * 12);
            let (s, e) = nvme_ch.schedule(opt_start, rd + wr);
            tl.record(Lane::Nvme, "opt paging", s, e);
            e
        } else {
            let secs = total_params as f64 * cal::ADAM_BYTES_PER_PARAM / cal::ZERO_CPU_ADAM_BW;
            opt_start + SimTime::from_secs_f64(secs)
        };
        tl.record(Lane::CpuOptim, "fused adam", opt_start, opt_end);

        tl.assert_lanes_serialized();
        let report = IterationReport {
            method: self.name().into(),
            cfg: *cfg,
            iter_time: tl.makespan(),
            throughput: 0.0,
            tflops: 0.0,
            gpu_peak: self.gpu_usage(cfg),
            cpu_peak: self.cpu_usage(cfg),
            overlap: tl.overlap_fraction(),
            gpu_util: tl.utilization(Lane::Compute(0)),
            timeline: tl,
            window: 1,
        };
        Ok(report.finish(flops_per_sample(cfg), cfg.batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_core::method::max_trainable_layers;
    use stronghold_model::config::common_1_7b;

    #[test]
    fn max_size_around_20b_on_v100() {
        // Fig. 6a: ZeRO-Infinity (CPU RAM only) ≈ 20.6B on the 32 GB V100.
        let best = max_trainable_layers(
            &ZeroInfinity::cpu_only(),
            &ModelConfig::new(1, 2560, 16),
            &Platform::v100_server(),
            1000,
        )
        .unwrap();
        let b = best.billions();
        assert!(
            (17.0..24.0).contains(&b),
            "ZeRO-Infinity ceiling {b:.2}B, paper 20.6B"
        );
    }

    #[test]
    fn nvme_tier_extends_toward_half_trillion() {
        // Fig. 10: with NVMe the trainable size reaches ~0.5T.
        let best = max_trainable_layers(
            &ZeroInfinity::with_nvme(),
            &ModelConfig::new(1, 2560, 16),
            &Platform::v100_server(),
            9000,
        )
        .unwrap();
        let b = best.billions();
        assert!(b > 300.0, "NVMe ceiling {b:.1}B");
    }

    #[test]
    fn cpu_only_throughput_below_megatron() {
        let v100 = Platform::v100_server();
        let cfg = common_1_7b();
        let zi = ZeroInfinity::cpu_only().iteration(&cfg, &v100).unwrap();
        let mega = crate::megatron::MegatronLM.iteration(&cfg, &v100).unwrap();
        let ratio = zi.throughput / mega.throughput;
        assert!(
            (0.3..0.7).contains(&ratio),
            "ZI/Megatron = {ratio:.3}, paper <0.57"
        );
    }

    #[test]
    fn spill_counters_match_the_paging_model() {
        use stronghold_core::Telemetry;
        let cfg = common_1_7b();
        let zi = ZeroInfinity::with_nvme();
        let layers = layers_of(&cfg);
        let total_params: u64 = layers.iter().map(|l| l.params).sum();
        let block_bytes: u64 = layers
            .iter()
            .filter(|l| l.kind == LayerKind::Block)
            .map(|l| l.param_bytes())
            .sum();
        let (f2h, h2f) = zi.spill_bytes_per_iteration(&cfg);
        assert_eq!(f2h, 2 * block_bytes + 16 * total_params);
        assert_eq!(h2f, 12 * total_params);
        assert_eq!(
            ZeroInfinity::cpu_only().spill_bytes_per_iteration(&cfg),
            (0, 0),
            "CPU-RAM mode pages nothing"
        );
        // Two iterations accumulate under the PR 9 tier's counter names.
        let tel = Telemetry::enabled();
        zi.record_spill_counters(&cfg, &tel);
        zi.record_spill_counters(&cfg, &tel);
        assert_eq!(tel.counter("spill.f2h_bytes").get(), 2 * f2h);
        assert_eq!(tel.counter("spill.h2f_bytes").get(), 2 * h2f);
    }

    #[test]
    fn nvme_mode_collapses_throughput() {
        // Intro: "up to 29.2x slowdown when NVMe is used".
        let v100 = Platform::v100_server();
        let cfg = common_1_7b();
        let cpu = ZeroInfinity::cpu_only().iteration(&cfg, &v100).unwrap();
        let nvme = ZeroInfinity::with_nvme().iteration(&cfg, &v100).unwrap();
        let slowdown = nvme.iter_time.as_secs_f64() / cpu.iter_time.as_secs_f64();
        assert!(
            (4.0..40.0).contains(&slowdown),
            "NVMe slowdown {slowdown:.1}x vs CPU mode"
        );
    }
}
