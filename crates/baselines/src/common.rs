//! Shared scheduling helpers for the baseline iteration simulators.

use stronghold_model::config::ModelConfig;
use stronghold_model::layer::{build_layers, LayerSpec};
use stronghold_model::memory;
use stronghold_sim::{CostModel, FifoResource, Lane, Platform, SimTime, Timeline};

/// The layer list of a configuration (embedding + blocks + head).
pub fn layers_of(cfg: &ModelConfig) -> Vec<LayerSpec> {
    build_layers(cfg)
}

/// Total activation-checkpoint + peak-workspace residency every training
/// method pays on the GPU.
pub fn residual_gpu_bytes(cfg: &ModelConfig) -> u64 {
    memory::activation_checkpoint_bytes(cfg) + memory::peak_workspace_bytes(cfg)
}

/// Usable GPU bytes on a platform.
pub fn gpu_capacity(platform: &Platform) -> u64 {
    memory::usable_device_bytes(platform.gpu.mem_bytes)
}

/// Schedules a plain compute-only FP+BP sweep on `compute`, recording into
/// `tl`. Returns the completion time of the last backward op.
pub fn schedule_fp_bp(
    layers: &[LayerSpec],
    cost: &CostModel,
    batch: usize,
    compute: &mut FifoResource,
    tl: &mut Timeline,
) -> SimTime {
    let mut end = SimTime::ZERO;
    for (i, l) in layers.iter().enumerate() {
        let (s, e) = compute.schedule(SimTime::ZERO, cost.layer_fp(l, batch));
        tl.record(Lane::Compute(0), format!("fp L{i}"), s, e);
        end = e;
    }
    for (i, l) in layers.iter().enumerate().rev() {
        let (s, e) = compute.schedule(SimTime::ZERO, cost.layer_bp(l, batch));
        tl.record(Lane::Compute(0), format!("bp L{i}"), s, e);
        end = e;
    }
    end
}

/// Per-layer activation-checkpoint bytes at a batch size.
pub fn ckpt_bytes(l: &LayerSpec, batch: usize) -> u64 {
    l.act_checkpoint_bytes * batch as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::common_1_7b;

    #[test]
    fn fp_bp_sweep_is_serial_sum() {
        let cfg = common_1_7b();
        let layers = layers_of(&cfg);
        let cost = CostModel::new(Platform::v100_server());
        let mut compute = FifoResource::new("c");
        let mut tl = Timeline::new();
        let end = schedule_fp_bp(&layers, &cost, cfg.batch, &mut compute, &mut tl);
        let manual: SimTime = layers.iter().fold(SimTime::ZERO, |a, l| {
            a + cost.layer_fp(l, cfg.batch) + cost.layer_bp(l, cfg.batch)
        });
        assert_eq!(end, manual);
        tl.assert_lanes_serialized();
    }

    #[test]
    fn residual_bytes_scale_with_batch() {
        let a = residual_gpu_bytes(&common_1_7b().with_batch(2));
        let b = residual_gpu_bytes(&common_1_7b().with_batch(8));
        assert!(b > 3 * a);
    }
}
