//! Plain-framework inference (the PyTorch comparator of Fig. 13).
//!
//! Two comparators live here:
//!
//! * [`PlainInference`] — the sim-priced forward pass that OOMs beyond
//!   device memory (the Fig. 13 crossover);
//! * [`StaticBatchGenerator`] — a *real* fully-resident generation loop
//!   with naive static batching: a batch is admitted, every slot computes
//!   every round until the batch's **longest** request finishes (padded
//!   compute), and the next batch waits for the full drain. It runs the
//!   exact same decode kernels as [`stronghold_core::serve::ServeEngine`],
//!   so it doubles as the bit-equality reference proving layer streaming
//!   does not change the math — and as the throughput baseline continuous
//!   batching is measured against.

use std::time::Instant;

use rand_chacha::ChaCha8Rng;
use stronghold_core::error::{Result, RuntimeError};
use stronghold_core::method::IterationReport;
use stronghold_core::serve::{sample, GenRequest, GenResult};
use stronghold_model::block::BlockDecodeScratch;
use stronghold_model::config::ModelConfig;
use stronghold_model::memory;
use stronghold_model::transformer::{HeadDecodeScratch, Transformer};
use stronghold_sim::{CostModel, FifoResource, Lane, Platform, SimTime, Timeline};
use stronghold_tensor::attention::KvCache;
use stronghold_tensor::init::seeded_rng;
use stronghold_tensor::Tensor;

use crate::common::{gpu_capacity, layers_of};

/// The plain inference baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlainInference;

impl PlainInference {
    /// Device bytes for FP-only serving: all parameters + workspace +
    /// hidden states.
    pub fn gpu_usage(cfg: &ModelConfig) -> u64 {
        let params: u64 = layers_of(cfg).iter().map(|l| l.param_bytes()).sum();
        params
            + memory::peak_workspace_bytes(cfg)
            + memory::boundary_activation_bytes(cfg) * cfg.batch as u64 * 2
    }

    /// Whether serving fits the device.
    pub fn feasible(cfg: &ModelConfig, platform: &Platform) -> bool {
        Self::gpu_usage(cfg) <= gpu_capacity(platform)
    }

    /// One forward pass over a batch.
    pub fn inference(cfg: &ModelConfig, platform: &Platform) -> Result<IterationReport> {
        if !Self::feasible(cfg, platform) {
            return Err(RuntimeError::Infeasible {
                method: "PyTorch".into(),
                reason: "parameters exceed device memory".into(),
            });
        }
        let cost = CostModel::new(*platform);
        let layers = layers_of(cfg);
        let mut compute = FifoResource::new("compute");
        let mut tl = Timeline::new();
        let mut prev = SimTime::ZERO;
        for (i, l) in layers.iter().enumerate() {
            let (s, e) = compute.schedule(prev, cost.layer_fp(l, cfg.batch));
            tl.record(Lane::Compute(0), format!("fp L{i}"), s, e);
            prev = e;
        }
        let fp_flops: u64 = layers.iter().map(|l| l.flops_fp).sum();
        let report = IterationReport {
            method: "PyTorch".into(),
            cfg: *cfg,
            iter_time: tl.makespan(),
            throughput: 0.0,
            tflops: 0.0,
            gpu_peak: Self::gpu_usage(cfg),
            cpu_peak: 0,
            overlap: 1.0,
            gpu_util: tl.utilization(Lane::Compute(0)),
            timeline: tl,
            window: 0,
        };
        Ok(report.finish(fp_flops, cfg.batch))
    }
}

/// Configuration of a [`StaticBatchGenerator`].
#[derive(Clone, Debug)]
pub struct StaticBatchConfig {
    /// Batch width: requests admitted together and drained together.
    pub slots: usize,
    /// Per-sequence token capacity; `0` means the model's trained context.
    pub max_seq: usize,
    /// Sampling temperature; `0.0` is greedy (see
    /// [`stronghold_core::serve::sample`]).
    pub temperature: f32,
}

impl Default for StaticBatchConfig {
    fn default() -> Self {
        StaticBatchConfig {
            slots: 2,
            max_seq: 0,
            temperature: 0.0,
        }
    }
}

/// Per-slot decode state: KV caches and workspaces, preallocated once.
struct StaticSlot {
    kv: Vec<KvCache>,
    ws: BlockDecodeScratch,
    head_ws: HeadDecodeScratch,
    x: Tensor,
    y: Tensor,
    logits: Tensor,
}

/// Naive static-batching generation over a fully-resident model.
///
/// The framework-default serving loop: requests are grouped into fixed
/// batches, every slot runs the forward pass every round (finished
/// sequences burn padded compute), and admission only happens when the
/// whole batch has drained. Because it calls the same batch-stable decode
/// kernels as the streaming engine, greedy token streams are bit-identical
/// to [`stronghold_core::serve::ServeEngine`] — only the schedule differs.
pub struct StaticBatchGenerator {
    model: Transformer,
    slots: Vec<StaticSlot>,
    max_seq: usize,
    temperature: f32,
}

impl StaticBatchGenerator {
    /// Builds a generator over a freshly initialized model.
    pub fn new(mcfg: ModelConfig, seed: u64, cfg: StaticBatchConfig) -> Self {
        Self::from_model(Transformer::new(mcfg, seed), cfg)
    }

    /// Builds a generator over an existing model (kept fully resident).
    pub fn from_model(model: Transformer, cfg: StaticBatchConfig) -> Self {
        let mcfg = model.cfg;
        assert!(cfg.slots > 0, "static batching: need at least one slot");
        let max_seq = if cfg.max_seq == 0 {
            mcfg.seq
        } else {
            cfg.max_seq.min(mcfg.seq)
        };
        let heads = mcfg.heads;
        let dh = mcfg.hidden / heads;
        let slots = (0..cfg.slots)
            .map(|_| StaticSlot {
                kv: (0..mcfg.layers)
                    .map(|_| KvCache::new(heads, dh, max_seq))
                    .collect(),
                ws: BlockDecodeScratch::new(),
                head_ws: HeadDecodeScratch::new(),
                x: Tensor::zeros([1]),
                y: Tensor::zeros([1]),
                logits: Tensor::zeros([1]),
            })
            .collect();
        StaticBatchGenerator {
            model,
            slots,
            max_seq,
            temperature: cfg.temperature,
        }
    }

    /// Total FP32 parameter bytes held resident on the device.
    pub fn param_bytes(&self) -> u64 {
        self.model.param_count() * 4
    }

    /// Runs a closed-system workload: all requests arrive up front, batches
    /// of `slots` drain strictly in FIFO order. Latency therefore includes
    /// the queueing delay behind earlier batches — the convoy effect the
    /// continuous engine exists to remove.
    pub fn generate(&mut self, reqs: Vec<GenRequest>) -> Vec<GenResult> {
        let clock = Instant::now();
        let mut out = Vec::with_capacity(reqs.len());
        for batch in reqs.chunks(self.slots.len()) {
            let batch_max_new = batch.iter().map(|r| r.max_new_tokens).max().unwrap_or(0);
            for r in batch {
                assert!(!r.prompt.is_empty(), "static batching: empty prompt");
                // Padded compute pushes up to the batch maximum into every
                // slot's cache, so capacity is checked against the batch.
                assert!(
                    r.prompt.len() + batch_max_new <= self.max_seq,
                    "static batching: batch needs {} tokens, slot capacity is {}",
                    r.prompt.len() + batch_max_new,
                    self.max_seq
                );
            }
            let submit_ns = clock.elapsed().as_nanos() as u64;
            let mut rngs: Vec<ChaCha8Rng> = batch.iter().map(|r| seeded_rng(r.seed)).collect();
            let mut pending: Vec<Vec<u32>> = batch.iter().map(|r| r.prompt.clone()).collect();
            let mut results: Vec<GenResult> = batch
                .iter()
                .map(|r| GenResult {
                    id: r.id,
                    prompt_len: r.prompt.len(),
                    tokens: Vec::with_capacity(r.max_new_tokens),
                    ttft_ns: 0,
                    latency_ns: 0,
                    rounds: 0,
                })
                .collect();
            for slot in self.slots.iter_mut().take(batch.len()) {
                for kv in slot.kv.iter_mut() {
                    kv.clear();
                }
            }
            // Padded rounds: round 0 is the batch prefill, every later
            // round decodes one token; ALL slots run ALL rounds until the
            // longest request finishes.
            for round in 0..batch_max_new {
                for (b, req) in batch.iter().enumerate() {
                    let slot = &mut self.slots[b];
                    let pos = slot.kv[0].len();
                    self.model.embed_at_into(&pending[b], pos, &mut slot.x);
                    for i in 0..slot.kv.len() {
                        self.model.block_forward_decode(
                            i,
                            &slot.x,
                            &mut slot.kv[i],
                            &mut slot.ws,
                            &mut slot.y,
                        );
                        std::mem::swap(&mut slot.x, &mut slot.y);
                    }
                    let res = &mut results[b];
                    if res.tokens.len() < req.max_new_tokens {
                        self.model.lm_logits_last_into(
                            &slot.x,
                            &mut slot.head_ws,
                            &mut slot.logits,
                        );
                        let tok = sample(slot.logits.data(), self.temperature, &mut rngs[b]);
                        res.tokens.push(tok);
                        res.rounds = round as u64 + 1;
                        let now = clock.elapsed().as_nanos() as u64;
                        if res.tokens.len() == 1 {
                            res.ttft_ns = now.saturating_sub(submit_ns);
                        }
                        if res.tokens.len() == req.max_new_tokens {
                            res.latency_ns = now.saturating_sub(submit_ns);
                        }
                        pending[b].clear();
                        pending[b].push(tok);
                    }
                    // A finished sequence keeps burning padded compute on
                    // its last token until the batch drains.
                }
            }
            out.append(&mut results);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::common_1_7b;

    #[test]
    fn serves_small_models() {
        let r = PlainInference::inference(&common_1_7b(), &Platform::v100_server()).unwrap();
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn ooms_on_large_models() {
        // ~23.7B parameters: 95 GB of FP32 weights cannot serve on 32 GB.
        let big = ModelConfig::new(300, 2560, 16);
        assert!(!PlainInference::feasible(&big, &Platform::v100_server()));
        assert!(PlainInference::inference(&big, &Platform::v100_server()).is_err());
    }

    #[test]
    fn stronghold_inference_survives_where_pytorch_ooms() {
        // The Fig. 13 crossover.
        let big = ModelConfig::new(300, 2560, 16);
        let v100 = Platform::v100_server();
        assert!(!PlainInference::feasible(&big, &v100));
        assert!(stronghold_core::inference::inference_feasible(&big, &v100));
    }

    fn gen_reqs(lens: &[usize]) -> Vec<GenRequest> {
        lens.iter()
            .enumerate()
            .map(|(i, &n)| GenRequest {
                id: i as u64,
                prompt: (0..4u32).map(|t| (t * 5 + i as u32) % 64).collect(),
                max_new_tokens: n,
                seed: 40 + i as u64,
            })
            .collect()
    }

    #[test]
    fn static_batching_completes_every_request() {
        use stronghold_model::config::tiny;
        let mut g = StaticBatchGenerator::new(tiny(3), 9, StaticBatchConfig::default());
        let out = g.generate(gen_reqs(&[5, 2, 3, 1]));
        assert_eq!(out.len(), 4);
        for (r, want) in out.iter().zip([5, 2, 3, 1]) {
            assert_eq!(r.tokens.len(), want);
            assert!(r.latency_ns >= r.ttft_ns);
        }
    }

    #[test]
    fn static_batching_pads_to_the_batch_longest() {
        use stronghold_model::config::tiny;
        let mut g = StaticBatchGenerator::new(tiny(2), 9, StaticBatchConfig::default());
        let out = g.generate(gen_reqs(&[6, 1]));
        // The short request finished on round 1 but its slot drained with
        // the batch: its latency is its own, its batch held 6 rounds.
        assert_eq!(out[0].rounds, 6);
        assert_eq!(out[1].rounds, 1);
        assert_eq!(out[1].tokens.len(), 1);
    }

    #[test]
    fn static_streams_match_the_continuous_engine_bitwise() {
        use stronghold_core::serve::{ServeConfig, ServeEngine};
        use stronghold_model::config::tiny;
        let mcfg = tiny(3);
        let reqs = gen_reqs(&[4, 2, 5, 3]);
        let mut stat = StaticBatchGenerator::new(mcfg, 9, StaticBatchConfig::default());
        let mut cont = ServeEngine::new(mcfg, 9, ServeConfig::default());
        let mut a = stat.generate(reqs.clone());
        let mut b = cont.generate(reqs);
        a.sort_by_key(|r| r.id);
        b.sort_by_key(|r| r.id);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(
                x.tokens, y.tokens,
                "req {}: schedules must not change math",
                x.id
            );
        }
    }
}
