//! Plain-framework inference (the PyTorch comparator of Fig. 13).
//!
//! Keeps every parameter in device memory and runs a straight forward pass:
//! matches STRONGHOLD's inference throughput for small models and OOMs once
//! parameters + workspace exceed the device — exactly the crossover the
//! knowledge-distillation experiment demonstrates.

use stronghold_core::error::{Result, RuntimeError};
use stronghold_core::method::IterationReport;
use stronghold_model::config::ModelConfig;
use stronghold_model::memory;
use stronghold_sim::{CostModel, FifoResource, Lane, Platform, SimTime, Timeline};

use crate::common::{gpu_capacity, layers_of};

/// The plain inference baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlainInference;

impl PlainInference {
    /// Device bytes for FP-only serving: all parameters + workspace +
    /// hidden states.
    pub fn gpu_usage(cfg: &ModelConfig) -> u64 {
        let params: u64 = layers_of(cfg).iter().map(|l| l.param_bytes()).sum();
        params
            + memory::peak_workspace_bytes(cfg)
            + memory::boundary_activation_bytes(cfg) * cfg.batch as u64 * 2
    }

    /// Whether serving fits the device.
    pub fn feasible(cfg: &ModelConfig, platform: &Platform) -> bool {
        Self::gpu_usage(cfg) <= gpu_capacity(platform)
    }

    /// One forward pass over a batch.
    pub fn inference(cfg: &ModelConfig, platform: &Platform) -> Result<IterationReport> {
        if !Self::feasible(cfg, platform) {
            return Err(RuntimeError::Infeasible {
                method: "PyTorch".into(),
                reason: "parameters exceed device memory".into(),
            });
        }
        let cost = CostModel::new(*platform);
        let layers = layers_of(cfg);
        let mut compute = FifoResource::new("compute");
        let mut tl = Timeline::new();
        let mut prev = SimTime::ZERO;
        for (i, l) in layers.iter().enumerate() {
            let (s, e) = compute.schedule(prev, cost.layer_fp(l, cfg.batch));
            tl.record(Lane::Compute(0), format!("fp L{i}"), s, e);
            prev = e;
        }
        let fp_flops: u64 = layers.iter().map(|l| l.flops_fp).sum();
        let report = IterationReport {
            method: "PyTorch".into(),
            cfg: *cfg,
            iter_time: tl.makespan(),
            throughput: 0.0,
            tflops: 0.0,
            gpu_peak: Self::gpu_usage(cfg),
            cpu_peak: 0,
            overlap: 1.0,
            gpu_util: tl.utilization(Lane::Compute(0)),
            timeline: tl,
            window: 0,
        };
        Ok(report.finish(fp_flops, cfg.batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::common_1_7b;

    #[test]
    fn serves_small_models() {
        let r = PlainInference::inference(&common_1_7b(), &Platform::v100_server()).unwrap();
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn ooms_on_large_models() {
        // ~23.7B parameters: 95 GB of FP32 weights cannot serve on 32 GB.
        let big = ModelConfig::new(300, 2560, 16);
        assert!(!PlainInference::feasible(&big, &Platform::v100_server()));
        assert!(PlainInference::inference(&big, &Platform::v100_server()).is_err());
    }

    #[test]
    fn stronghold_inference_survives_where_pytorch_ooms() {
        // The Fig. 13 crossover.
        let big = ModelConfig::new(300, 2560, 16);
        let v100 = Platform::v100_server();
        assert!(!PlainInference::feasible(&big, &v100));
        assert!(stronghold_core::inference::inference_feasible(&big, &v100));
    }
}
