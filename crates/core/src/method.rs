//! The common interface every training method implements (STRONGHOLD and all
//! baselines), plus the per-iteration report the harnesses consume.

use stronghold_model::config::ModelConfig;
use stronghold_sim::{Platform, SimTime, Timeline};

use crate::error::Result;

/// Outcome of simulating one steady-state training iteration.
#[derive(Clone, Debug)]
pub struct IterationReport {
    /// Method that produced this report.
    pub method: String,
    /// Model configuration.
    pub cfg: ModelConfig,
    /// Virtual wall time of one iteration.
    pub iter_time: SimTime,
    /// Training throughput in samples/second.
    pub throughput: f64,
    /// Achieved TFLOP/s (model FLOPs / iteration time).
    pub tflops: f64,
    /// Peak device bytes.
    pub gpu_peak: u64,
    /// Peak host bytes attributable to training state.
    pub cpu_peak: u64,
    /// Fraction of CPU↔GPU copy time hidden under compute.
    pub overlap: f64,
    /// GPU compute utilization over the iteration.
    pub gpu_util: f64,
    /// The full trace (Fig. 4 rendering, lane statistics).
    pub timeline: Timeline,
    /// Working window used (STRONGHOLD only; 0 for baselines).
    pub window: usize,
}

impl IterationReport {
    /// Derives throughput/TFLOPs fields from the timeline and model.
    pub fn finish(mut self, total_flops_per_sample: u64, batch: usize) -> Self {
        let secs = self.iter_time.as_secs_f64();
        if secs > 0.0 {
            self.throughput = batch as f64 / secs;
            self.tflops = total_flops_per_sample as f64 * batch as f64 / secs / 1e12;
        }
        self
    }
}

/// A training method: a memory-placement policy plus an iteration scheduler.
pub trait TrainingMethod {
    /// Human-readable name, e.g. `"ZeRO-Offload"`.
    fn name(&self) -> &'static str;

    /// Whether `cfg` trains on `platform` without OOM under this method.
    fn feasible(&self, cfg: &ModelConfig, platform: &Platform) -> bool;

    /// Simulates one steady-state iteration; `Err` when infeasible.
    fn iteration(&self, cfg: &ModelConfig, platform: &Platform) -> Result<IterationReport>;
}

/// Total training FLOPs of one sample (FP + BP including recompute), used to
/// report achieved TFLOP/s like the paper (§VI-B).
pub fn flops_per_sample(cfg: &ModelConfig) -> u64 {
    stronghold_model::layer::build_layers(cfg)
        .iter()
        .map(|l| l.flops_fp + l.flops_bp + l.flops_fp) // fwd + bwd + recompute
        .sum()
}

/// Binary-searches the largest trainable model (in transformer layers at a
/// fixed width) for a method on a platform. Returns the last feasible
/// configuration, or `None` if even one layer OOMs.
pub fn max_trainable_layers(
    method: &dyn TrainingMethod,
    base: &ModelConfig,
    platform: &Platform,
    max_layers: usize,
) -> Option<ModelConfig> {
    let with_layers = |n: usize| {
        let mut c = *base;
        c.layers = n;
        c
    };
    if !method.feasible(&with_layers(1), platform) {
        return None;
    }
    let (mut lo, mut hi) = (1usize, max_layers);
    if method.feasible(&with_layers(hi), platform) {
        return Some(with_layers(hi));
    }
    // Invariant: lo feasible, hi infeasible.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if method.feasible(&with_layers(mid), platform) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(with_layers(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::common_1_7b;

    struct FakeMethod {
        cap_layers: usize,
    }

    impl TrainingMethod for FakeMethod {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn feasible(&self, cfg: &ModelConfig, _p: &Platform) -> bool {
            cfg.layers <= self.cap_layers
        }
        fn iteration(&self, cfg: &ModelConfig, p: &Platform) -> Result<IterationReport> {
            if !self.feasible(cfg, p) {
                return Err(crate::error::RuntimeError::Infeasible {
                    method: self.name().into(),
                    reason: format!("{} layers exceeds cap {}", cfg.layers, self.cap_layers),
                });
            }
            // A fixed virtual millisecond per layer: enough structure for
            // the report plumbing (finish(), rate derivation) to be
            // exercised end to end.
            let iter_time = SimTime::from_millis(cfg.layers as u64);
            let report = IterationReport {
                method: self.name().into(),
                cfg: *cfg,
                iter_time,
                throughput: 0.0,
                tflops: 0.0,
                gpu_peak: 0,
                cpu_peak: 0,
                overlap: 0.0,
                gpu_util: 0.0,
                timeline: Timeline::new(),
                window: 0,
            };
            Ok(report.finish(flops_per_sample(cfg), cfg.batch))
        }
    }

    #[test]
    fn binary_search_finds_exact_cap() {
        let p = Platform::v100_server();
        let base = common_1_7b();
        for cap in [1, 2, 7, 20, 333, 999] {
            let m = FakeMethod { cap_layers: cap };
            let found = max_trainable_layers(&m, &base, &p, 2000).unwrap();
            assert_eq!(found.layers, cap, "cap {cap}");
        }
    }

    #[test]
    fn infeasible_at_one_layer_returns_none() {
        let p = Platform::v100_server();
        let m = FakeMethod { cap_layers: 0 };
        assert!(max_trainable_layers(&m, &common_1_7b(), &p, 100).is_none());
    }

    #[test]
    fn cap_beyond_max_returns_max() {
        let p = Platform::v100_server();
        let m = FakeMethod { cap_layers: 5000 };
        let found = max_trainable_layers(&m, &common_1_7b(), &p, 100).unwrap();
        assert_eq!(found.layers, 100);
    }

    #[test]
    fn fake_iteration_reports_rates_when_feasible() {
        let p = Platform::v100_server();
        let cfg = common_1_7b();
        let m = FakeMethod {
            cap_layers: cfg.layers,
        };
        let r = m.iteration(&cfg, &p).expect("feasible config");
        assert_eq!(r.method, "fake");
        assert_eq!(r.iter_time, SimTime::from_millis(cfg.layers as u64));
        let secs = r.iter_time.as_secs_f64();
        assert!((r.throughput - cfg.batch as f64 / secs).abs() < 1e-9);
        assert!(r.tflops > 0.0);

        let tight = FakeMethod {
            cap_layers: cfg.layers - 1,
        };
        let err = tight.iteration(&cfg, &p).unwrap_err();
        assert!(err.to_string().contains("infeasible"));
    }

    #[test]
    fn report_finish_computes_rates() {
        let r = IterationReport {
            method: "x".into(),
            cfg: common_1_7b(),
            iter_time: SimTime::from_secs_f64(2.0),
            throughput: 0.0,
            tflops: 0.0,
            gpu_peak: 0,
            cpu_peak: 0,
            overlap: 1.0,
            gpu_util: 1.0,
            timeline: Timeline::new(),
            window: 0,
        };
        let r = r.finish(1_000_000_000_000, 4);
        assert!((r.throughput - 2.0).abs() < 1e-9);
        assert!((r.tflops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn flops_per_sample_positive_and_scales() {
        let f1 = flops_per_sample(&common_1_7b());
        let mut big = common_1_7b();
        big.layers *= 2;
        let f2 = flops_per_sample(&big);
        assert!(f2 > f1 + f1 / 2);
    }
}
