//! Conventional (fully resident) trainer — the reference implementation the
//! offloaded pipeline is checked against, written independently over the
//! whole-model convenience API.

use stronghold_model::config::ModelConfig;
use stronghold_model::transformer::{Transformer, TransformerGrads};

use crate::adam::{AdamParams, AdamState};

/// A plain trainer holding the entire model in memory.
pub struct HostResidentTrainer {
    /// The model.
    pub model: Transformer,
    grads: TransformerGrads,
    /// Per-sample gradient scratch, zeroed and reused for every sample.
    sample_scratch: TransformerGrads,
    block_adams: Vec<AdamState>,
    token_adam: AdamState,
    pos_adam: AdamState,
    lnf_g_adam: AdamState,
    lnf_b_adam: AdamState,
    hp: AdamParams,
    /// Reused flat-parameter staging buffer for the per-block Adam step.
    flat_stage: Vec<f32>,
    /// Reused flat-gradient staging buffer for the per-block Adam step.
    grad_stage: Vec<f32>,
}

impl HostResidentTrainer {
    /// Builds the model with deterministic init from `seed`.
    pub fn new(cfg: ModelConfig, seed: u64, hp: AdamParams) -> Self {
        let model = Transformer::new(cfg, seed);
        let grads = model.zero_grads();
        let sample_scratch = model.zero_grads();
        let block_adams = model
            .blocks
            .iter()
            .map(|b| AdamState::new(b.param_count()))
            .collect();
        let token_adam = AdamState::new(model.embedding.token.numel());
        let pos_adam = AdamState::new(model.embedding.position.numel());
        let lnf_g_adam = AdamState::new(model.lnf_g.numel());
        let lnf_b_adam = AdamState::new(model.lnf_b.numel());
        HostResidentTrainer {
            model,
            grads,
            sample_scratch,
            block_adams,
            token_adam,
            pos_adam,
            lnf_g_adam,
            lnf_b_adam,
            hp,
            flat_stage: Vec::new(),
            grad_stage: Vec::new(),
        }
    }

    /// One training step over a batch of `(inputs, targets)` pairs; returns
    /// the mean loss.
    pub fn train_step(&mut self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        assert!(!batch.is_empty());
        self.grads.zero_();
        let scale = 1.0 / batch.len() as f32;
        let mut loss_sum = 0.0f32;
        for (tokens, targets) in batch {
            loss_sum += self.model.forward_backward_sample_with(
                tokens,
                targets,
                &mut self.sample_scratch,
                &mut self.grads,
                scale,
            );
        }

        // Per-block Adam on the canonical flat representation, staged
        // through reused buffers.
        for (i, block) in self.model.blocks.iter_mut().enumerate() {
            block.flatten_params_into(&mut self.flat_stage);
            self.grads.blocks[i].flatten_into(&mut self.grad_stage);
            self.block_adams[i].step(&mut self.flat_stage, &self.grad_stage, &self.hp);
            block.load_flat_params(&self.flat_stage);
        }
        // Resident groups in fixed order: token, position, lnf gain, lnf bias.
        self.token_adam.step(
            self.model.embedding.token.data_mut(),
            self.grads.embedding.token.data(),
            &self.hp,
        );
        self.pos_adam.step(
            self.model.embedding.position.data_mut(),
            self.grads.embedding.position.data(),
            &self.hp,
        );
        self.lnf_g_adam.step(
            self.model.lnf_g.data_mut(),
            self.grads.lnf_g.data(),
            &self.hp,
        );
        self.lnf_b_adam.step(
            self.model.lnf_b.data_mut(),
            self.grads.lnf_b.data(),
            &self.hp,
        );

        loss_sum / batch.len() as f32
    }

    /// Mean loss over a batch without updating (evaluation).
    pub fn eval_loss(&self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        let s: f32 = batch
            .iter()
            .map(|(t, y)| self.model.forward_loss(t, y))
            .sum();
        s / batch.len() as f32
    }

    /// Flat parameters of block `i` (for equivalence checks).
    pub fn block_params(&self, i: usize) -> Vec<f32> {
        self.model.blocks[i].flatten_params()
    }

    /// Serializes the *full* training state — model parameters plus every
    /// Adam moment and step counter — so training resumes **bit-exactly**
    /// (the fine-tuning checkpoint/resume workflow of §III-G).
    pub fn save_training_state(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::new();
        let model_blob = stronghold_model::serialize::save(&self.model);
        buf.put_u64_le(model_blob.len() as u64);
        buf.extend_from_slice(&model_blob);
        let put_adam = |buf: &mut bytes::BytesMut, st: &AdamState| {
            buf.put_u64_le(st.t);
            buf.put_u64_le(st.m.len() as u64);
            for v in st.m.iter().chain(st.v.iter()) {
                buf.put_f32_le(*v);
            }
        };
        for st in &self.block_adams {
            put_adam(&mut buf, st);
        }
        for st in [
            &self.token_adam,
            &self.pos_adam,
            &self.lnf_g_adam,
            &self.lnf_b_adam,
        ] {
            put_adam(&mut buf, st);
        }
        buf.freeze()
    }

    /// Restores a trainer from [`Self::save_training_state`] output.
    ///
    /// # Panics
    /// Panics on a malformed blob (length mismatches).
    pub fn load_training_state(blob: bytes::Bytes, hp: AdamParams) -> Self {
        use bytes::Buf;
        let mut blob = blob;
        let model_len = blob.get_u64_le() as usize;
        let model_blob = blob.split_to(model_len);
        let model = stronghold_model::serialize::load(model_blob).expect("model blob");
        let get_adam = |blob: &mut bytes::Bytes| -> AdamState {
            let t = blob.get_u64_le();
            let n = blob.get_u64_le() as usize;
            let read = |blob: &mut bytes::Bytes| -> Vec<f32> {
                (0..n).map(|_| blob.get_f32_le()).collect()
            };
            let m = read(blob);
            let v = read(blob);
            AdamState { m, v, t }
        };
        let block_adams: Vec<AdamState> = (0..model.blocks.len())
            .map(|_| get_adam(&mut blob))
            .collect();
        let token_adam = get_adam(&mut blob);
        let pos_adam = get_adam(&mut blob);
        let lnf_g_adam = get_adam(&mut blob);
        let lnf_b_adam = get_adam(&mut blob);
        assert!(!blob.has_remaining(), "trailing bytes in training state");
        let grads = model.zero_grads();
        let sample_scratch = model.zero_grads();
        HostResidentTrainer {
            model,
            grads,
            sample_scratch,
            block_adams,
            token_adam,
            pos_adam,
            lnf_g_adam,
            lnf_b_adam,
            hp,
            flat_stage: Vec::new(),
            grad_stage: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::tiny;
    use stronghold_model::data::SyntheticCorpus;

    #[test]
    fn loss_decreases_over_steps() {
        let cfg = tiny(2);
        let mut t = HostResidentTrainer::new(
            cfg,
            7,
            AdamParams {
                lr: 5e-3,
                ..AdamParams::default()
            },
        );
        let mut corpus = SyntheticCorpus::new(cfg.vocab, 11);
        let batch = corpus.next_batch(cfg.batch, cfg.seq - 1);
        let initial = t.eval_loss(&batch);
        for _ in 0..25 {
            t.train_step(&batch);
        }
        let fin = t.eval_loss(&batch);
        assert!(fin < initial * 0.8, "loss {initial} -> {fin}");
    }

    #[test]
    fn save_load_resume_is_bit_exact() {
        // Train 6 steps straight vs train 3 + checkpoint + restore + 3:
        // identical parameters, because Adam state travels too.
        let cfg = tiny(3);
        let hp = AdamParams::default();
        let mut corpus = SyntheticCorpus::new(cfg.vocab, 33);
        let batch = corpus.next_batch(2, 12);

        let mut straight = HostResidentTrainer::new(cfg, 5, hp);
        for _ in 0..6 {
            straight.train_step(&batch);
        }

        let mut first = HostResidentTrainer::new(cfg, 5, hp);
        for _ in 0..3 {
            first.train_step(&batch);
        }
        let blob = first.save_training_state();
        let mut resumed = HostResidentTrainer::load_training_state(blob, hp);
        for _ in 0..3 {
            resumed.train_step(&batch);
        }
        for i in 0..cfg.layers {
            assert_eq!(
                straight.block_params(i),
                resumed.block_params(i),
                "block {i}"
            );
        }
        assert_eq!(
            straight.model.embedding.token,
            resumed.model.embedding.token
        );
    }

    #[test]
    #[should_panic(expected = "trailing bytes")]
    fn corrupt_training_state_rejected() {
        let cfg = tiny(1);
        let t = HostResidentTrainer::new(cfg, 1, AdamParams::default());
        let mut raw = t.save_training_state().to_vec();
        raw.extend_from_slice(&[0u8; 4]);
        let _ = HostResidentTrainer::load_training_state(
            bytes::Bytes::from(raw),
            AdamParams::default(),
        );
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = tiny(2);
        let run = || {
            let mut t = HostResidentTrainer::new(cfg, 3, AdamParams::default());
            let mut corpus = SyntheticCorpus::new(cfg.vocab, 5);
            let batch = corpus.next_batch(2, 12);
            for _ in 0..3 {
                t.train_step(&batch);
            }
            t.block_params(0)
        };
        assert_eq!(run(), run());
    }
}
