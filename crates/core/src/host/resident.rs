//! Conventional (fully resident) trainer — the reference implementation the
//! offloaded pipeline is checked against, written independently over the
//! whole-model convenience API.
//!
//! The trainer is a thin facade over the shared [`Engine`]; only the
//! placement mechanism ([`ResidentBackend`]: everything in one in-memory
//! model, optimizer applied inline) lives here.

use bytes::Bytes;
use stronghold_collective::order::{fold_with, tree_sum, FoldPlan};
use stronghold_model::config::ModelConfig;
use stronghold_model::transformer::{Transformer, TransformerGrads};

use crate::adam::{AdamParams, AdamState};
use crate::error::RuntimeError;
use crate::hooks::{HookCtx, HookPoint, HookRegistry};
use crate::host::engine::{
    Engine, EngineOptions, GradSink, ParamBackend, ResidentParamsMut, StepPlan, StepWorkspace,
    TrainingState,
};
use crate::telemetry::Telemetry;

/// The in-memory placement backend: the whole model lives in one
/// [`Transformer`] and block updates are applied synchronously on the
/// calling thread.
pub struct ResidentBackend {
    model: Transformer,
    /// Per-sample gradient scratch, zeroed and reused for every sample.
    sample_scratch: TransformerGrads,
    block_adams: Vec<AdamState>,
    /// Reused flat-parameter staging buffer for the per-block Adam step.
    flat_stage: Vec<f32>,
    /// Canonical-tree merge schedule for the batch fan-in.
    fold_plan: FoldPlan,
    /// Reusable partial accumulators for the tree fold (≈ log₂ batch).
    fold_slots: Vec<TransformerGrads>,
    /// Reusable per-sample raw loss buffer for the loss tree.
    loss_buf: Vec<f32>,
    tel: Telemetry,
}

impl ResidentBackend {
    fn from_model(model: Transformer, block_adams: Vec<AdamState>) -> Self {
        let sample_scratch = model.zero_grads();
        ResidentBackend {
            model,
            sample_scratch,
            block_adams,
            flat_stage: Vec::new(),
            fold_plan: FoldPlan::default(),
            fold_slots: Vec::new(),
            loss_buf: Vec::new(),
            tel: Telemetry::disabled(),
        }
    }
}

impl ParamBackend for ResidentBackend {
    fn config(&self) -> ModelConfig {
        self.model.cfg
    }

    fn num_blocks(&self) -> usize {
        self.model.blocks.len()
    }

    fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    fn new_resident_grads(&self) -> TransformerGrads {
        // Full-model grads: the fused per-sample pass accumulates block
        // gradients here too; the engine only reads the resident groups.
        self.model.zero_grads()
    }

    /// The fused whole-model pass runs forward *and* backward per sample,
    /// so per-layer hooks cannot interleave with compute; they fire at step
    /// granularity in canonical order (all `PreForward` ascending before the
    /// batch, then `PostForward` ascending, then `PreBackward`/`PostBackward`
    /// descending) — the same per-point counts as the pipelined backends.
    ///
    /// The resident backend never streams optimizer dispatch ([`StepPlan`]
    /// is ignored and `ws.streamed` stays false): with everything in memory
    /// the engine's deferred dispatch loop *is* the inline update, and
    /// leaving it there keeps this trainer the reference the overlapped
    /// pipelines are checked against.
    fn forward_backward(
        &mut self,
        batch: &[(Vec<u32>, Vec<u32>)],
        ws: &mut StepWorkspace,
        hooks: &mut HookRegistry,
        iteration: u64,
        _plan: &StepPlan,
        _sink: &dyn GradSink,
    ) -> f32 {
        let n = self.model.blocks.len();
        let b = batch.len();
        let ctx = |layer: usize| HookCtx {
            layer,
            iteration,
            micro_batch: 0,
        };
        for l in 0..n {
            hooks.fire(l, HookPoint::PreForward, &ctx(l));
        }
        // Per-sample gradients and losses fold down the canonical pairwise
        // tree (see `stronghold_collective::order`): leaf `i` is sample
        // `i`'s gradient scaled into a zeroed slot, merges are plain adds.
        // Sharding the batch across replicas and tree-folding the shard
        // partials reproduces exactly this value, which is what makes
        // data-parallel training bit-identical to this reference.
        let scale = 1.0 / b as f32;
        self.fold_plan.set_len(b);
        while self.fold_slots.len() < self.fold_plan.depth() {
            self.fold_slots.push(self.model.zero_grads());
        }
        self.loss_buf.clear();
        self.loss_buf.resize(b, 0.0);
        {
            let ResidentBackend {
                model,
                sample_scratch,
                fold_plan,
                fold_slots,
                loss_buf,
                ..
            } = self;
            fold_with(
                fold_plan,
                fold_slots,
                |i, slot| {
                    slot.zero_();
                    let (tokens, targets) = &batch[i];
                    loss_buf[i] = model.forward_backward_sample_with(
                        tokens,
                        targets,
                        sample_scratch,
                        slot,
                        scale,
                    );
                },
                |acc, part| acc.accumulate_scaled(part, 1.0),
            );
        }
        std::mem::swap(&mut ws.resident_grads, &mut self.fold_slots[0]);
        for l in 0..n {
            hooks.fire(l, HookPoint::PostForward, &ctx(l));
        }
        for l in (0..n).rev() {
            hooks.fire(l, HookPoint::PreBackward, &ctx(l));
            hooks.fire(l, HookPoint::PostBackward, &ctx(l));
        }
        for (i, g) in ws.resident_grads.blocks.iter().enumerate() {
            g.flatten_into(&mut ws.block_grads[i]);
        }
        tree_sum(&self.loss_buf) / b as f32
    }

    fn dispatch_block_update(&mut self, layer: usize, grads: &[f32], hp: &AdamParams) {
        let block = &mut self.model.blocks[layer];
        block.flatten_params_into(&mut self.flat_stage);
        self.block_adams[layer].step(&mut self.flat_stage, grads, hp);
        block.load_flat_params(&self.flat_stage);
    }

    fn resident_params_mut(&mut self) -> ResidentParamsMut<'_> {
        ResidentParamsMut {
            token: self.model.embedding.token.data_mut(),
            position: self.model.embedding.position.data_mut(),
            lnf_g: self.model.lnf_g.data_mut(),
            lnf_b: self.model.lnf_b.data_mut(),
        }
    }

    fn eval_loss(&self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        let losses: Vec<f32> = batch
            .iter()
            .map(|(t, y)| self.model.forward_loss(t, y))
            .collect();
        tree_sum(&losses) / batch.len() as f32
    }

    fn model_blob(&self) -> Bytes {
        stronghold_model::serialize::save(&self.model)
    }

    fn block_adam_snapshot(&self, layer: usize) -> AdamState {
        self.block_adams[layer].clone()
    }
}

/// A plain trainer holding the entire model in memory.
pub struct HostResidentTrainer {
    engine: Engine<ResidentBackend>,
}

impl HostResidentTrainer {
    /// Builds the model with deterministic init from `seed`.
    pub fn new(cfg: ModelConfig, seed: u64, hp: AdamParams) -> Self {
        HostResidentTrainer::with_options(
            cfg,
            seed,
            EngineOptions {
                adam: hp,
                ..EngineOptions::default()
            },
        )
    }

    /// [`HostResidentTrainer::new`] with full engine options (LR schedule,
    /// gradient clipping).
    pub fn with_options(cfg: ModelConfig, seed: u64, opts: EngineOptions) -> Self {
        let model = Transformer::new(cfg, seed);
        let block_adams = model
            .blocks
            .iter()
            .map(|b| AdamState::new(b.param_count()))
            .collect();
        HostResidentTrainer {
            engine: Engine::new(ResidentBackend::from_model(model, block_adams), opts),
        }
    }

    /// One training step over a batch of `(inputs, targets)` pairs; returns
    /// the mean loss.
    pub fn train_step(&mut self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        self.engine.train_step(batch)
    }

    /// Mean loss over a batch without updating (evaluation).
    pub fn eval_loss(&self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        self.engine.eval_loss(batch)
    }

    /// The model.
    pub fn model(&self) -> &Transformer {
        &self.engine.backend().model
    }

    /// Mutable access to the model (weight surgery between steps).
    pub fn model_mut(&mut self) -> &mut Transformer {
        &mut self.engine.backend_mut().model
    }

    /// Completed optimizer steps.
    pub fn steps(&self) -> u64 {
        self.engine.steps()
    }

    /// The hook registry; register pipeline callbacks here.
    pub fn hooks_mut(&mut self) -> &mut HookRegistry {
        self.engine.hooks_mut()
    }

    /// Total hook invocations so far.
    pub fn hook_invocations(&self) -> u64 {
        self.engine.hooks().invocations()
    }

    /// Flat parameters of block `i` (for equivalence checks).
    pub fn block_params(&self, i: usize) -> Vec<f32> {
        self.engine.backend().model.blocks[i].flatten_params()
    }

    /// Serializes the full training state (see
    /// [`Engine::save_training_state`]).
    pub fn save_training_state(&self) -> Bytes {
        self.engine.save_training_state()
    }

    /// Restores a trainer from [`Self::save_training_state`] output.
    /// `cfg` guards against resuming with the wrong model shape; any
    /// malformed blob yields a typed [`RuntimeError::Checkpoint`].
    pub fn load_training_state(
        blob: Bytes,
        cfg: ModelConfig,
        opts: EngineOptions,
    ) -> Result<Self, RuntimeError> {
        let st = TrainingState::decode(blob)?;
        st.expect_config(&cfg)?;
        let TrainingState {
            step,
            model,
            block_adams,
            resident_adams,
            ..
        } = st;
        let backend = ResidentBackend::from_model(model, block_adams);
        Ok(HostResidentTrainer {
            engine: Engine::resume(backend, opts, step, resident_adams),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stronghold_model::config::tiny;
    use stronghold_model::data::SyntheticCorpus;

    #[test]
    fn loss_decreases_over_steps() {
        let cfg = tiny(2);
        let mut t = HostResidentTrainer::new(
            cfg,
            7,
            AdamParams {
                lr: 5e-3,
                ..AdamParams::default()
            },
        );
        let mut corpus = SyntheticCorpus::new(cfg.vocab, 11);
        let batch = corpus.next_batch(cfg.batch, cfg.seq - 1);
        let initial = t.eval_loss(&batch);
        for _ in 0..25 {
            t.train_step(&batch);
        }
        let fin = t.eval_loss(&batch);
        assert!(fin < initial * 0.8, "loss {initial} -> {fin}");
    }

    #[test]
    fn save_load_resume_is_bit_exact() {
        // Train 6 steps straight vs train 3 + checkpoint + restore + 3:
        // identical parameters, because Adam state travels too.
        let cfg = tiny(3);
        let hp = AdamParams::default();
        let mut corpus = SyntheticCorpus::new(cfg.vocab, 33);
        let batch = corpus.next_batch(2, 12);

        let mut straight = HostResidentTrainer::new(cfg, 5, hp);
        for _ in 0..6 {
            straight.train_step(&batch);
        }

        let mut first = HostResidentTrainer::new(cfg, 5, hp);
        for _ in 0..3 {
            first.train_step(&batch);
        }
        let blob = first.save_training_state();
        let opts = EngineOptions {
            adam: hp,
            ..EngineOptions::default()
        };
        let mut resumed = HostResidentTrainer::load_training_state(blob, cfg, opts).unwrap();
        assert_eq!(resumed.steps(), 3);
        for _ in 0..3 {
            resumed.train_step(&batch);
        }
        for i in 0..cfg.layers {
            assert_eq!(
                straight.block_params(i),
                resumed.block_params(i),
                "block {i}"
            );
        }
        assert_eq!(
            straight.model().embedding.token,
            resumed.model().embedding.token
        );
    }

    #[test]
    fn corrupt_training_state_rejected() {
        let cfg = tiny(1);
        let t = HostResidentTrainer::new(cfg, 1, AdamParams::default());
        let mut raw = t.save_training_state().to_vec();
        raw.extend_from_slice(&[0u8; 4]);
        let err = HostResidentTrainer::load_training_state(
            bytes::Bytes::from(raw),
            cfg,
            EngineOptions::default(),
        )
        .err()
        .expect("must fail");
        assert!(
            matches!(err, RuntimeError::Checkpoint(ref m) if m.contains("trailing")),
            "{err}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = tiny(2);
        let run = || {
            let mut t = HostResidentTrainer::new(cfg, 3, AdamParams::default());
            let mut corpus = SyntheticCorpus::new(cfg.vocab, 5);
            let batch = corpus.next_batch(2, 12);
            for _ in 0..3 {
                t.train_step(&batch);
            }
            t.block_params(0)
        };
        assert_eq!(run(), run());
    }
}
