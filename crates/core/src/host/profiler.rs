//! Warm-up profiling on the functional substrate (§III-B).
//!
//! On real hardware STRONGHOLD measures per-layer compute and transfer
//! times during the first few iterations. This module does precisely that
//! for the host substrate — wall-clock timing of block forward/backward and
//! of the materialize/flatten copies — and produces the same
//! [`LayerProfile`] the analytic window solver consumes, closing the loop
//! between the functional and simulated halves of the runtime.

use std::time::Instant;

use stronghold_model::config::ModelConfig;
use stronghold_model::transformer::Transformer;
use stronghold_sim::SimTime;

use crate::profile::LayerProfile;
use crate::tier::TierBandwidths;

fn elapsed(since: Instant) -> SimTime {
    SimTime::from_secs_f64(since.elapsed().as_secs_f64())
}

/// Runs `iters` warm-up measurement passes over one sample batch and
/// returns the averaged per-layer profile. Layer 0 is the embedding and
/// layer `n+1` the head, matching the simulator's layer indexing.
///
/// Byte sizes assume FP32 transfers; a mixed-precision runtime should use
/// [`measure_host_profile_with_precision`] so the solver's `m_mem_max`
/// reflects half-width slots.
pub fn measure_host_profile(
    cfg: &ModelConfig,
    seed: u64,
    batch: &[(Vec<u32>, Vec<u32>)],
    iters: usize,
) -> LayerProfile {
    measure_host_profile_with_precision(cfg, seed, batch, iters, stronghold_tensor::Precision::F32)
}

/// [`measure_host_profile`] with the per-layer transfer sizes scaled to
/// `precision` — half modes report `param_count · 2` bytes per block, the
/// payload [`crate::host::HostOffloadConfig`]'s mixed-precision pipeline
/// actually moves, so [`crate::analytic::solve_window`] derives the doubled
/// `m_mem_max` from the same device capacity.
pub fn measure_host_profile_with_precision(
    cfg: &ModelConfig,
    seed: u64,
    batch: &[(Vec<u32>, Vec<u32>)],
    iters: usize,
    precision: stronghold_tensor::Precision,
) -> LayerProfile {
    assert!(!batch.is_empty());
    let iters = iters.max(1);
    let model = Transformer::new(*cfg, seed);
    let n = cfg.layers;
    let total = n + 2;
    let zero = SimTime::ZERO;
    let mut t_fp = vec![zero; total];
    let mut t_bp = vec![zero; total];
    let mut t_c2g = vec![zero; total];
    let mut t_g2c = vec![zero; total];

    for _ in 0..iters {
        // Embedding forward.
        let t0 = Instant::now();
        let mut xs: Vec<_> = batch.iter().map(|(t, _)| model.embed(t)).collect();
        t_fp[0] += elapsed(t0);

        // Blocks: time the "H2D" materialization and the forward.
        let mut inputs = Vec::with_capacity(n);
        for i in 0..n {
            let t0 = Instant::now();
            let flat = model.blocks[i].flatten_params();
            let mut shadow = model.blocks[i].clone();
            shadow.load_flat_params(&flat);
            t_c2g[i + 1] += elapsed(t0);
            inputs.push(xs.clone());
            let t0 = Instant::now();
            xs = xs.iter().map(|x| shadow.forward_no_cache(x)).collect();
            t_fp[i + 1] += elapsed(t0);
        }

        // Head forward + loss (its backward share is folded into the same
        // measurement: head_forward_loss already computes the input grad).
        let t0 = Instant::now();
        let mut dys = Vec::with_capacity(batch.len());
        for (s, (_, targets)) in batch.iter().enumerate() {
            let (_, dx, _) = model.head_forward_loss(&xs[s], targets);
            dys.push(dx);
        }
        let head_time = elapsed(t0);
        t_fp[total - 1] += head_time;
        t_bp[total - 1] += head_time;

        // Blocks backward with recompute, plus the "D2H" flatten.
        for i in (0..n).rev() {
            let mut grads = model.blocks[i].zero_grads();
            let t0 = Instant::now();
            for (s, dy) in dys.iter_mut().enumerate() {
                let (_, cache) = model.blocks[i].forward(&inputs[i][s]);
                *dy = model.blocks[i].backward(dy, &inputs[i][s], &cache, &mut grads);
            }
            t_bp[i + 1] += elapsed(t0);
            let t0 = Instant::now();
            let _flat = grads.flatten_all();
            t_g2c[i + 1] += elapsed(t0);
        }
    }

    let avg = |v: &mut Vec<SimTime>| {
        for t in v.iter_mut() {
            *t = SimTime::from_nanos(t.as_nanos() / iters as u64);
        }
    };
    avg(&mut t_fp);
    avg(&mut t_bp);
    avg(&mut t_c2g);
    avg(&mut t_g2c);

    let block_bytes = model.blocks[0].param_count() as u64 * precision.param_bytes();
    let s_fp: Vec<u64> = (0..total)
        .map(|i| if (1..=n).contains(&i) { block_bytes } else { 0 })
        .collect();
    let s_bp: Vec<u64> = s_fp.iter().map(|b| b * 2).collect();
    LayerProfile {
        t_fp,
        t_bp,
        t_c2g,
        t_g2c,
        s_fp,
        s_bp,
        t_opt_gpu: vec![SimTime::from_micros(1); total],
        t_opt_cpu: vec![SimTime::from_micros(50); total],
        t_async: SimTime::from_micros(5),
    }
}

/// Measures the host's tier bandwidths with a short synthetic probe: a
/// RAM-to-RAM copy of `sample_floats` f32s versus a full write/read round
/// trip of the same payload through a throwaway
/// [`NvmeStore`](crate::nvme::NvmeStore) swap file. The averaged
/// [`TierBandwidths`] annotate a [`crate::tier::TierPlan`] with predicted
/// migration cost (10Cache-style cost awareness) and seed
/// `sim::calibration`'s NVMe model — they never change placement itself.
pub fn measure_tier_bandwidths(
    sample_floats: usize,
    iters: usize,
) -> std::io::Result<TierBandwidths> {
    let n = sample_floats.max(1024);
    let iters = iters.max(1);
    let src = vec![1.0f32; n];
    let mut dst = vec![0.0f32; n];
    let store = crate::nvme::NvmeStore::create(1, n)?;
    let mut scratch = Vec::new();
    let bytes = (n * 4 * iters) as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        dst.copy_from_slice(&src);
        std::hint::black_box(&mut dst);
    }
    let ram_ns = t0.elapsed().as_nanos().max(1) as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        store.write_at(0, 0, &src, &mut scratch)?;
    }
    let write_ns = t0.elapsed().as_nanos().max(1) as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        store.read_at(0, 0, &mut dst, &mut scratch)?;
    }
    let read_ns = t0.elapsed().as_nanos().max(1) as f64;

    Ok(TierBandwidths {
        ram_bytes_per_ns: bytes / ram_ns,
        file_read_bytes_per_ns: bytes / read_ns,
        file_write_bytes_per_ns: bytes / write_ns,
    })
}

/// Extension: flatten every gradient group of a block into one vector
/// (helper used by the profiler's D2H timing).
trait FlattenAll {
    fn flatten_all(&self) -> Vec<f32>;
}

impl FlattenAll for stronghold_model::block::BlockGrads {
    fn flatten_all(&self) -> Vec<f32> {
        self.flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::solve_window;
    use stronghold_model::config::tiny;
    use stronghold_model::data::SyntheticCorpus;

    fn profile() -> LayerProfile {
        let cfg = tiny(4);
        let batch = SyntheticCorpus::new(cfg.vocab, 1).next_batch(2, cfg.seq - 1);
        measure_host_profile(&cfg, 7, &batch, 2)
    }

    #[test]
    fn covers_all_layers_with_positive_compute() {
        let p = profile();
        assert_eq!(p.len(), 6);
        for i in 1..=4 {
            assert!(p.t_fp[i] > SimTime::ZERO, "layer {i} fp");
            assert!(p.t_bp[i] > SimTime::ZERO, "layer {i} bp");
            assert!(p.t_c2g[i] > SimTime::ZERO, "layer {i} c2g");
        }
    }

    #[test]
    fn bp_slower_than_fp_on_real_hardware_too() {
        let p = profile();
        for i in 1..=4 {
            assert!(p.t_bp[i] > p.t_fp[i], "layer {i}");
        }
    }

    #[test]
    fn tier_bandwidth_probe_reports_positive_rates() {
        let bw = measure_tier_bandwidths(4096, 2).expect("probe swap file");
        assert!(bw.ram_bytes_per_ns > 0.0);
        assert!(bw.file_read_bytes_per_ns > 0.0);
        assert!(bw.file_write_bytes_per_ns > 0.0);
    }

    #[test]
    fn measured_profile_feeds_the_solver() {
        let p = profile();
        let plan = solve_window(&p, |m| m as u64 * 1000, u64::MAX).expect("solvable");
        assert!(plan.m >= 1);
        assert!(plan.m <= plan.m_mem_max);
    }
}
