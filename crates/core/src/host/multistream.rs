//! Multi-streamed execution on the functional substrate (§IV-A).
//!
//! `k` persistent *executor* threads each process a micro-batch of the
//! training batch against a **single shared copy** of the layer weights
//! (`Arc<Block>` — exactly the paper's "only one copy of the model
//! parameters ... despite more than one training worker"). The driver walks
//! the layers; executors compute concurrently; per-layer gradients are
//! all-reduced in fixed executor order before the optimizer actor is
//! dispatched, so the result is deterministic for any interleaving.

use std::sync::Arc;

use crossbeam_channel::{bounded, Receiver, Sender};
use stronghold_model::block::{Block, BlockGrads};
use stronghold_model::config::ModelConfig;
use stronghold_model::transformer::Transformer;
use stronghold_tensor::Tensor;

use crate::adam::{AdamParams, AdamState};
use crate::optimpool::{LayerStore, OptimizerPool};
use crate::telemetry::Telemetry;

/// Commands sent to an executor thread.
enum Cmd {
    /// Forward the executor's activations through the shared block.
    Forward(Arc<Block>),
    /// Backward the executor's micro-batch through the shared block with
    /// recompute-from-checkpoint at `layer`.
    Backward(Arc<Block>, usize),
    /// Run the head (loss + initial gradient) for the iteration.
    Head,
    /// Terminate.
    Stop,
}

enum Reply {
    ForwardDone,
    /// Scaled micro-batch gradients for the layer.
    Grads(Box<BlockGrads>),
    /// Sum of per-sample losses in the micro-batch.
    HeadLoss(f32),
}

struct ExecutorState {
    batch: Vec<(Vec<u32>, Vec<u32>)>,
    x: Vec<Tensor>,
    inputs: Vec<Vec<Tensor>>, // checkpoints per layer per sample
    dy: Vec<Tensor>,
    scale: f32,
}

/// A functional multi-stream trainer: `k` executors over one offloaded
/// model copy.
pub struct MultiStreamTrainer {
    cfg: ModelConfig,
    shell: Arc<Transformer>,
    store: Arc<LayerStore>,
    pool: OptimizerPool,
    streams: usize,
    cmd_txs: Vec<Sender<Cmd>>,
    reply_rxs: Vec<Receiver<Reply>>,
    handles: Vec<std::thread::JoinHandle<stronghold_model::transformer::TransformerGrads>>,
    token_adam: AdamState,
    pos_adam: AdamState,
    lnf_g_adam: AdamState,
    lnf_b_adam: AdamState,
    hp: AdamParams,
    slot: Block,
    tel: Telemetry,
}

impl MultiStreamTrainer {
    /// Builds the trainer with `streams` executors (no telemetry).
    ///
    /// # Panics
    /// Panics if `streams == 0` or the batch cannot be partitioned.
    pub fn new(
        cfg: ModelConfig,
        seed: u64,
        streams: usize,
        workers: usize,
        hp: AdamParams,
    ) -> Self {
        MultiStreamTrainer::with_telemetry(cfg, seed, streams, workers, hp, Telemetry::disabled())
    }

    /// [`MultiStreamTrainer::new`] recording executor command-queue depth,
    /// per-layer weight-load spans, and optimizer-pool metrics into `tel`.
    ///
    /// # Panics
    /// Panics if `streams == 0` or the batch cannot be partitioned.
    pub fn with_telemetry(
        cfg: ModelConfig,
        seed: u64,
        streams: usize,
        workers: usize,
        hp: AdamParams,
        tel: Telemetry,
    ) -> Self {
        assert!(streams >= 1);
        let mut shell = Transformer::new(cfg, seed);
        let blocks = std::mem::take(&mut shell.blocks);
        let slot = blocks[0].clone();
        let flats: Vec<Vec<f32>> = blocks.iter().map(|b| b.flatten_params()).collect();
        let store = LayerStore::new(flats);
        let pool = OptimizerPool::with_telemetry(Arc::clone(&store), hp, workers.max(1), &tel);
        let token_adam = AdamState::new(shell.embedding.token.numel());
        let pos_adam = AdamState::new(shell.embedding.position.numel());
        let lnf_g_adam = AdamState::new(shell.lnf_g.numel());
        let lnf_b_adam = AdamState::new(shell.lnf_b.numel());
        MultiStreamTrainer {
            cfg,
            shell: Arc::new(shell),
            store,
            pool,
            streams,
            cmd_txs: Vec::new(),
            reply_rxs: Vec::new(),
            handles: Vec::new(),
            token_adam,
            pos_adam,
            lnf_g_adam,
            lnf_b_adam,
            hp,
            slot,
            tel,
        }
    }

    /// The stream count.
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// The telemetry handle this trainer records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Flat parameters of block `i`.
    pub fn block_params(&self, i: usize) -> Vec<f32> {
        self.store.read_params(i)
    }

    /// One training step; returns the mean loss across the batch.
    ///
    /// The batch is partitioned round-robin-contiguously into `k`
    /// micro-batches; executor `e` takes samples `[e·⌈b/k⌉, ...)`.
    pub fn train_step(&mut self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        let b = batch.len();
        assert!(
            b >= self.streams,
            "batch {b} smaller than streams {}",
            self.streams
        );
        let micro = b.div_ceil(self.streams);
        let scale = 1.0 / b as f32;
        let nb = self.cfg.layers;
        // In-flight work commands across all executor queues (the
        // copy/compute hand-off depth of the §IV-A driver).
        let q_depth = self.tel.gauge("multistream.cmd_queue_depth");

        // Spin up fresh executors for this step (scoped lifetimes keep the
        // borrow story simple; threads persist across all layers of the
        // step, which is where the concurrency matters).
        let mut cmd_txs = Vec::new();
        let mut reply_rxs = Vec::new();
        let mut handles = Vec::new();
        for e in 0..self.streams {
            let lo = (e * micro).min(b);
            let hi = ((e + 1) * micro).min(b);
            let my: Vec<_> = batch[lo..hi].to_vec();
            let shell = Arc::clone(&self.shell);
            let (ctx, crx) = bounded::<Cmd>(2);
            let (rtx, rrx) = bounded::<Reply>(2);
            cmd_txs.push(ctx);
            reply_rxs.push(rrx);
            handles.push(std::thread::spawn(move || {
                executor_loop(shell, my, scale, crx, rtx)
            }));
        }
        self.cmd_txs = cmd_txs;
        self.reply_rxs = reply_rxs;
        self.handles = handles;

        // ---- FP: walk layers; all executors compute concurrently on one
        // shared materialized block. ----
        let mut shared_blocks: Vec<Arc<Block>> = Vec::with_capacity(nb);
        let mut stage = Vec::new();
        for i in 0..nb {
            let mut blk = self.slot.clone();
            let load_span = self.tel.span("h2d-copy", format!("load L{i}"));
            self.store.read_params_into(i, &mut stage);
            blk.load_flat_params(&stage);
            load_span.end();
            let blk = Arc::new(blk);
            shared_blocks.push(Arc::clone(&blk));
            for tx in &self.cmd_txs {
                q_depth.add(1);
                tx.send(Cmd::Forward(Arc::clone(&blk)))
                    .expect("executor alive");
            }
            let span = self.tel.span("compute", format!("fp L{i}"));
            for rx in &self.reply_rxs {
                let reply = rx.recv().expect("fp reply");
                q_depth.add(-1);
                assert!(matches!(reply, Reply::ForwardDone));
            }
            span.end();
        }

        // ---- Head: loss + initial gradient per executor. ----
        let mut loss_sum = 0.0f32;
        for tx in &self.cmd_txs {
            q_depth.add(1);
            tx.send(Cmd::Head).expect("executor alive");
        }
        for rx in &self.reply_rxs {
            if let Reply::HeadLoss(l) = rx.recv().expect("head reply") {
                loss_sum += l;
            }
            q_depth.add(-1);
        }

        // ---- BP: per layer, executors compute concurrently; the driver
        // all-reduces their gradients in executor order (the §IV-A
        // all-reduce with one copy of parameters), then dispatches the
        // optimizer actor. ----
        for i in (0..nb).rev() {
            let blk = Arc::clone(&shared_blocks[i]);
            for tx in &self.cmd_txs {
                q_depth.add(1);
                tx.send(Cmd::Backward(Arc::clone(&blk), i))
                    .expect("executor alive");
            }
            let span = self.tel.span("compute", format!("bp L{i}"));
            let mut total = blk.zero_grads();
            for rx in &self.reply_rxs {
                if let Reply::Grads(g) = rx.recv().expect("bp reply") {
                    total.accumulate(&g); // fixed executor order
                }
                q_depth.add(-1);
            }
            span.end();
            self.store.mark_pending(i);
            total.flatten_into(&mut stage);
            self.pool.submit(i, &stage);
        }

        // ---- Resident groups (embedding + final LN) on the driver. ----
        let mut resident = self.shell.zero_grads();
        for tx in &self.cmd_txs {
            tx.send(Cmd::Stop).expect("executor alive");
        }
        let mut shell_grads = Vec::new();
        for h in self.handles.drain(..) {
            shell_grads.push(h.join().expect("executor join"));
        }
        for g in &shell_grads {
            resident.accumulate_scaled(g, 1.0); // already scaled per sample
        }
        let shell = Arc::get_mut(&mut self.shell).expect("executors stopped");
        self.token_adam.step(
            shell.embedding.token.data_mut(),
            resident.embedding.token.data(),
            &self.hp,
        );
        self.pos_adam.step(
            shell.embedding.position.data_mut(),
            resident.embedding.position.data(),
            &self.hp,
        );
        self.lnf_g_adam
            .step(shell.lnf_g.data_mut(), resident.lnf_g.data(), &self.hp);
        self.lnf_b_adam
            .step(shell.lnf_b.data_mut(), resident.lnf_b.data(), &self.hp);

        self.pool.flush();
        // Publish cumulative GEMM kernel throughput (read-only bridge, so
        // it cannot perturb the step it reports on).
        crate::telemetry::record_kernel_stats(&self.tel);
        loss_sum / b as f32
    }
}

/// The executor thread body: owns its micro-batch state across the step and
/// returns its (scaled) resident-group gradients at the end.
fn executor_loop(
    shell: Arc<Transformer>,
    batch: Vec<(Vec<u32>, Vec<u32>)>,
    scale: f32,
    rx: Receiver<Cmd>,
    tx: Sender<Reply>,
) -> stronghold_model::transformer::TransformerGrads {
    let mut st = ExecutorState {
        x: batch.iter().map(|(t, _)| shell.embed(t)).collect(),
        inputs: Vec::new(),
        dy: Vec::new(),
        scale,
        batch,
    };
    let mut scratches: Vec<_> = (0..st.batch.len()).map(|_| shell.zero_grads()).collect();
    let mut resident = shell.zero_grads();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Forward(blk) => {
                st.inputs.push(st.x.clone());
                st.x = st.x.iter().map(|xs| blk.forward_no_cache(xs)).collect();
                tx.send(Reply::ForwardDone).expect("driver alive");
            }
            Cmd::Head => {
                let mut sum = 0.0f32;
                st.dy.clear();
                for (s, (_, targets)) in st.batch.iter().enumerate() {
                    let (l, dx, cache) = shell.head_forward_loss(&st.x[s], targets);
                    sum += l;
                    shell.head_backward(&cache, &mut scratches[s]);
                    st.dy.push(dx);
                }
                tx.send(Reply::HeadLoss(sum)).expect("driver alive");
            }
            Cmd::Backward(blk, layer) => {
                let mut grads = blk.zero_grads();
                for s in 0..st.batch.len() {
                    let mut sample = blk.zero_grads();
                    let (_, cache) = blk.forward(&st.inputs[layer][s]);
                    let dx = blk.backward(&st.dy[s], &st.inputs[layer][s], &cache, &mut sample);
                    st.dy[s] = dx;
                    grads.accumulate_scaled(&sample, st.scale);
                }
                tx.send(Reply::Grads(Box::new(grads)))
                    .expect("driver alive");
            }
            Cmd::Stop => {
                // Embedding backward, then fold per-sample scratches.
                for (s, (tokens, _)) in st.batch.iter().enumerate() {
                    shell.embed_backward(&st.dy[s], tokens, &mut scratches[s]);
                }
                for sc in &scratches {
                    resident.accumulate_scaled(sc, st.scale);
                }
                break;
            }
        }
    }
    resident
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostOffloadConfig, HostOffloadTrainer};
    use stronghold_model::config::tiny;
    use stronghold_model::data::SyntheticCorpus;

    fn adam() -> AdamParams {
        AdamParams {
            lr: 2e-3,
            ..AdamParams::default()
        }
    }

    fn batch(cfg: &ModelConfig, seed: u64) -> Vec<(Vec<u32>, Vec<u32>)> {
        SyntheticCorpus::new(cfg.vocab, seed).next_batch(4, cfg.seq - 1)
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = tiny(3);
        let run = || {
            let mut t = MultiStreamTrainer::new(cfg, 10, 2, 3, adam());
            let data = batch(&cfg, 50);
            let mut losses = Vec::new();
            for _ in 0..3 {
                losses.push(t.train_step(&data));
            }
            (
                losses,
                (0..cfg.layers)
                    .map(|i| t.block_params(i))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_stream_matches_offload_trainer_bitwise() {
        // With k = 1 the executor accumulates samples in exactly the same
        // order as the single-stream pipeline.
        let cfg = tiny(3);
        let data = batch(&cfg, 51);
        let mut ms = MultiStreamTrainer::new(cfg, 13, 1, 2, adam());
        let mut single = HostOffloadTrainer::new(
            cfg,
            13,
            HostOffloadConfig {
                window: cfg.layers,
                optimizer_workers: 2,
                adam: adam(),
            },
        );
        for _ in 0..3 {
            let a = ms.train_step(&data);
            let b = single.train_step(&data);
            assert_eq!(a, b, "losses diverged");
        }
        single.flush();
        for i in 0..cfg.layers {
            assert_eq!(ms.block_params(i), single.block_params(i), "block {i}");
        }
    }

    #[test]
    fn multi_stream_close_to_single_stream() {
        // Different reduction grouping -> not bitwise, but numerically tight.
        let cfg = tiny(3);
        let data = batch(&cfg, 52);
        let mut one = MultiStreamTrainer::new(cfg, 14, 1, 2, adam());
        let mut four = MultiStreamTrainer::new(cfg, 14, 4, 2, adam());
        for _ in 0..3 {
            let la = one.train_step(&data);
            let lb = four.train_step(&data);
            assert!((la - lb).abs() < 1e-4, "{la} vs {lb}");
        }
        for i in 0..cfg.layers {
            let a = one.block_params(i);
            let b = four.block_params(i);
            let max_diff = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 1e-4, "block {i} diff {max_diff}");
        }
    }

    #[test]
    fn telemetry_queue_depth_balances() {
        let cfg = tiny(3);
        let tel = Telemetry::enabled();
        let mut t = MultiStreamTrainer::with_telemetry(cfg, 16, 2, 2, adam(), tel.clone());
        let data = batch(&cfg, 54);
        t.train_step(&data);
        let g = tel.gauge("multistream.cmd_queue_depth");
        assert_eq!(g.get(), 0, "all commands answered");
        assert!(g.peak() >= 1);
        // One weight-load span per layer per step.
        let loads = tel.spans().iter().filter(|s| s.track == "h2d-copy").count();
        assert_eq!(loads, cfg.layers);
    }

    #[test]
    fn loss_decreases_with_streams() {
        let cfg = tiny(3);
        let data = batch(&cfg, 53);
        let mut t = MultiStreamTrainer::new(
            cfg,
            15,
            2,
            3,
            AdamParams {
                lr: 5e-3,
                ..AdamParams::default()
            },
        );
        let first = t.train_step(&data);
        let mut last = first;
        for _ in 0..15 {
            last = t.train_step(&data);
        }
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }
}
