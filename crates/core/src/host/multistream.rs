//! Multi-streamed execution on the functional substrate (§IV-A).
//!
//! `k` persistent *executor* threads each process a micro-batch of the
//! training batch against a **single shared copy** of the layer weights
//! (`Arc<Block>` — exactly the paper's "only one copy of the model
//! parameters ... despite more than one training worker"). The driver walks
//! the layers; executors compute concurrently; per-layer gradients are
//! all-reduced in fixed executor order before the optimizer actor is
//! dispatched, so the result is deterministic for any interleaving.
//!
//! Step policy (clipping, LR schedule, optimizer dispatch, checkpointing)
//! lives in the shared [`Engine`]; this module is only the
//! [`MultiStreamBackend`] mechanism plus a thin facade.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use crossbeam_channel::{bounded, Receiver, Sender};
use stronghold_collective::order::{fold_owned, fold_with, tree_sum, FoldPlan};
use stronghold_model::block::{Block, BlockGrads};
use stronghold_model::config::ModelConfig;
use stronghold_model::transformer::{Transformer, TransformerGrads};
use stronghold_tensor::{scratch, PackedHalf, Precision, Tensor};

use crate::adam::{AdamParams, AdamState};
use crate::clip::GlobalNorm;
use crate::error::RuntimeError;
use crate::hooks::{HookCtx, HookPoint, HookRegistry};
use crate::host::autotune::{StallSignals, TuneLimits, Tuning};
use crate::host::engine::{
    Engine, EngineOptions, GradSink, ParamBackend, ResidentParamsMut, StepPlan, StepWorkspace,
    TrainingState,
};
use crate::optimpool::{LayerStore, OptimizerPool};
use crate::telemetry::Telemetry;

/// Commands sent to an executor thread.
enum Cmd {
    /// Forward the executor's activations through the shared block.
    Forward(Arc<Block>),
    /// Backward the executor's micro-batch through the shared block with
    /// recompute-from-checkpoint at `layer`.
    Backward(Arc<Block>, usize),
    /// Run the head (loss + initial gradient) for the iteration.
    Head,
    /// Terminate.
    Stop,
}

enum Reply {
    ForwardDone,
    /// Scaled micro-batch gradients for the layer.
    Grads(Box<BlockGrads>),
    /// Sum of per-sample losses in the micro-batch.
    HeadLoss(f32),
}

struct ExecutorState {
    batch: Vec<(Vec<u32>, Vec<u32>)>,
    x: Vec<Tensor>,
    inputs: Vec<Vec<Tensor>>, // checkpoints per layer per sample
    dy: Vec<Tensor>,
    scale: f32,
}

/// The multi-stream placement backend: one shared parameter copy in a
/// [`LayerStore`], `k` executor threads per step, fixed-order all-reduce.
pub struct MultiStreamBackend {
    cfg: ModelConfig,
    shell: Arc<Transformer>,
    store: Arc<LayerStore>,
    pool: OptimizerPool,
    streams: usize,
    slot: Block,
    tel: Telemetry,
    /// Persistent parameter staging buffer for the driver's per-layer weight
    /// loads (training) and the eval/export paths — no fresh `Vec` per call.
    stage: Mutex<Vec<f32>>,
    /// Cached FP-only slot for `eval_loss`, cloned once on first use.
    eval_slot: Mutex<Option<Block>>,
    /// Device-residency / transfer precision (matches the windowed
    /// backend's value grid, so cross-backend bit-identity holds per mode).
    precision: Precision,
    /// Half round-through scratch shared by the driver's load/offload and
    /// eval paths (unused at F32).
    pack: Mutex<PackedHalf>,
}

impl MultiStreamBackend {
    fn from_model(
        model: Transformer,
        streams: usize,
        workers: usize,
        hp: AdamParams,
        precision: Precision,
        tel: Telemetry,
    ) -> Self {
        assert!(streams >= 1);
        let cfg = model.cfg;
        let mut shell = model;
        let blocks = std::mem::take(&mut shell.blocks);
        let slot = blocks[0].clone();
        let flats: Vec<Vec<f32>> = blocks.iter().map(|b| b.flatten_params()).collect();
        let store = LayerStore::new(flats);
        let pool = OptimizerPool::with_telemetry(Arc::clone(&store), hp, workers.max(1), &tel);
        MultiStreamBackend {
            cfg,
            shell: Arc::new(shell),
            store,
            pool,
            streams,
            slot,
            tel,
            stage: Mutex::new(Vec::new()),
            eval_slot: Mutex::new(None),
            precision,
            pack: Mutex::new(PackedHalf::new(precision)),
        }
    }
}

impl ParamBackend for MultiStreamBackend {
    fn config(&self) -> ModelConfig {
        self.cfg
    }

    fn num_blocks(&self) -> usize {
        self.store.len()
    }

    fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    fn new_resident_grads(&self) -> TransformerGrads {
        self.shell.zero_grads()
    }

    /// One forward/backward pass: the batch is partitioned round-robin-
    /// contiguously into `k` micro-batches; executor `e` takes samples
    /// `[e·⌈b/k⌉, ...)`. Per-layer hooks fire on the driver around each
    /// layer's fan-out.
    ///
    /// Under [`StepPlan::streaming`] each layer's all-reduced gradient is
    /// submitted to the optimizer pool straight from the BP loop (flattened
    /// into a recycled pool buffer), overlapping CPU Adam with the remaining
    /// layers' backward; otherwise it parks in `ws.block_grads` for the
    /// engine's deferred clip → dispatch.
    fn forward_backward(
        &mut self,
        batch: &[(Vec<u32>, Vec<u32>)],
        ws: &mut StepWorkspace,
        hooks: &mut HookRegistry,
        iteration: u64,
        plan: &StepPlan,
        sink: &dyn GradSink,
    ) -> f32 {
        let b = batch.len();
        assert!(
            b >= self.streams,
            "batch {b} smaller than streams {}",
            self.streams
        );
        let micro = b.div_ceil(self.streams);
        let scale = 1.0 / b as f32;
        let nb = self.cfg.layers;
        let ctx = |layer: usize| HookCtx {
            layer,
            iteration,
            micro_batch: 0,
        };
        // In-flight work commands across all executor queues (the
        // copy/compute hand-off depth of the §IV-A driver).
        let q_depth = self.tel.gauge("multistream.cmd_queue_depth");

        // Spin up fresh executors for this step (scoped lifetimes keep the
        // borrow story simple; threads persist across all layers of the
        // step, which is where the concurrency matters).
        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::new();
        let mut reply_rxs: Vec<Receiver<Reply>> = Vec::new();
        let mut handles = Vec::new();
        for e in 0..self.streams {
            let lo = (e * micro).min(b);
            let hi = ((e + 1) * micro).min(b);
            let my: Vec<_> = batch[lo..hi].to_vec();
            let shell = Arc::clone(&self.shell);
            let (ctx_tx, crx) = bounded::<Cmd>(2);
            let (rtx, rrx) = bounded::<Reply>(2);
            cmd_txs.push(ctx_tx);
            reply_rxs.push(rrx);
            handles.push(std::thread::spawn(move || {
                executor_loop(shell, my, scale, crx, rtx)
            }));
        }

        ws.streamed = plan.streaming;

        // ---- FP: walk layers; all executors compute concurrently on one
        // shared materialized block. ----
        let mut shared_blocks: Vec<Arc<Block>> = Vec::with_capacity(nb);
        let stage = self.stage.get_mut().expect("stage");
        let pack = self.pack.get_mut().expect("pack");
        for i in 0..nb {
            hooks.fire(i, HookPoint::PreForward, &ctx(i));
            let mut blk = self.slot.clone();
            let load_span = self.tel.span("h2d-copy", format!("load L{i}"));
            self.store.read_params_into(i, stage);
            // Half modes: executors compute on the round-through-half
            // parameter grid, exactly like the windowed backend's shells.
            pack.round_through(stage);
            blk.load_flat_params(stage);
            load_span.end();
            let blk = Arc::new(blk);
            shared_blocks.push(Arc::clone(&blk));
            for tx in &cmd_txs {
                q_depth.add(1);
                tx.send(Cmd::Forward(Arc::clone(&blk)))
                    .expect("executor alive");
            }
            let span = self.tel.span("compute", format!("fp L{i}"));
            for rx in &reply_rxs {
                let reply = rx.recv().expect("fp reply");
                q_depth.add(-1);
                assert!(matches!(reply, Reply::ForwardDone));
            }
            span.end();
            hooks.fire(i, HookPoint::PostForward, &ctx(i));
        }

        // ---- Head: loss + initial gradient per executor. Each executor
        // returns the canonical tree-sum of its own samples; the driver
        // folds the executor partials with the same tree over the stream
        // index, so `k = 1` reproduces the resident trainer's loss exactly.
        let mut exec_losses: Vec<f32> = Vec::with_capacity(self.streams);
        for tx in &cmd_txs {
            q_depth.add(1);
            tx.send(Cmd::Head).expect("executor alive");
        }
        for rx in &reply_rxs {
            if let Reply::HeadLoss(l) = rx.recv().expect("head reply") {
                exec_losses.push(l);
            }
            q_depth.add(-1);
        }

        // ---- BP: per layer, executors compute concurrently; the driver
        // all-reduces their gradients in executor order (the §IV-A
        // all-reduce with one copy of parameters). With clipping active the
        // optimizer dispatch happens in the engine once the step's global
        // norm is known; otherwise each layer's update is streamed to the
        // actor pool the moment its all-reduce lands. ----
        let stream_plan = FoldPlan::new(self.streams);
        let want_norm = self.tel.is_enabled();
        let norm_bits: Vec<AtomicU64> = (0..nb).map(|_| AtomicU64::new(0)).collect();
        let pool = &self.pool;
        let store = &self.store;
        let hp = plan.hp;
        // The optimizer hand-off for a finished (sink-reduced) gradient;
        // `sink.layer_ready` may call this later than the layer it was
        // handed, so the streamed norm partial is recomputed here on the
        // gradient the optimizer will actually consume.
        let norm_slots = &norm_bits;
        let deliver = move |layer: usize, buf: Vec<f32>| {
            if want_norm {
                norm_slots[layer]
                    .store(GlobalNorm::layer_sum_sq(&buf).to_bits(), Ordering::Relaxed);
            }
            store.mark_pending(layer);
            pool.submit_owned(layer, buf, hp);
        };
        for i in (0..nb).rev() {
            hooks.fire(i, HookPoint::PreBackward, &ctx(i));
            let blk = Arc::clone(&shared_blocks[i]);
            for tx in &cmd_txs {
                q_depth.add(1);
                tx.send(Cmd::Backward(Arc::clone(&blk), i))
                    .expect("executor alive");
            }
            let span = self.tel.span("compute", format!("bp L{i}"));
            let mut parts: Vec<Box<BlockGrads>> = Vec::with_capacity(self.streams);
            for rx in &reply_rxs {
                if let Reply::Grads(g) = rx.recv().expect("bp reply") {
                    parts.push(g); // fixed executor order
                }
                q_depth.add(-1);
            }
            let total = fold_owned(&stream_plan, parts, |acc, part| acc.accumulate(&part))
                .expect("at least one executor");
            span.end();
            if plan.streaming {
                let mut buf = self.pool.recycled_buffer();
                total.flatten_into(&mut buf);
                // Half modes: the gradient rounds through the transfer
                // format before the optimizer/sink sees it, exactly like
                // the windowed backend's D2H engine.
                pack.round_through(&mut buf);
                sink.layer_ready(i, buf, &deliver);
            } else {
                total.flatten_into(&mut ws.block_grads[i]);
                pack.round_through(&mut ws.block_grads[i]);
            }
            hooks.fire(i, HookPoint::PostBackward, &ctx(i));
        }

        // ---- Resident groups (embedding + final LN): executor partials
        // (already sample-scaled trees) fold down the canonical tree over
        // the stream index on the driver once the executors retire. ----
        for tx in &cmd_txs {
            tx.send(Cmd::Stop).expect("executor alive");
        }
        let mut shell_grads = Vec::with_capacity(self.streams);
        for h in handles {
            shell_grads.push(h.join().expect("executor join"));
        }
        ws.resident_grads = fold_owned(&stream_plan, shell_grads, |acc, part| {
            acc.accumulate_scaled(&part, 1.0)
        })
        .expect("at least one executor");

        if ws.streamed && want_norm {
            for (p, bits) in ws.norm_partials.iter_mut().zip(&norm_bits) {
                *p = f64::from_bits(bits.load(Ordering::Relaxed));
            }
        }

        tree_sum(&exec_losses) / b as f32
    }

    fn dispatch_block_update(&mut self, layer: usize, grads: &[f32], hp: &AdamParams) {
        self.store.mark_pending(layer);
        self.pool.submit_with(layer, grads, *hp);
    }

    fn resident_params_mut(&mut self) -> ResidentParamsMut<'_> {
        let shell = Arc::get_mut(&mut self.shell).expect("executors stopped");
        ResidentParamsMut {
            token: shell.embedding.token.data_mut(),
            position: shell.embedding.position.data_mut(),
            lnf_g: shell.lnf_g.data_mut(),
            lnf_b: shell.lnf_b.data_mut(),
        }
    }

    /// The per-step barrier the original driver had: all updates applied
    /// before the step returns.
    fn finish_step(&mut self) {
        self.pool.flush();
    }

    /// Mean loss over a batch without updating, streaming layers through a
    /// cached slot block (same FP op sequence as the windowed backend's
    /// eval, so cross-backend eval results agree bitwise). The slot and the
    /// staging buffer persist across calls — no per-eval heap allocation on
    /// the parameter path.
    fn eval_loss(&self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        self.pool.flush();
        let mut guard = self.eval_slot.lock().expect("eval slot");
        let slot = guard.get_or_insert_with(|| self.slot.clone());
        let mut stage = self.stage.lock().expect("stage");
        let mut pack = self.pack.lock().expect("pack");
        let mut x: Vec<Tensor> = batch.iter().map(|(t, _)| self.shell.embed(t)).collect();
        for i in 0..self.cfg.layers {
            self.store.read_params_into(i, &mut stage);
            // Same device-resident value grid as training (no-op at F32).
            pack.round_through(&mut stage);
            slot.load_flat_params(&stage);
            let next: Vec<Tensor> = x.iter().map(|xs| slot.forward_no_cache(xs)).collect();
            for t in std::mem::replace(&mut x, next) {
                scratch::give(t);
            }
        }
        let mut sum = 0.0f32;
        for (s, (_, targets)) in batch.iter().enumerate() {
            let (l, dx, cache) = self.shell.head_forward_loss(&x[s], targets);
            scratch::give(dx);
            cache.recycle();
            sum += l;
        }
        for t in x {
            scratch::give(t);
        }
        sum / batch.len() as f32
    }

    /// Reassembles the full model from the shared shell and the layer store.
    fn model_blob(&self) -> Bytes {
        let mut full = Transformer {
            cfg: self.cfg,
            embedding: self.shell.embedding.clone(),
            blocks: Vec::with_capacity(self.store.len()),
            lnf_g: self.shell.lnf_g.clone(),
            lnf_b: self.shell.lnf_b.clone(),
        };
        let mut stage = self.stage.lock().expect("stage");
        for i in 0..self.store.len() {
            let mut blk = self.slot.clone();
            self.store.read_params_into(i, &mut stage);
            blk.load_flat_params(&stage);
            full.blocks.push(blk);
        }
        stronghold_model::serialize::save(&full)
    }

    fn block_adam_snapshot(&self, layer: usize) -> AdamState {
        self.store.adam_snapshot(layer)
    }

    fn flush(&self) {
        self.pool.flush();
    }

    /// Only the optimizer pool is live-tunable here: resizing the stream
    /// count would change the executor fold tree (breaking bit-identity),
    /// and this backend has no working window or offload engine — those
    /// knobs are pinned at their current values.
    fn tune_limits(&self) -> Option<TuneLimits> {
        Some(TuneLimits {
            window: (1, 1),
            offload_workers: (0, 0),
            compute_workers: (self.streams, self.streams),
            optimizer_workers: (1, 8),
            spill_workers: (0, 0),
        })
    }

    fn current_tuning(&self) -> Tuning {
        Tuning {
            window: 1,
            offload_workers: 0,
            compute_workers: self.streams,
            optimizer_workers: self.pool.workers(),
            spill_workers: 0,
        }
    }

    fn apply_tuning(&mut self, t: Tuning) {
        if t.optimizer_workers != self.pool.workers() {
            self.pool.set_workers(t.optimizer_workers.max(1));
        }
    }

    fn stall_signals(&self) -> StallSignals {
        StallSignals {
            optim_backlog: self.pool.pending() as u64,
            ..StallSignals::default()
        }
    }
}

/// A functional multi-stream trainer: `k` executors over one offloaded
/// model copy, run as a facade over the shared [`Engine`].
pub struct MultiStreamTrainer {
    engine: Engine<MultiStreamBackend>,
}

impl MultiStreamTrainer {
    /// Builds the trainer with `streams` executors (no telemetry).
    ///
    /// # Panics
    /// Panics if `streams == 0` or the batch cannot be partitioned.
    pub fn new(
        cfg: ModelConfig,
        seed: u64,
        streams: usize,
        workers: usize,
        hp: AdamParams,
    ) -> Self {
        MultiStreamTrainer::with_telemetry(cfg, seed, streams, workers, hp, Telemetry::disabled())
    }

    /// [`MultiStreamTrainer::new`] recording executor command-queue depth,
    /// per-layer weight-load spans, per-step `step.lr` / `step.grad_norm`
    /// gauges, and optimizer-pool metrics into `tel`.
    ///
    /// # Panics
    /// Panics if `streams == 0` or the batch cannot be partitioned.
    pub fn with_telemetry(
        cfg: ModelConfig,
        seed: u64,
        streams: usize,
        workers: usize,
        hp: AdamParams,
        tel: Telemetry,
    ) -> Self {
        MultiStreamTrainer::with_options(
            cfg,
            seed,
            streams,
            workers,
            EngineOptions {
                adam: hp,
                ..EngineOptions::default()
            },
            tel,
        )
    }

    /// [`MultiStreamTrainer::with_telemetry`] with full engine options (LR
    /// schedule, gradient clipping).
    pub fn with_options(
        cfg: ModelConfig,
        seed: u64,
        streams: usize,
        workers: usize,
        opts: EngineOptions,
        tel: Telemetry,
    ) -> Self {
        let backend = MultiStreamBackend::from_model(
            Transformer::new(cfg, seed),
            streams,
            workers,
            opts.adam,
            opts.precision,
            tel,
        );
        MultiStreamTrainer {
            engine: Engine::new(backend, opts),
        }
    }

    /// The device-residency / transfer precision in force.
    pub fn precision(&self) -> Precision {
        self.engine.backend().precision
    }

    /// The stream count.
    pub fn streams(&self) -> usize {
        self.engine.backend().streams
    }

    /// The live autotune controller, when [`EngineOptions::autotune`] is
    /// set (optimizer-pool workers are the only tunable knob here).
    pub fn autotune(&self) -> Option<&crate::host::autotune::AutotuneController> {
        self.engine.autotune()
    }

    /// The telemetry handle this trainer records into.
    pub fn telemetry(&self) -> &Telemetry {
        self.engine.telemetry()
    }

    /// Completed optimizer steps.
    pub fn steps(&self) -> u64 {
        self.engine.steps()
    }

    /// The hook registry; register pipeline callbacks here.
    pub fn hooks_mut(&mut self) -> &mut HookRegistry {
        self.engine.hooks_mut()
    }

    /// Total hook invocations so far.
    pub fn hook_invocations(&self) -> u64 {
        self.engine.hooks().invocations()
    }

    /// Flat parameters of block `i`.
    pub fn block_params(&self, i: usize) -> Vec<f32> {
        self.engine.backend().store.read_params(i)
    }

    /// One training step; returns the mean loss across the batch.
    pub fn train_step(&mut self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        self.engine.train_step(batch)
    }

    /// Mean loss over a batch without updating (evaluation).
    pub fn eval_loss(&self, batch: &[(Vec<u32>, Vec<u32>)]) -> f32 {
        self.engine.eval_loss(batch)
    }

    /// Serializes the full training state (see
    /// [`Engine::save_training_state`]).
    pub fn save_training_state(&self) -> Bytes {
        self.engine.save_training_state()
    }

    /// Restores a trainer from [`Self::save_training_state`] output (which
    /// may have been written by *any* backend). `cfg` guards against
    /// resuming with the wrong model shape; malformed blobs yield a typed
    /// [`RuntimeError::Checkpoint`].
    pub fn load_training_state(
        blob: Bytes,
        cfg: ModelConfig,
        streams: usize,
        workers: usize,
        opts: EngineOptions,
    ) -> Result<Self, RuntimeError> {
        let st = TrainingState::decode(blob)?;
        st.expect_config(&cfg)?;
        st.expect_precision(opts.precision)?;
        let TrainingState {
            step,
            model,
            block_adams,
            resident_adams,
            ..
        } = st;
        let backend = MultiStreamBackend::from_model(
            model,
            streams,
            workers,
            opts.adam,
            opts.precision,
            Telemetry::disabled(),
        );
        for (i, adam) in block_adams.into_iter().enumerate() {
            backend.store.set_adam(i, adam);
        }
        Ok(MultiStreamTrainer {
            engine: Engine::resume(backend, opts, step, resident_adams),
        })
    }
}

/// The executor thread body: owns its micro-batch state across the step and
/// returns its (scaled) resident-group gradients at the end.
fn executor_loop(
    shell: Arc<Transformer>,
    batch: Vec<(Vec<u32>, Vec<u32>)>,
    scale: f32,
    rx: Receiver<Cmd>,
    tx: Sender<Reply>,
) -> stronghold_model::transformer::TransformerGrads {
    let mut st = ExecutorState {
        x: batch.iter().map(|(t, _)| shell.embed(t)).collect(),
        inputs: Vec::new(),
        dy: Vec::new(),
        scale,
        batch,
    };
    let n = st.batch.len();
    // Per-sample reductions run down the canonical tree so that a
    // single-stream run is bit-identical to the resident/offloaded
    // trainers (and so micro-batch boundaries stay invisible at k = 1).
    let fold_plan = FoldPlan::new(n);
    let mut scratches: Vec<_> = (0..n).map(|_| shell.zero_grads()).collect();
    let mut sample: Option<BlockGrads> = None;
    let mut block_slots: Vec<BlockGrads> = Vec::new();
    let mut resident = shell.zero_grads();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Forward(blk) => {
                st.inputs.push(st.x.clone());
                st.x = st.x.iter().map(|xs| blk.forward_no_cache(xs)).collect();
                tx.send(Reply::ForwardDone).expect("driver alive");
            }
            Cmd::Head => {
                let mut losses = Vec::with_capacity(n);
                st.dy.clear();
                for (s, (_, targets)) in st.batch.iter().enumerate() {
                    let (l, dx, cache) = shell.head_forward_loss(&st.x[s], targets);
                    losses.push(l);
                    shell.head_backward(&cache, &mut scratches[s]);
                    st.dy.push(dx);
                }
                tx.send(Reply::HeadLoss(tree_sum(&losses)))
                    .expect("driver alive");
            }
            Cmd::Backward(blk, layer) => {
                if n == 0 {
                    tx.send(Reply::Grads(Box::new(blk.zero_grads())))
                        .expect("driver alive");
                    continue;
                }
                let sample = sample.get_or_insert_with(|| blk.zero_grads());
                while block_slots.len() < fold_plan.depth() {
                    block_slots.push(blk.zero_grads());
                }
                fold_with(
                    &fold_plan,
                    &mut block_slots,
                    |s, slot| {
                        sample.zero_();
                        let (_, cache) = blk.forward(&st.inputs[layer][s]);
                        let dx = blk.backward(&st.dy[s], &st.inputs[layer][s], &cache, sample);
                        st.dy[s] = dx;
                        slot.zero_();
                        slot.accumulate_scaled(sample, st.scale);
                    },
                    |acc, part| acc.accumulate(part),
                );
                let out = std::mem::replace(&mut block_slots[0], blk.zero_grads());
                tx.send(Reply::Grads(Box::new(out))).expect("driver alive");
            }
            Cmd::Stop => {
                // Embedding backward, then fold per-sample scratches down
                // the same tree.
                for (s, (tokens, _)) in st.batch.iter().enumerate() {
                    shell.embed_backward(&st.dy[s], tokens, &mut scratches[s]);
                }
                if n > 0 {
                    let mut slots: Vec<_> =
                        (0..fold_plan.depth()).map(|_| shell.zero_grads()).collect();
                    fold_with(
                        &fold_plan,
                        &mut slots,
                        |s, slot| {
                            slot.zero_();
                            slot.accumulate_scaled(&scratches[s], st.scale);
                        },
                        |acc, part| acc.accumulate_scaled(part, 1.0),
                    );
                    std::mem::swap(&mut resident, &mut slots[0]);
                }
                break;
            }
        }
    }
    resident
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostOffloadConfig, HostOffloadTrainer};
    use stronghold_model::config::tiny;
    use stronghold_model::data::SyntheticCorpus;

    fn adam() -> AdamParams {
        AdamParams {
            lr: 2e-3,
            ..AdamParams::default()
        }
    }

    fn batch(cfg: &ModelConfig, seed: u64) -> Vec<(Vec<u32>, Vec<u32>)> {
        SyntheticCorpus::new(cfg.vocab, seed).next_batch(4, cfg.seq - 1)
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = tiny(3);
        let run = || {
            let mut t = MultiStreamTrainer::new(cfg, 10, 2, 3, adam());
            let data = batch(&cfg, 50);
            let mut losses = Vec::new();
            for _ in 0..3 {
                losses.push(t.train_step(&data));
            }
            (
                losses,
                (0..cfg.layers)
                    .map(|i| t.block_params(i))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_stream_matches_offload_trainer_bitwise() {
        // With k = 1 the executor accumulates samples in exactly the same
        // order as the single-stream pipeline.
        let cfg = tiny(3);
        let data = batch(&cfg, 51);
        let mut ms = MultiStreamTrainer::new(cfg, 13, 1, 2, adam());
        let mut single = HostOffloadTrainer::new(
            cfg,
            13,
            HostOffloadConfig {
                window: cfg.layers,
                optimizer_workers: 2,
                adam: adam(),
                ..HostOffloadConfig::default()
            },
        );
        for _ in 0..3 {
            let a = ms.train_step(&data);
            let b = single.train_step(&data);
            assert_eq!(a, b, "losses diverged");
        }
        single.flush();
        for i in 0..cfg.layers {
            assert_eq!(ms.block_params(i), single.block_params(i), "block {i}");
        }
    }

    #[test]
    fn multi_stream_close_to_single_stream() {
        // Different reduction grouping -> not bitwise, but numerically tight.
        let cfg = tiny(3);
        let data = batch(&cfg, 52);
        let mut one = MultiStreamTrainer::new(cfg, 14, 1, 2, adam());
        let mut four = MultiStreamTrainer::new(cfg, 14, 4, 2, adam());
        for _ in 0..3 {
            let la = one.train_step(&data);
            let lb = four.train_step(&data);
            assert!((la - lb).abs() < 1e-4, "{la} vs {lb}");
        }
        for i in 0..cfg.layers {
            let a = one.block_params(i);
            let b = four.block_params(i);
            let max_diff = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 1e-4, "block {i} diff {max_diff}");
        }
    }

    #[test]
    fn telemetry_queue_depth_balances() {
        let cfg = tiny(3);
        let tel = Telemetry::enabled();
        let mut t = MultiStreamTrainer::with_telemetry(cfg, 16, 2, 2, adam(), tel.clone());
        let data = batch(&cfg, 54);
        t.train_step(&data);
        let g = tel.gauge("multistream.cmd_queue_depth");
        assert_eq!(g.get(), 0, "all commands answered");
        assert!(g.peak() >= 1);
        // One weight-load span per layer per step.
        let loads = tel.spans().iter().filter(|s| s.track == "h2d-copy").count();
        assert_eq!(loads, cfg.layers);
    }

    #[test]
    fn eval_matches_offloaded_eval() {
        let cfg = tiny(3);
        let data = batch(&cfg, 55);
        let ms = MultiStreamTrainer::new(cfg, 17, 2, 2, adam());
        let off = HostOffloadTrainer::new(cfg, 17, HostOffloadConfig::default());
        assert_eq!(ms.eval_loss(&data), off.eval_loss(&data));
    }

    #[test]
    fn loss_decreases_with_streams() {
        let cfg = tiny(3);
        let data = batch(&cfg, 53);
        let mut t = MultiStreamTrainer::new(
            cfg,
            15,
            2,
            3,
            AdamParams {
                lr: 5e-3,
                ..AdamParams::default()
            },
        );
        let first = t.train_step(&data);
        let mut last = first;
        for _ in 0..15 {
            last = t.train_step(&data);
        }
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }
}
